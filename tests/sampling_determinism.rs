//! Integration: the sampling front-end is deterministic — a fixed-rate
//! sampled run produces byte-identical profiles no matter how it was
//! collected (inline, threaded, sharded, or split across a
//! checkpoint/resume), and rate 1 is exactly lossless.

use orprof::core::threaded::ThreadedCdc;
use orprof::core::{Cdc, Omc, Sampler, Session, ShardedCdc, VecOrSink};
use orprof::leap::LeapProfiler;
use orprof::trace::{
    AccessEvent, AllocEvent, AllocSiteId, FreeEvent, InstrId, ProbeEvent, ProbeSink, RawAddress,
};
use orprof::workloads::{micro, RunConfig, Tracer, Workload};

/// Captures a workload's full probe stream so every collection path
/// replays the exact same events.
struct RecordAll(Vec<ProbeEvent>);

impl ProbeSink for RecordAll {
    fn access(&mut self, ev: AccessEvent) {
        self.0.push(ProbeEvent::Access(ev));
    }

    fn alloc(&mut self, ev: AllocEvent) {
        self.0.push(ProbeEvent::Alloc(ev));
    }

    fn free(&mut self, ev: FreeEvent) {
        self.0.push(ProbeEvent::Free(ev));
    }

    fn finish(&mut self) {}
}

fn recorded_events(workload: &dyn Workload) -> Vec<ProbeEvent> {
    let mut rec = RecordAll(Vec::new());
    let cfg = RunConfig::default();
    let mut tracer = Tracer::new(&cfg, &mut rec);
    workload.run(&mut tracer);
    tracer.finish();
    rec.0
}

fn feed(sink: &mut dyn ProbeSink, events: &[ProbeEvent]) {
    for &ev in events {
        match ev {
            ProbeEvent::Access(e) => sink.access(e),
            ProbeEvent::Alloc(e) => sink.alloc(e),
            ProbeEvent::Free(e) => sink.free(e),
        }
    }
    sink.finish();
}

fn leap_bytes(cdc: Cdc<LeapProfiler>) -> Vec<u8> {
    let mut bytes = Vec::new();
    cdc.into_parts()
        .1
        .into_profile()
        .write_to(&mut bytes)
        .expect("serialize profile");
    bytes
}

#[test]
fn fixed_rate_profiles_are_byte_identical_across_collection_paths() {
    let events = recorded_events(&micro::LinkedList::new(128, 4));
    const RATE: u64 = 4;

    let mut inline = Cdc::with_sampler(Omc::new(), LeapProfiler::new(), Sampler::periodic(RATE));
    feed(&mut inline, &events);
    let kept = inline.sampler().stats().kept;
    let considered = inline.sampler().stats().considered;
    assert!(
        kept > 0 && kept < considered,
        "rate {RATE} must actually drop accesses ({kept} of {considered} kept)"
    );
    let reference = leap_bytes(inline);

    let mut threaded =
        ThreadedCdc::spawn_sampled(Omc::new(), LeapProfiler::new(), Sampler::periodic(RATE));
    feed(&mut threaded, &events);
    assert_eq!(
        leap_bytes(threaded.join()),
        reference,
        "threaded collection diverged from inline at rate {RATE}"
    );

    for shards in [1, 2, 4] {
        let mut sharded =
            ShardedCdc::spawn_with_sampler(Omc::new(), Sampler::periodic(RATE), shards, |_| {
                LeapProfiler::new()
            });
        feed(&mut sharded, &events);
        let cdc = sharded.try_join().expect("pipeline healthy");
        assert_eq!(
            leap_bytes(cdc),
            reference,
            "{shards}-shard collection diverged from inline at rate {RATE}"
        );
    }
}

#[test]
fn sampled_checkpoint_resume_is_byte_identical_to_a_straight_run() {
    let events = recorded_events(&micro::HashChurn::new(96, 4));
    assert!(events.len() > 16, "workload too small to cut");

    let sampled_session = || {
        Session::from_cdc(Cdc::with_sampler(
            Omc::new(),
            LeapProfiler::new(),
            Sampler::periodic(3),
        ))
    };

    let mut straight = sampled_session();
    feed(&mut straight, &events);
    let reference = leap_bytes(straight.into_cdc());

    for cut in [1, events.len() / 3, events.len() / 2, events.len() - 1] {
        let mut first = sampled_session();
        first.feed(&events[..cut]);
        let mut checkpoint = Vec::new();
        first.checkpoint(&mut checkpoint).expect("checkpoint");

        let mut resumed =
            Session::<LeapProfiler>::resume(&mut checkpoint.as_slice()).expect("resume");
        assert!(
            !resumed.cdc().sampler().is_off(),
            "resume must restore the checkpointed sampler"
        );
        feed(&mut resumed, &events[cut..]);
        assert_eq!(
            leap_bytes(resumed.into_cdc()),
            reference,
            "resume at event {cut} diverged from the straight-through run"
        );
    }
}

/// Regression (issue 10): the budget controller's calibration now rides
/// in the checkpoint (an extension of the sampler-state chunk), so a
/// budget run cut at a checkpoint and resumed makes the same rate
/// decisions — and admits the same accesses — as a straight-through
/// run, given the same deterministic control inputs.
#[test]
fn budget_checkpoint_resume_is_byte_identical_to_a_straight_run() {
    use orprof::core::RateController;

    let events = recorded_events(&micro::HashChurn::new(96, 4));
    assert!(events.len() > 64, "workload too small to cut");

    // Deterministic stand-in for wall-clock: profiling pretends to run
    // at 3x native, so every control step is over budget and keeps
    // backing the rate off.
    const BASELINE: f64 = 100.0;
    const STEP: usize = 32;
    let elapsed = |fed: u64| fed * 300;

    let budget_session = || {
        Session::from_cdc(Cdc::with_sampler(
            Omc::new(),
            LeapProfiler::new(),
            Sampler::periodic(1),
        ))
    };
    // Feeds events[range] while running a control step at every
    // absolute STEP boundary, exactly as a budgeted run would.
    let drive = |session: &mut Session<LeapProfiler>,
                 controller: &mut RateController,
                 range: std::ops::Range<usize>| {
        for i in range {
            match events[i] {
                ProbeEvent::Access(e) => session.access(e),
                ProbeEvent::Alloc(e) => session.alloc(e),
                ProbeEvent::Free(e) => session.free(e),
            }
            let fed = (i + 1) as u64;
            if (i + 1) % STEP == 0 {
                let current = session.cdc().sampler().current_rate();
                if let Some(rate) = controller.control(fed, elapsed(fed), current) {
                    session.cdc_mut().sampler_mut().set_rate(rate);
                }
            }
        }
    };

    let mut straight = budget_session();
    let mut straight_ctrl = RateController::new(10.0, BASELINE);
    drive(&mut straight, &mut straight_ctrl, 0..events.len());
    straight.finish();
    assert!(
        straight_ctrl.adjustments() > 0,
        "the synthetic overhead must force rate adjustments"
    );
    let reference = leap_bytes(straight.into_cdc());

    for cut in [STEP - 1, STEP, events.len() / 3, events.len() / 2] {
        let mut first = budget_session();
        let mut ctrl = RateController::new(10.0, BASELINE);
        drive(&mut first, &mut ctrl, 0..cut);
        let mut checkpoint = Vec::new();
        first
            .checkpoint_with(&mut checkpoint, Some(&ctrl))
            .expect("checkpoint");

        let (mut resumed, restored) =
            Session::<LeapProfiler>::resume_with_controller(&mut checkpoint.as_slice())
                .expect("resume");
        let mut restored = restored.expect("checkpoint must carry the controller");
        drive(&mut resumed, &mut restored, cut..events.len());
        resumed.finish();
        assert_eq!(
            restored.adjustments(),
            straight_ctrl.adjustments(),
            "resume at event {cut} lost controller history"
        );
        assert_eq!(restored.trajectory(), straight_ctrl.trajectory());
        assert_eq!(
            leap_bytes(resumed.into_cdc()),
            reference,
            "budget resume at event {cut} diverged from the straight-through run"
        );
    }
}

#[test]
fn reservoir_sampling_is_deterministic_across_paths() {
    let events = recorded_events(&micro::LinkedList::new(128, 4));

    let mut inline = Cdc::with_sampler(Omc::new(), VecOrSink::new(), Sampler::reservoir(8));
    feed(&mut inline, &events);

    let mut sharded =
        ShardedCdc::spawn_with_sampler(Omc::new(), Sampler::reservoir(8), 3, |_| VecOrSink::new());
    feed(&mut sharded, &events);
    let merged = sharded.try_join().expect("pipeline healthy");

    assert_eq!(merged.sink().tuples(), inline.sink().tuples());
    assert_eq!(merged.sampler().stats(), inline.sampler().stats());
}

mod rate_one_is_lossless {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// A compact access script over two live objects: which object,
    /// which instruction, and what offset inside it.
    fn arb_accesses() -> impl Strategy<Value = Vec<(bool, u32, u64, bool)>> {
        vec((any::<bool>(), 0u32..6, 0u64..240, any::<bool>()), 1..400)
    }

    fn run(
        sampler: Sampler,
        script: &[(bool, u32, u64, bool)],
    ) -> (Vec<orprof::core::OrTuple>, Sampler) {
        let mut cdc = Cdc::with_sampler(Omc::new(), VecOrSink::new(), sampler);
        cdc.alloc(AllocEvent {
            site: AllocSiteId(0),
            base: RawAddress(0x1000),
            size: 256,
        });
        cdc.alloc(AllocEvent {
            site: AllocSiteId(1),
            base: RawAddress(0x8000),
            size: 256,
        });
        for &(second, instr, offset, store) in script {
            let base = if second { 0x8000 } else { 0x1000 };
            let ev = if store {
                AccessEvent::store(InstrId(instr), RawAddress(base + offset), 8)
            } else {
                AccessEvent::load(InstrId(instr), RawAddress(base + offset), 8)
            };
            cdc.access(ev);
        }
        cdc.finish();
        let sampler = cdc.sampler().clone();
        (cdc.into_parts().1.into_tuples(), sampler)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn rate_one_matches_the_unsampled_run(script in arb_accesses()) {
            let (full, _) = run(Sampler::off(), &script);
            let (sampled, sampler) = run(Sampler::periodic(1), &script);
            prop_assert_eq!(&sampled, &full, "rate 1 must keep every access");

            // The scaled estimate is exact at rate 1: every access is
            // kept with weight 1, so weighted == kept == considered.
            let stats = sampler.stats();
            prop_assert_eq!(stats.kept, stats.considered);
            prop_assert_eq!(stats.weighted, stats.kept);
            prop_assert_eq!(stats.dropped, 0);
            prop_assert_eq!(stats.kept, full.len() as u64);
        }

        #[test]
        fn scaled_estimate_brackets_the_true_count(
            script in arb_accesses(),
            rate in 1u64..16,
        ) {
            let (_, sampler) = run(Sampler::periodic(rate), &script);
            let stats = sampler.stats();
            // Each key keeps ceil(seen/rate) accesses, so the
            // inverse-rate estimate overshoots by at most rate-1 per
            // sampled key and never undershoots.
            let keys = sampler.tracked_keys() as u64;
            prop_assert!(stats.weighted >= stats.considered);
            prop_assert!(stats.weighted <= stats.considered + keys * (rate - 1));
        }
    }
}
