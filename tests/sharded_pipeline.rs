//! Integration: the sharded collection pipeline produces output
//! **byte-identical** to single-threaded collection — the determinism
//! contract that makes sharding a pure throughput change.

use orprof::core::sharded::ShardedCdc;
use orprof::core::{Cdc, Omc, VecOrSink};
use orprof::leap::LeapProfiler;
use orprof::trace::ProbeSink;
use orprof::whomp::HybridProfiler;
use orprof::workloads::{micro, RunConfig, Tracer, Workload};

/// A pointer-chasing workload with alloc/free churn (decoy objects) —
/// the trace shape that stresses OMC invalidation.
fn workload() -> micro::LinkedList {
    micro::LinkedList::new(256, 3)
}

fn drive(sink: &mut dyn ProbeSink) {
    let cfg = RunConfig::default();
    let mut tracer = Tracer::new(&cfg, sink);
    workload().run(&mut tracer);
    tracer.finish();
}

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn sharded_tuple_stream_is_identical_to_inline() {
    let mut inline = Cdc::new(Omc::new(), VecOrSink::new());
    drive(&mut inline);
    assert!(!inline.sink().is_empty());

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedCdc::spawn(Omc::new(), shards, |_| VecOrSink::new());
        drive(&mut sharded);
        let cdc = sharded.try_join().expect("pipeline healthy");
        assert_eq!(
            cdc.sink().tuples(),
            inline.sink().tuples(),
            "{shards} shards"
        );
        assert_eq!(cdc.time(), inline.time(), "{shards} shards");
        assert_eq!(cdc.untracked(), inline.untracked(), "{shards} shards");
        assert_eq!(
            cdc.probe_anomalies(),
            inline.probe_anomalies(),
            "{shards} shards"
        );
    }
}

#[test]
fn sharded_leap_profile_serializes_to_identical_bytes() {
    let mut inline = Cdc::new(Omc::new(), LeapProfiler::new());
    drive(&mut inline);
    let mut reference = Vec::new();
    inline
        .into_parts()
        .1
        .into_profile()
        .write_to(&mut reference)
        .expect("serialize reference profile");
    assert!(!reference.is_empty());

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedCdc::spawn(Omc::new(), shards, |_| LeapProfiler::new());
        drive(&mut sharded);
        let profile = sharded
            .try_join()
            .expect("pipeline healthy")
            .into_parts()
            .1
            .into_profile();
        let mut bytes = Vec::new();
        profile.write_to(&mut bytes).expect("serialize profile");
        assert_eq!(bytes, reference, "{shards}-shard LEAP bytes diverged");
    }
}

#[test]
fn sharded_hybrid_profile_has_identical_grammars() {
    let mut inline = Cdc::new(Omc::new(), HybridProfiler::new());
    drive(&mut inline);
    let reference = inline.into_parts().1.into_profile();

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedCdc::spawn(Omc::new(), shards, |_| HybridProfiler::new());
        drive(&mut sharded);
        let profile = sharded
            .try_join()
            .expect("pipeline healthy")
            .into_parts()
            .1
            .into_profile();
        assert_eq!(profile.tuples(), reference.tuples());
        let pairs: Vec<_> = profile.iter().collect();
        let ref_pairs: Vec<_> = reference.iter().collect();
        assert_eq!(pairs.len(), ref_pairs.len(), "{shards} shards");
        for ((instr, got), (ref_instr, want)) in pairs.iter().zip(&ref_pairs) {
            assert_eq!(instr, ref_instr);
            assert_eq!(got.group, want.group, "{shards} shards, {instr} group");
            assert_eq!(got.object, want.object, "{shards} shards, {instr} object");
            assert_eq!(got.offset, want.offset, "{shards} shards, {instr} offset");
            assert_eq!(got.time, want.time, "{shards} shards, {instr} time");
        }
        assert_eq!(
            profile.expand_merged(),
            reference.expand_merged(),
            "{shards} shards"
        );
    }
}
