//! Integration: the sharded collection pipeline produces output
//! **byte-identical** to single-threaded collection — the determinism
//! contract that makes sharding a pure throughput change.

use orprof::core::sharded::ShardedCdc;
use orprof::core::{Cdc, Omc, OrSink, OrTuple, ShardableSink, VecOrSink};
use orprof::leap::LeapProfiler;
use orprof::trace::{AccessEvent, AllocEvent, AllocSiteId, InstrId, ProbeSink, RawAddress};
use orprof::whomp::HybridProfiler;
use orprof::workloads::{micro, RunConfig, Tracer, Workload};

/// A pointer-chasing workload with alloc/free churn (decoy objects) —
/// the trace shape that stresses OMC invalidation.
fn workload() -> micro::LinkedList {
    micro::LinkedList::new(256, 3)
}

fn drive(sink: &mut dyn ProbeSink) {
    let cfg = RunConfig::default();
    let mut tracer = Tracer::new(&cfg, sink);
    workload().run(&mut tracer);
    tracer.finish();
}

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn sharded_tuple_stream_is_identical_to_inline() {
    let mut inline = Cdc::new(Omc::new(), VecOrSink::new());
    drive(&mut inline);
    assert!(!inline.sink().is_empty());

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedCdc::spawn(Omc::new(), shards, |_| VecOrSink::new());
        drive(&mut sharded);
        let cdc = sharded.try_join().expect("pipeline healthy");
        assert_eq!(
            cdc.sink().tuples(),
            inline.sink().tuples(),
            "{shards} shards"
        );
        assert_eq!(cdc.time(), inline.time(), "{shards} shards");
        assert_eq!(cdc.untracked(), inline.untracked(), "{shards} shards");
        assert_eq!(
            cdc.probe_anomalies(),
            inline.probe_anomalies(),
            "{shards} shards"
        );
    }
}

#[test]
fn sharded_leap_profile_serializes_to_identical_bytes() {
    let mut inline = Cdc::new(Omc::new(), LeapProfiler::new());
    drive(&mut inline);
    let mut reference = Vec::new();
    inline
        .into_parts()
        .1
        .into_profile()
        .write_to(&mut reference)
        .expect("serialize reference profile");
    assert!(!reference.is_empty());

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedCdc::spawn(Omc::new(), shards, |_| LeapProfiler::new());
        drive(&mut sharded);
        let profile = sharded
            .try_join()
            .expect("pipeline healthy")
            .into_parts()
            .1
            .into_profile();
        let mut bytes = Vec::new();
        profile.write_to(&mut bytes).expect("serialize profile");
        assert_eq!(bytes, reference, "{shards}-shard LEAP bytes diverged");
    }
}

/// A sink that plays three roles in the salvage chain, selected at
/// construction: `armed` dies on its first tuple (the dead shard
/// worker), a `Some(fuse)` accepts that many tuples and then dies (the
/// failing fallback), and the default records quietly.
#[derive(Debug)]
struct SalvageChain {
    armed: bool,
    fuse: Option<usize>,
    inner: VecOrSink,
}

impl OrSink for SalvageChain {
    fn tuple(&mut self, t: &OrTuple) {
        assert!(!self.armed, "armed sink detonated");
        if let Some(fuse) = &mut self.fuse {
            assert!(*fuse > 0, "fallback sink detonated");
            *fuse -= 1;
        }
        self.inner.tuple(t);
    }
}

impl ShardableSink for SalvageChain {
    fn shard_key(t: &OrTuple) -> u64 {
        u64::from(t.instr.0)
    }
    fn merge(parts: Vec<Self>) -> Self {
        SalvageChain {
            armed: false,
            fuse: None,
            inner: VecOrSink::merge(parts.into_iter().map(|p| p.inner).collect()),
        }
    }
}

/// Regression (issue 10): when the salvage *fallback* sink itself dies,
/// the translator must survive to the join and
/// `PipelineStats.salvaged` must still report the tuples the fallback
/// accepted before dying — previously the fallback's panic took the
/// translator (and every lane's counters) down with it.
#[test]
fn salvaged_counter_survives_a_dying_fallback_sink() {
    // Tuples ship to workers (and to the fallback) in batches of 8192;
    // the fuse admits one full batch and trips inside the second.
    const BATCH: usize = 8192;

    let alloc = AllocEvent {
        site: AllocSiteId(0),
        base: RawAddress(0x1000),
        size: 64,
    };
    // Two keys on two shards: instr 0 is first-seen → shard 0
    // (survives), instr 1 → shard 1 (armed, dies on its first batch).
    let wave = |sink: &mut dyn ProbeSink| {
        for i in 0..(BATCH as u64 + 256) {
            sink.access(AccessEvent::load(
                InstrId(0),
                RawAddress(0x1000 + i % 64),
                1,
            ));
            sink.access(AccessEvent::load(
                InstrId(1),
                RawAddress(0x1000 + i % 64),
                1,
            ));
        }
    };

    // Reference: the same stream collected inline.
    let mut inline = Cdc::new(Omc::new(), VecOrSink::new());
    inline.alloc(alloc);
    for _ in 0..4 {
        wave(&mut inline);
    }
    inline.finish();

    let shards = 2;
    let mut sharded = ShardedCdc::spawn_salvaging(Omc::new(), shards, |i| SalvageChain {
        armed: i == 1,
        fuse: (i == shards).then_some(BATCH + BATCH / 2),
        inner: VecOrSink::new(),
    });
    sharded.alloc(alloc);
    wave(&mut sharded);
    // Ship wave 1, then give shard 1's worker time to receive its first
    // batch, die, and drop its receiver, so later flushes bounce into
    // the fallback — which itself dies partway through the second
    // diverted batch.
    sharded.finish();
    std::thread::sleep(std::time::Duration::from_millis(100));
    for _ in 0..3 {
        wave(&mut sharded);
    }

    let join = sharded
        .try_join_salvage()
        .expect("translator must outlive the fallback sink");
    assert!(!join.is_clean());
    assert_eq!(join.degraded.len(), 1);
    assert_eq!(join.degraded[0].worker, "shard 1");
    assert_eq!(join.stats.degraded_shards, vec![1]);

    // The fallback accepted exactly one full diverted batch before its
    // fuse tripped; that batch must be reported even though the
    // fallback died afterwards.
    assert_eq!(join.stats.shards[1].salvaged, BATCH as u64);
    assert_eq!(join.stats.salvaged_tuples(), BATCH as u64);
    assert_eq!(join.stats.shards[0].salvaged, 0);

    // The surviving lane stays byte-identical to the inline run.
    let survived: Vec<&OrTuple> = join
        .cdc
        .sink()
        .inner
        .tuples()
        .iter()
        .filter(|t| t.instr == InstrId(0))
        .collect();
    let reference: Vec<&OrTuple> = inline
        .sink()
        .tuples()
        .iter()
        .filter(|t| t.instr == InstrId(0))
        .collect();
    assert_eq!(survived, reference, "surviving lane degraded");
}

#[test]
fn sharded_hybrid_profile_has_identical_grammars() {
    let mut inline = Cdc::new(Omc::new(), HybridProfiler::new());
    drive(&mut inline);
    let reference = inline.into_parts().1.into_profile();

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedCdc::spawn(Omc::new(), shards, |_| HybridProfiler::new());
        drive(&mut sharded);
        let profile = sharded
            .try_join()
            .expect("pipeline healthy")
            .into_parts()
            .1
            .into_profile();
        assert_eq!(profile.tuples(), reference.tuples());
        let pairs: Vec<_> = profile.iter().collect();
        let ref_pairs: Vec<_> = reference.iter().collect();
        assert_eq!(pairs.len(), ref_pairs.len(), "{shards} shards");
        for ((instr, got), (ref_instr, want)) in pairs.iter().zip(&ref_pairs) {
            assert_eq!(instr, ref_instr);
            assert_eq!(got.group, want.group, "{shards} shards, {instr} group");
            assert_eq!(got.object, want.object, "{shards} shards, {instr} object");
            assert_eq!(got.offset, want.offset, "{shards} shards, {instr} offset");
            assert_eq!(got.time, want.time, "{shards} shards, {instr} time");
        }
        assert_eq!(
            profile.expand_merged(),
            reference.expand_merged(),
            "{shards} shards"
        );
    }
}
