//! Integration: the extension subsystems (FDMO advisers, phase
//! cognizance, hybrid profiler, trace record/replay, profile
//! serialization) over real workloads.

use orprof::core::{Cdc, Omc, OrSink, OrTuple, VecOrSink};
use orprof::leap::{LeapProfile, LeapProfiler};
use orprof::opt::{hot_streams, ClusterAnalysis, FieldReorderAnalysis};
use orprof::phase::{PhaseDetector, PhasedProfiler};
use orprof::sequitur::Sequitur;
use orprof::trace::VecSink;
use orprof::whomp::HybridProfiler;
use orprof::workloads::{micro, spec, RunConfig, Workload};

fn run(workload: &dyn Workload, cfg: &RunConfig, sink: &mut dyn orprof::trace::ProbeSink) {
    let mut tracer = orprof::workloads::Tracer::new(cfg, sink);
    workload.run(&mut tracer);
    tracer.finish();
}

#[test]
fn field_reordering_finds_the_list_layout() {
    // The linked-list traversal touches offsets 0 and 8 back to back;
    // the adviser must pair them.
    let cfg = RunConfig::default();
    let mut cdc = Cdc::new(Omc::new(), FieldReorderAnalysis::new());
    run(&micro::LinkedList::new(64, 4), &cfg, &mut cdc);
    let analysis = cdc.into_parts().1;
    let group_with_pair = analysis
        .groups()
        .into_iter()
        .find(|&g| analysis.affinity(g, 0, 8) > 50)
        .expect("node group has 0<->8 affinity");
    let layout = analysis.suggest_layout(group_with_pair);
    let pos = |o: u64| layout.iter().position(|&x| x == o).unwrap();
    assert_eq!(
        pos(0).abs_diff(pos(8)),
        1,
        "data and next fields adjacent: {layout:?}"
    );
}

#[test]
fn clustering_reflects_traversal_order() {
    let cfg = RunConfig::default();
    let mut cdc = Cdc::new(Omc::new(), ClusterAnalysis::new());
    run(&micro::LinkedList::new(32, 6), &cfg, &mut cdc);
    let analysis = cdc.into_parts().1;
    // The list is traversed in serial order, so some consecutive-serial
    // pair dominates.
    let mut found = false;
    for g in 0..4u32 {
        for (a, b, w) in analysis.top_pairs(orprof::core::GroupId(g), 3) {
            if b.0 == a.0 + 1 && w > 5 {
                found = true;
            }
        }
    }
    assert!(
        found,
        "expected consecutive-serial affinity from the traversal"
    );
}

#[test]
fn hot_streams_cover_the_traversal() {
    let cfg = RunConfig::default();
    #[derive(Default)]
    struct ObjectStream(Sequitur);
    impl OrSink for ObjectStream {
        fn tuple(&mut self, t: &OrTuple) {
            self.0.push(t.object.0);
        }
    }
    let mut cdc = Cdc::new(Omc::new(), ObjectStream::default());
    run(&micro::LinkedList::new(64, 6), &cfg, &mut cdc);
    let grammar = cdc.into_parts().1 .0.grammar();
    let streams = hot_streams(&grammar, 4, 3);
    assert!(
        !streams.is_empty(),
        "repeated traversals must yield hot streams"
    );
    assert!(streams[0].occurrences >= 2);
}

#[test]
fn phase_cognizant_leap_over_bzip2_finds_its_phases() {
    let cfg = RunConfig::default();
    let workload = spec::Bzip2::new(1);
    let detector = PhaseDetector::new(10_000, 0.5);
    let phased = PhasedProfiler::new(detector, |_| LeapProfiler::new());
    let mut cdc = Cdc::new(Omc::new(), phased);
    run(&workload, &cfg, &mut cdc);
    let (phases, detector) = cdc.into_parts().1.into_parts();
    assert!(
        detector.phase_count() >= 2,
        "bzip2 has fill/sort/output phases"
    );
    let total: u64 = phases
        .values()
        .map(|p| p.clone().into_profile().total_accesses())
        .sum();
    // Every access lands in exactly one phase profile.
    let mut counter = orprof::trace::CountingSink::new();
    run(&workload, &cfg, &mut counter);
    assert_eq!(total, counter.stats().accesses());
}

#[test]
fn hybrid_profiler_round_trips_in_time_order() {
    let cfg = RunConfig::default();
    let workload = micro::HashChurn::new(64, 4);

    let mut reference = Cdc::new(Omc::new(), VecOrSink::new());
    run(&workload, &cfg, &mut reference);
    let expected: Vec<(u64, u64, u64, u64, u64)> = reference
        .into_parts()
        .1
        .into_tuples()
        .iter()
        .map(|t| {
            (
                u64::from(t.instr.0),
                u64::from(t.group.0),
                t.object.0,
                t.offset,
                t.time.0,
            )
        })
        .collect();

    let mut cdc = Cdc::new(Omc::new(), HybridProfiler::new());
    run(&workload, &cfg, &mut cdc);
    let profile = cdc.into_parts().1.into_profile();
    assert_eq!(profile.expand_merged(), expected);
}

#[test]
fn trace_record_replay_profiles_identically() {
    let cfg = RunConfig::default();
    let workload = spec::Gzip::new(1);

    // Record the trace to bytes.
    let mut recorder = orprof::trace::TraceWriter::new(Vec::new()).unwrap();
    run(&workload, &cfg, &mut recorder);
    let bytes = recorder.into_inner().unwrap();

    // Profile live and from the replayed trace.
    let mut live = Cdc::new(Omc::new(), LeapProfiler::new());
    run(&workload, &cfg, &mut live);
    let live_profile = live.into_parts().1.into_profile();

    let mut replayed = Cdc::new(Omc::new(), LeapProfiler::new());
    orprof::trace::replay(&mut bytes.as_slice(), &mut replayed).unwrap();
    let replayed_profile = replayed.into_parts().1.into_profile();

    assert_eq!(
        live_profile.total_accesses(),
        replayed_profile.total_accesses()
    );
    assert_eq!(
        live_profile.encoded_bytes(),
        replayed_profile.encoded_bytes()
    );

    // And the serialized profile files are byte-identical.
    let (mut a, mut b) = (Vec::new(), Vec::new());
    live_profile.write_to(&mut a).unwrap();
    replayed_profile.write_to(&mut b).unwrap();
    assert_eq!(a, b);
    let back = LeapProfile::read_from(&mut a.as_slice()).unwrap();
    assert_eq!(back.total_accesses(), live_profile.total_accesses());
}

#[test]
fn raw_trace_replays_into_any_sink() {
    // A recorded trace feeds raw-address consumers too (Connors,
    // RASG) — the trace is profiler-agnostic.
    let cfg = RunConfig::default();
    let workload = micro::Matrix::new(16, 2);
    let mut recorder = orprof::trace::TraceWriter::new(Vec::new()).unwrap();
    run(&workload, &cfg, &mut recorder);
    let bytes = recorder.into_inner().unwrap();

    let mut direct = VecSink::new();
    run(&workload, &cfg, &mut direct);
    let mut replayed = VecSink::new();
    orprof::trace::replay(&mut bytes.as_slice(), &mut replayed).unwrap();
    assert_eq!(direct.events(), replayed.events());
}
