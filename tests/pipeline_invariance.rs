//! Integration: the paper's central invariance, checked across the
//! whole pipeline — object-relative profiles are identical under every
//! allocator, randomization seed, and linker shift, while raw traces
//! are not.

use orprof::allocsim::AllocatorKind;
use orprof::core::{Cdc, Omc, OrTuple, VecOrSink};
use orprof::trace::VecSink;
use orprof::workloads::{micro, spec_suite, RunConfig, Workload};

fn or_tuples(workload: &dyn Workload, cfg: &RunConfig) -> Vec<OrTuple> {
    let mut cdc = Cdc::new(Omc::new(), VecOrSink::new());
    orp_run(workload, cfg, &mut cdc);
    assert_eq!(cdc.untracked(), 0, "workloads only touch tracked objects");
    assert_eq!(cdc.probe_anomalies(), 0, "object probes must be consistent");
    cdc.into_parts().1.into_tuples()
}

fn raw_addrs(workload: &dyn Workload, cfg: &RunConfig) -> Vec<u64> {
    let mut sink = VecSink::new();
    orp_run(workload, cfg, &mut sink);
    sink.accesses().iter().map(|a| a.addr.0).collect()
}

fn orp_run(workload: &dyn Workload, cfg: &RunConfig, sink: &mut dyn orprof::trace::ProbeSink) {
    let mut tracer = orprof::workloads::Tracer::new(cfg, sink);
    workload.run(&mut tracer);
    tracer.finish();
}

fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig::default(),
        RunConfig {
            allocator: AllocatorKind::Bump,
            ..RunConfig::default()
        },
        RunConfig {
            allocator: AllocatorKind::Buddy,
            ..RunConfig::default()
        },
        RunConfig {
            allocator: AllocatorKind::Randomizing,
            heap_seed: 7,
            ..RunConfig::default()
        },
        RunConfig {
            allocator: AllocatorKind::Randomizing,
            heap_seed: 8,
            ..RunConfig::default()
        },
        RunConfig {
            linker_shift: 0x3000,
            ..RunConfig::default()
        },
    ]
}

#[test]
fn object_relative_profile_is_invariant_across_configurations() {
    let workload = micro::LinkedList::new(96, 4);
    let baseline = or_tuples(&workload, &configs()[0]);
    assert!(!baseline.is_empty());
    for cfg in &configs()[1..] {
        assert_eq!(
            or_tuples(&workload, cfg),
            baseline,
            "object-relative stream changed under {cfg:?}"
        );
    }
}

#[test]
fn raw_traces_differ_across_allocators() {
    let workload = micro::LinkedList::new(96, 4);
    let baseline = raw_addrs(&workload, &configs()[0]);
    for cfg in &configs()[1..] {
        assert_ne!(
            raw_addrs(&workload, cfg),
            baseline,
            "raw trace unexpectedly stable: {cfg:?}"
        );
    }
}

#[test]
fn every_spec_workload_is_invariant_under_the_randomizing_allocator() {
    // The strongest artifact source, applied to the full suite at small
    // scale.
    for workload in spec_suite(1) {
        let a = or_tuples(
            workload.as_ref(),
            &RunConfig {
                allocator: AllocatorKind::Randomizing,
                heap_seed: 1,
                ..RunConfig::default()
            },
        );
        let b = or_tuples(
            workload.as_ref(),
            &RunConfig {
                allocator: AllocatorKind::Randomizing,
                heap_seed: 999,
                ..RunConfig::default()
            },
        );
        assert_eq!(
            a,
            b,
            "{} object-relative stream not invariant",
            workload.name()
        );
    }
}

#[test]
fn timestamps_are_dense_and_ordered() {
    let workload = micro::HashChurn::new(64, 4);
    let tuples = or_tuples(&workload, &RunConfig::default());
    for (i, t) in tuples.iter().enumerate() {
        assert_eq!(t.time.0, i as u64, "time-stamps count collected accesses");
    }
}
