//! Integration: WHOMP over real workloads — losslessness, profile
//! consistency, and the OMSG-vs-RASG comparison on full pipelines.

use orprof::core::{Cdc, Omc, VecOrSink};
use orprof::whomp::{compression_gain_percent, RasgProfiler, WhompProfiler};
use orprof::workloads::{micro, spec, RunConfig, Workload};

fn run(workload: &dyn Workload, cfg: &RunConfig, sink: &mut dyn orprof::trace::ProbeSink) {
    let mut tracer = orprof::workloads::Tracer::new(cfg, sink);
    workload.run(&mut tracer);
    tracer.finish();
}

#[test]
fn omsg_round_trips_a_real_workload_exactly() {
    // Allocation churn with address reuse is the adversarial case for
    // the object table; the grammars must still reproduce the stream
    // exactly.
    let cfg = RunConfig::default();
    let workload = micro::HashChurn::new(128, 6);

    // Reference: the materialized object-relative stream.
    let mut ref_cdc = Cdc::new(Omc::new(), VecOrSink::new());
    run(&workload, &cfg, &mut ref_cdc);
    let reference: Vec<(u64, u64, u64, u64)> = ref_cdc
        .into_parts()
        .1
        .into_tuples()
        .iter()
        .map(|t| {
            (
                u64::from(t.instr.0),
                u64::from(t.group.0),
                t.object.0,
                t.offset,
            )
        })
        .collect();

    // WHOMP's grammars must re-expand to exactly that stream.
    let mut cdc = Cdc::new(Omc::new(), WhompProfiler::new());
    run(&workload, &cfg, &mut cdc);
    let omsg = cdc.into_parts().1.into_omsg();
    assert_eq!(omsg.expand(), reference);
}

#[test]
fn omsg_compresses_repetitive_workloads() {
    let cfg = RunConfig::default();
    let workload = micro::LinkedList::new(128, 8);
    let mut cdc = Cdc::new(Omc::new(), WhompProfiler::new());
    run(&workload, &cfg, &mut cdc);
    let omsg = cdc.into_parts().1.into_omsg();
    assert!(
        omsg.total_size() * 2 < omsg.tuples(),
        "repeated traversals must compress at least 2x: {} symbols for {} tuples",
        omsg.total_size(),
        omsg.tuples()
    );
}

#[test]
fn omsg_beats_rasg_on_the_gzip_workload() {
    let cfg = RunConfig::default();
    let workload = spec::Gzip::new(1);

    let mut cdc = Cdc::new(Omc::new(), WhompProfiler::new());
    run(&workload, &cfg, &mut cdc);
    let omsg = cdc.into_parts().1.into_omsg();

    let mut rasg = RasgProfiler::new();
    run(&workload, &cfg, &mut rasg);
    let rasg = rasg.into_rasg();

    assert_eq!(
        omsg.tuples(),
        rasg.accesses(),
        "both profiles must see the same trace"
    );
    let gain = compression_gain_percent(&omsg, &rasg);
    assert!(gain > 0.0, "OMSG must be smaller on gzip, got {gain:.1}%");
}

#[test]
fn omsg_dimension_streams_stay_aligned() {
    let cfg = RunConfig::default();
    let workload = micro::Matrix::new(24, 3);
    let mut cdc = Cdc::new(Omc::new(), WhompProfiler::new());
    run(&workload, &cfg, &mut cdc);
    let omsg = cdc.into_parts().1.into_omsg();
    for (name, grammar) in omsg.dimensions() {
        assert_eq!(
            grammar.expanded_len(),
            omsg.tuples(),
            "{name} stream length diverged from the tuple count"
        );
    }
}
