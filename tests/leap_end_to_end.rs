//! Integration: LEAP over real workloads — dependence frequencies
//! against ground truth, stride identification, Connors comparison,
//! and the sample-quality bookkeeping.

use orprof::core::{Cdc, Omc};
use orprof::leap::connors::ConnorsProfiler;
use orprof::leap::lossless::{LosslessDependenceProfiler, LosslessStrideProfiler};
use orprof::leap::strides::{stride_score, stride_stats, STRONG_STRIDE_THRESHOLD};
use orprof::leap::{errors, mdf, LeapProfiler};
use orprof::workloads::{micro, spec, RunConfig, Workload};

fn run(workload: &dyn Workload, cfg: &RunConfig, sink: &mut dyn orprof::trace::ProbeSink) {
    let mut tracer = orprof::workloads::Tracer::new(cfg, sink);
    workload.run(&mut tracer);
    tracer.finish();
}

fn leap_profile(workload: &dyn Workload, cfg: &RunConfig) -> orprof::leap::LeapProfile {
    let mut cdc = Cdc::new(Omc::new(), LeapProfiler::new());
    run(workload, cfg, &mut cdc);
    cdc.into_parts().1.into_profile()
}

fn truth(workload: &dyn Workload, cfg: &RunConfig) -> orprof::leap::DependenceProfile {
    let mut cdc = Cdc::new(Omc::new(), LosslessDependenceProfiler::new());
    run(workload, cfg, &mut cdc);
    cdc.into_parts().1.into_profile()
}

#[test]
fn leap_matches_ground_truth_on_regular_dependences() {
    // bzip2's fill -> output-scan pair is a fully regular
    // producer/consumer: LEAP must get it exactly right.
    let cfg = RunConfig::default();
    let workload = spec::Bzip2::new(1);
    let estimate = mdf::dependence_frequencies(&leap_profile(&workload, &cfg));
    let reference = truth(&workload, &cfg);

    let scored = errors::score_pairs(&estimate, &reference);
    assert!(!scored.is_empty(), "bzip2 must expose dependent pairs");
    let exact = scored.iter().filter(|p| p.error_percent() == 0.0).count();
    assert!(
        exact >= 2,
        "expected exact regular pairs, got {exact} of {}",
        scored.len()
    );
}

#[test]
fn leap_never_invents_dependences() {
    let cfg = RunConfig::default();
    for workload in [
        &spec::Gzip::new(1) as &dyn Workload,
        &micro::HashChurn::new(128, 6),
    ] {
        let estimate = mdf::dependence_frequencies(&leap_profile(workload, &cfg));
        let reference = truth(workload, &cfg);
        for (st, ld) in estimate.pairs().keys() {
            assert!(
                reference.frequency(*st, *ld) > 0.0,
                "LEAP reported a pair absent from ground truth"
            );
        }
    }
}

#[test]
fn connors_never_overestimates_on_real_traces() {
    let cfg = RunConfig::default();
    let workload = spec::Twolf::new(1);
    let mut connors = ConnorsProfiler::new();
    run(&workload, &cfg, &mut connors);
    let estimate = connors.into_profile();
    let reference = truth(&workload, &cfg);
    for pair in errors::score_pairs(&estimate, &reference) {
        assert!(
            pair.error_percent() <= 1e-9,
            "window profiler overestimated {:?}",
            (pair.store, pair.load)
        );
    }
}

#[test]
fn leap_beats_connors_within_ten_percent() {
    let cfg = RunConfig::default();
    let (mut leap_good, mut connors_good, mut total) = (0usize, 0usize, 0usize);
    for workload in [
        &spec::Gzip::new(1) as &dyn Workload,
        &spec::Mcf::new(1),
        &spec::Bzip2::new(1),
    ] {
        let reference = truth(workload, &cfg);
        let leap_est = mdf::dependence_frequencies(&leap_profile(workload, &cfg));
        let mut connors = ConnorsProfiler::new();
        run(workload, &cfg, &mut connors);
        let connors_est = connors.into_profile();

        let leap_scored = errors::score_pairs(&leap_est, &reference);
        let connors_scored = errors::score_pairs(&connors_est, &reference);
        leap_good += leap_scored
            .iter()
            .filter(|p| p.error_percent().abs() <= 10.0)
            .count();
        connors_good += connors_scored
            .iter()
            .filter(|p| p.error_percent().abs() <= 10.0)
            .count();
        total += leap_scored.len();
    }
    assert!(total > 0);
    assert!(
        leap_good > connors_good,
        "LEAP ({leap_good}/{total}) must beat Connors ({connors_good}/{total})"
    );
}

#[test]
fn stride_identification_matches_reference_on_matrix() {
    let cfg = RunConfig::default();
    let workload = micro::Matrix::new(32, 4);
    let leap = stride_stats(&leap_profile(&workload, &cfg));
    let mut cdc = Cdc::new(Omc::new(), LosslessStrideProfiler::new());
    run(&workload, &cfg, &mut cdc);
    let reference = cdc.into_parts().1.into_profile();

    let real = reference.strongly_strided(STRONG_STRIDE_THRESHOLD);
    assert!(!real.is_empty(), "the matrix sweeps are strongly strided");
    let score = stride_score(&leap, &reference).expect("non-empty reference");
    assert!(
        score >= 0.5,
        "LEAP found too few strided instructions: {score}"
    );
}

#[test]
fn sample_quality_and_size_bookkeeping_are_consistent() {
    let cfg = RunConfig::default();
    for workload in [&spec::Mcf::new(1) as &dyn Workload, &spec::Parser::new(1)] {
        let profile = leap_profile(workload, &cfg);
        let q = profile.sample_quality();
        assert!(
            (0.0..=1.0).contains(&q.accesses_captured),
            "{}",
            workload.name()
        );
        assert!(
            (0.0..=1.0).contains(&q.instructions_captured),
            "{}",
            workload.name()
        );
        assert!(profile.encoded_bytes() > 0);
        assert!(
            profile.compression_ratio() > 1.0,
            "{}: LEAP profile must be smaller than the trace",
            workload.name()
        );
        // Per-stream seen totals must add up to the exact access count.
        let seen: u64 = profile.streams().values().map(|s| s.full.seen()).sum();
        assert_eq!(seen, profile.total_accesses());
    }
}
