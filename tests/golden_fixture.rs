//! Golden-file guard for the `.orp` container format.
//!
//! `tests/fixtures/golden.orp` is a checked-in container built from a
//! fixed tuple sequence. Regenerating it byte-for-byte proves the wire
//! format did not drift; parsing it proves old files stay readable.
//! An intentional format change must bump [`orprof::format::FORMAT_VERSION`]
//! and refresh the fixture:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_fixture
//! ```

use std::path::PathBuf;

use orprof::core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
use orprof::trace::{AccessKind, InstrId};
use orprof::whomp::{Omsg, WhompProfiler};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.orp")
}

/// A fixed, RNG-free tuple sequence exercising all four OMSG
/// dimensions.
fn golden_profile() -> Omsg {
    let mut p = WhompProfiler::new();
    for k in 0..300u64 {
        p.tuple(&OrTuple {
            instr: InstrId(u32::try_from(k % 5).unwrap()),
            kind: if k % 5 == 3 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            group: GroupId(u32::try_from(k % 3).unwrap()),
            object: ObjectSerial(k / 9),
            offset: (k % 9) * 8,
            time: Timestamp(k),
            size: 8,
        });
    }
    p.into_omsg()
}

fn golden_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    golden_profile().write_to(&mut buf).unwrap();
    buf
}

#[test]
fn golden_container_bytes_are_stable() {
    let bytes = golden_bytes();
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write fixture");
        return;
    }
    let golden = std::fs::read(&path).expect(
        "fixture missing; regenerate with UPDATE_GOLDEN=1 cargo test --test golden_fixture",
    );
    assert_eq!(
        bytes, golden,
        "serialized container differs from the golden fixture: the wire format changed. \
         If intentional, bump FORMAT_VERSION and refresh the fixture with UPDATE_GOLDEN=1."
    );
}

#[test]
fn golden_container_still_parses() {
    let golden = std::fs::read(fixture_path()).expect(
        "fixture missing; regenerate with UPDATE_GOLDEN=1 cargo test --test golden_fixture",
    );
    let omsg = Omsg::read_from(&mut golden.as_slice()).expect("golden fixture readable");
    let reference = golden_profile();
    assert_eq!(omsg.tuples(), reference.tuples());
    assert_eq!(omsg.expand(), reference.expand());
    assert_eq!(omsg.total_size(), reference.total_size());
}
