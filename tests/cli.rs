//! End-to-end subprocess tests for `orprof-cli`: record a trace,
//! profile it, inspect and report the resulting files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orprof-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("orprof-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn list_names_all_workloads_and_profilers() {
    let out = cli().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "164.gzip",
        "300.twolf",
        "micro.btree",
        "whomp",
        "rasg",
        "leap",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn unknown_workload_fails_with_a_message() {
    let out = cli()
        .args(["run", "--workload", "999.nope"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn no_arguments_prints_usage() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn record_profile_inspect_report_pipeline() {
    let trace = tmp("pipeline.orpt");
    let profile = tmp("pipeline.orpl");

    // Record a trace.
    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.matrix",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // Profile from the trace.
    let out = cli()
        .args([
            "run",
            "--from-trace",
            trace.to_str().unwrap(),
            "--profiler",
            "leap",
            "--out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("replayed"), "{text}");
    assert!(text.contains("sample quality"), "{text}");

    // Inspect the profile.
    let out = cli()
        .args(["inspect", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("LEAP profile"));

    // Report dependences/strides from it.
    let out = cli()
        .args(["report", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("strongly-strided"), "{text}");

    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(profile);
}

#[test]
fn whomp_profile_roundtrips_through_a_file() {
    let profile = tmp("whomp.orpw");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "whomp",
            "--out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(["inspect", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("WHOMP (OMSG) profile"), "{text}");
    assert!(text.contains("offset"), "{text}");

    // report on a non-LEAP profile fails cleanly.
    let out = cli()
        .args(["report", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());

    let _ = std::fs::remove_file(profile);
}

#[test]
fn checkpoint_and_resume_roundtrip() {
    let ckpt = tmp("ckpt.orp");
    let resumed = tmp("resumed.orp");

    // Run under LEAP and checkpoint the session at the end.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "leap",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The checkpoint is an ordinary container: inspect names its chunks
    // and the profiler whose state it holds.
    let out = cli()
        .args(["inspect", ckpt.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("checkpoint"), "{text}");
    assert!(text.contains("profiler state: leap"), "{text}");
    assert!(text.contains("OMCK"), "{text}");

    // Resume it and keep profiling; the continued profile is a normal
    // LEAP container.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "leap",
            "--resume",
            ckpt.to_str().unwrap(),
            "--out",
            resumed.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("resumed from checkpoint"), "{text}");

    let out = cli()
        .args(["inspect", resumed.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("LEAP profile"), "{text}");

    // A checkpoint restores only into its own profiler type.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "whomp",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("different profiler"), "{err}");

    let _ = std::fs::remove_file(ckpt);
    let _ = std::fs::remove_file(resumed);
}

#[test]
fn inspect_rejects_garbage_files() {
    let garbage = tmp("garbage.bin");
    std::fs::write(&garbage, b"not a profile at all").unwrap();
    let out = cli()
        .args(["inspect", garbage.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let _ = std::fs::remove_file(garbage);
}
