//! End-to-end subprocess tests for `orprof-cli`: record a trace,
//! profile it, inspect and report the resulting files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orprof-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("orprof-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn list_names_all_workloads_and_profilers() {
    let out = cli().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "164.gzip",
        "300.twolf",
        "micro.btree",
        "whomp",
        "rasg",
        "leap",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn unknown_workload_fails_with_a_message() {
    let out = cli()
        .args(["run", "--workload", "999.nope"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn no_arguments_prints_usage() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn record_profile_inspect_report_pipeline() {
    let trace = tmp("pipeline.orpt");
    let profile = tmp("pipeline.orpl");

    // Record a trace.
    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.matrix",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // Profile from the trace.
    let out = cli()
        .args([
            "run",
            "--from-trace",
            trace.to_str().unwrap(),
            "--profiler",
            "leap",
            "--out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("replayed"), "{text}");
    assert!(text.contains("sample quality"), "{text}");

    // Inspect the profile.
    let out = cli()
        .args(["inspect", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("LEAP profile"));

    // Report dependences/strides from it.
    let out = cli()
        .args(["report", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("strongly-strided"), "{text}");

    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(profile);
}

#[test]
fn whomp_profile_roundtrips_through_a_file() {
    let profile = tmp("whomp.orpw");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "whomp",
            "--out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(["inspect", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("WHOMP (OMSG) profile"), "{text}");
    assert!(text.contains("offset"), "{text}");

    // report on a non-LEAP profile fails cleanly.
    let out = cli()
        .args(["report", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());

    let _ = std::fs::remove_file(profile);
}

#[test]
fn checkpoint_and_resume_roundtrip() {
    let ckpt = tmp("ckpt.orp");
    let resumed = tmp("resumed.orp");

    // Run under LEAP and checkpoint the session at the end.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "leap",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The checkpoint is an ordinary container: inspect names its chunks
    // and the profiler whose state it holds.
    let out = cli()
        .args(["inspect", ckpt.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("checkpoint"), "{text}");
    assert!(text.contains("profiler state: leap"), "{text}");
    assert!(text.contains("OMCK"), "{text}");

    // Resume it and keep profiling; the continued profile is a normal
    // LEAP container.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "leap",
            "--resume",
            ckpt.to_str().unwrap(),
            "--out",
            resumed.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("resumed from checkpoint"), "{text}");

    let out = cli()
        .args(["inspect", resumed.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("LEAP profile"), "{text}");

    // A checkpoint restores only into its own profiler type.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "whomp",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("different profiler"), "{err}");

    let _ = std::fs::remove_file(ckpt);
    let _ = std::fs::remove_file(resumed);
}

#[test]
fn misspelled_flag_is_an_error_not_silently_ignored() {
    // Regression: the old positional parser skipped flags it did not
    // recognize, so `--alloctor bump` ran with the default allocator.
    let out = cli()
        .args(["run", "--workload", "micro.matrix", "--alloctor", "bump"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag --alloctor"), "{err}");
}

#[test]
fn value_flag_at_end_without_a_value_is_an_error() {
    // Regression: the old parser returned None for a trailing value
    // flag, silently running without an output file.
    let out = cli()
        .args(["run", "--workload", "micro.matrix", "--out"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--out") && err.contains("value"), "{err}");
}

#[test]
fn value_flag_does_not_consume_the_next_flag_as_its_value() {
    // Regression: `--workload --profiler` used to run the workload
    // literally named "--profiler" and report it as unknown; the parser
    // must reject the malformed flag pair itself.
    let out = cli()
        .args(["run", "--workload", "--profiler"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--workload") && err.contains("--profiler"),
        "{err}"
    );
    assert!(!err.contains("unknown workload"), "{err}");
}

#[test]
fn stats_and_metrics_out_leave_the_profile_byte_identical() {
    let plain = tmp("plain.orp");
    let metered = tmp("metered.orp");
    let json = tmp("metered.json");
    let base = [
        "run",
        "--workload",
        "micro.linked_list",
        "--profiler",
        "whomp",
    ];

    let out = cli()
        .args(base)
        .args(["--out", plain.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(base)
        .args([
            "--out",
            metered.to_str().unwrap(),
            "--stats",
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The human table goes to stderr, not stdout.
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("run report: run"), "{err}");
    assert!(err.contains("omc.memo_hits"), "{err}");

    let plain_bytes = std::fs::read(&plain).unwrap();
    let metered_bytes = std::fs::read(&metered).unwrap();
    assert_eq!(
        plain_bytes, metered_bytes,
        "metrics collection must not change the profile"
    );

    // The JSON report carries the stable schema markers.
    let doc = std::fs::read_to_string(&json).unwrap();
    for needle in [
        "\"schema_version\": 1",
        "\"command\": \"run\"",
        "\"omc.memo_hits\"",
        "\"profile.bytes\"",
        "\"omc.memo_hit_rate\"",
        "\"shard_counts\"",
    ] {
        assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
    }

    let _ = std::fs::remove_file(plain);
    let _ = std::fs::remove_file(metered);
    let _ = std::fs::remove_file(json);
}

#[test]
fn sharded_run_reports_per_shard_counts() {
    let json = tmp("sharded.json");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--shards",
            "3",
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"shards\": 3"), "{doc}");
    assert!(doc.contains("\"shard\": 2"), "{doc}");
    assert!(doc.contains("pipeline.tuples_routed"), "{doc}");
    let _ = std::fs::remove_file(json);
}

#[test]
fn embedded_report_roundtrips_through_inspect() {
    let profile = tmp("embedded.orp");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "leap",
            "--out",
            profile.to_str().unwrap(),
            "--embed-report",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(["inspect", profile.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("MREP"), "{text}");
    assert!(text.contains("\"schema_version\": 1"), "{text}");
    // The profile payload itself still decodes behind the extra chunk.
    assert!(text.contains("LEAP profile"), "{text}");

    let _ = std::fs::remove_file(profile);
}

#[test]
fn embed_report_without_out_is_an_error() {
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--embed-report",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--embed-report requires --out"), "{err}");
}

/// Produces a valid LEAP profile file for the corruption tests (LEAP so
/// that `report` would accept the intact file).
fn write_profile(name: &str) -> PathBuf {
    let path = tmp(name);
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "leap",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn truncated_profile_fails_inspect_and_report_with_typed_errors() {
    let path = write_profile("truncated.orp");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&path, &bytes).unwrap();

    for cmd in ["inspect", "report"] {
        let out = cli()
            .args([cmd, path.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "{cmd} accepted a truncated file");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("error:"), "{cmd}: {err}");
        assert!(!err.contains("panicked"), "{cmd}: {err}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn bit_flipped_profile_fails_inspect_and_report_with_typed_errors() {
    let path = write_profile("bitflip.orp");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    for cmd in ["inspect", "report"] {
        let out = cli()
            .args([cmd, path.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "{cmd} accepted a corrupted file");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("error:"), "{cmd}: {err}");
        assert!(!err.contains("panicked"), "{cmd}: {err}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn record_emits_a_run_report_with_trace_io_counters() {
    let trace = tmp("record-report.orpt");
    let json = tmp("record-report.json");
    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.matrix",
            "--out",
            trace.to_str().unwrap(),
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"command\": \"record\""), "{doc}");
    assert!(doc.contains("trace.write_chunks"), "{doc}");
    assert!(doc.contains("trace.file_bytes"), "{doc}");
    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(json);
}

#[test]
fn inspect_rejects_garbage_files() {
    let garbage = tmp("garbage.bin");
    std::fs::write(&garbage, b"not a profile at all").unwrap();
    let out = cli()
        .args(["inspect", garbage.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let _ = std::fs::remove_file(garbage);
}

#[test]
fn grammar_workers_run_is_byte_identical_and_reports_worker_metrics() {
    let seq = tmp("grammar-seq.orp");
    let pipe = tmp("grammar-pipe.orp");
    let json = tmp("grammar-pipe.json");
    for (out_path, extra) in [(&seq, &[][..]), (&pipe, &["--grammar-workers", "4"][..])] {
        let out = cli()
            .args([
                "run",
                "--workload",
                "micro.matrix",
                "--profiler",
                "whomp",
                "--out",
                out_path.to_str().unwrap(),
                "--metrics-out",
                json.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&seq).unwrap(),
        std::fs::read(&pipe).unwrap(),
        "pipelined grammar construction must not change the profile"
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("grammar.workers"), "{doc}");
    assert!(doc.contains("grammar.rules.offset"), "{doc}");
    assert!(doc.contains("grammar.symbols.instruction"), "{doc}");
    assert!(doc.contains("grammar.batches.object"), "{doc}");
    assert!(doc.contains("grammar.worker_busy_ns.group"), "{doc}");
    for p in [&seq, &pipe, &json] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn grammar_workers_rejects_incompatible_flag_combinations() {
    for args in [
        &["--profiler", "leap", "--grammar-workers", "2"][..],
        &[
            "--profiler",
            "whomp",
            "--grammar-workers",
            "2",
            "--checkpoint",
            "x.orp",
        ][..],
        &[
            "--profiler",
            "hybrid",
            "--grammar-workers",
            "2",
            "--shards",
            "2",
        ][..],
        &[
            "--profiler",
            "hybrid",
            "--grammar-workers",
            "2",
            "--resume",
            "x.orp",
        ][..],
    ] {
        let out = cli()
            .args(["run", "--workload", "micro.matrix"])
            .args(args)
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "should reject: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{err}");
    }
}

#[test]
fn sequential_grammar_runs_also_report_grammar_shape() {
    // The grammar.rules/grammar.symbols families are profiler facts,
    // not pipeline facts: they must appear without --grammar-workers.
    let json = tmp("grammar-shape.json");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.linked_list",
            "--profiler",
            "rasg",
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("grammar.rules.records"), "{doc}");
    assert!(doc.contains("grammar.symbols.records"), "{doc}");
    assert!(!doc.contains("grammar.workers"), "{doc}");
    let _ = std::fs::remove_file(json);
}

#[test]
fn sampled_runs_are_byte_identical_across_inline_and_sharded() {
    let inline = tmp("sampled-inline.orpl");
    let sharded = tmp("sampled-sharded.orpl");
    let json = tmp("sampled.json");
    for (path, shards) in [(&inline, "1"), (&sharded, "3")] {
        let out = cli()
            .args([
                "run",
                "--workload",
                "micro.matrix",
                "--profiler",
                "leap",
                "--sample",
                "rate=4",
                "--shards",
                shards,
                "--out",
                path.to_str().unwrap(),
                "--metrics-out",
                json.to_str().unwrap(),
            ])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&inline).unwrap(),
        std::fs::read(&sharded).unwrap(),
        "fixed-rate sampling must not depend on the collection path"
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    for key in [
        "sample.kept",
        "sample.dropped",
        "sample.rate",
        "sample.scaled_accesses",
    ] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }
    for p in [inline, sharded, json] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn budget_mode_reports_controller_metrics() {
    let json = tmp("budget.json");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--sample",
            "budget=50%",
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    for key in ["sample.adjustments", "sample.overhead", "sample.kept"] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }
    let _ = std::fs::remove_file(json);
}

/// Regression (issue 10): `SamplingPolicy::Reservoir` existed in the
/// library but no CLI flag reached it — `--sample reservoir=<k>` must
/// open a reservoir-sampled session whose checkpoint inspects as one.
#[test]
fn reservoir_sampling_is_reachable_from_the_cli() {
    let ckpt = tmp("reservoir.orp");
    let json = tmp("reservoir.json");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--sample",
            "reservoir=8",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    for key in ["sample.kept", "sample.dropped", "sample.scaled_accesses"] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }

    let out = cli()
        .args(["inspect", ckpt.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("reservoir capacity 8"), "{text}");
    for p in [ckpt, json] {
        let _ = std::fs::remove_file(p);
    }
}

/// Regression (issue 10): budget runs used to reject `--checkpoint`
/// because the controller's calibration wasn't serializable. Now the
/// checkpoint carries the controller and a plain `--resume` keeps
/// holding the budget.
#[test]
fn budget_checkpoint_resumes_with_its_controller() {
    let ckpt = tmp("budget-resume.orp");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--sample",
            "budget=50%",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = tmp("budget-resume.json");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--resume",
            ckpt.to_str().unwrap(),
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("sample budget resumed at rate"), "{text}");
    let doc = std::fs::read_to_string(&json).unwrap();
    for key in ["sample.adjustments", "sample.overhead"] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }
    for p in [ckpt, json] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sample_flag_rejects_incoherent_combinations() {
    for args in [
        ["--profiler", "leap", "--sample", "rate=0"].as_slice(),
        &["--profiler", "leap", "--sample", "sideways"],
        &["--profiler", "leap", "--sample", "reservoir=0"],
        &["--profiler", "rasg", "--sample", "reservoir=8"],
        &["--profiler", "rasg", "--sample", "rate=4"],
        &[
            "--profiler",
            "leap",
            "--sample",
            "budget=10%",
            "--shards",
            "2",
        ],
        &[
            "--profiler",
            "leap",
            "--sample",
            "rate=4",
            "--resume",
            "nonexistent.orp",
        ],
    ] {
        let out = cli()
            .args(["run", "--workload", "micro.matrix"])
            .args(args)
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "should reject: {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{err}");
    }
}

#[test]
fn serve_streams_a_tenant_and_reports_orpd_metrics() {
    use orprof::format::Hello;
    use orprof::orpd::{shutdown_daemon, TenantClient, DONE_CLEAN};
    use orprof::trace::VecSink;
    use orprof::workloads::{micro, RunConfig, Workload};

    let dir = tmp("serve");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("orpd.sock");
    let json = dir.join("serve.json");

    let child = cli()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--dir",
            dir.to_str().unwrap(),
            "--stats",
            "--metrics-out",
            json.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(socket.exists(), "daemon socket never appeared");

    // Stream one tenant through the daemon, then the inline oracle.
    let mut sink = VecSink::new();
    micro::Matrix::new(48, 4).run_with(&RunConfig::default(), &mut sink);
    let events = sink.into_events();
    let hello = Hello::new("cli-tenant").expect("tenant name");
    let mut client = TenantClient::connect(&socket, &hello).expect("connect");
    for &ev in &events {
        client.event(ev).expect("event");
    }
    let done = client.finish().expect("finish");
    assert_eq!(done.status, DONE_CLEAN);
    assert_eq!(done.events, events.len() as u64);

    shutdown_daemon(&socket).expect("shutdown handshake");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("orpd listening"), "{text}");
    assert!(
        text.contains("orpd drained: 1 sessions (1 finished"),
        "{text}"
    );
    // --stats renders the human table on stderr.
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("run report: serve"), "{err}");
    assert!(err.contains("orpd.sessions.finished"), "{err}");

    // The served artifact is byte-identical to the inline session path.
    let mut session = orprof::core::Session::new(orprof::leap::LeapProfiler::new());
    session.feed(&events);
    let mut expected = Vec::new();
    session.finalize(&mut expected).expect("inline finalize");
    let served = std::fs::read(dir.join("cli-tenant.orp")).expect("artifact");
    assert_eq!(served, expected, "served profile differs from inline path");

    // The JSON report carries the serve command and orpd.* vocabulary.
    let doc = std::fs::read_to_string(&json).unwrap();
    for needle in [
        "\"schema_version\": 1",
        "\"command\": \"serve\"",
        "\"orpd.sessions.started\"",
        "\"orpd.sessions.finished\"",
        "\"orpd.frames\"",
        "\"orpd.events\"",
    ] {
        assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
