//! End-to-end subprocess tests for `orprof-cli optimize`: the closed
//! loop from profile through plan to re-simulated miss rates, and the
//! durability of the `PLAN` container it writes.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orprof-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("orprof-opt-test-{}-{name}", std::process::id()));
    p
}

fn optimize(args: &[&str]) -> std::process::Output {
    let out = cli().arg("optimize").args(args).output().expect("spawn");
    assert!(
        out.status.success(),
        "optimize {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn same_trace_yields_a_byte_identical_plan() {
    let trace = tmp("det.orpt");
    let first = tmp("det-a.orp");
    let second = tmp("det-b.orp");

    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.linked_list",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for plan in [&first, &second] {
        optimize(&[
            "--from-trace",
            trace.to_str().unwrap(),
            "--plan-out",
            plan.to_str().unwrap(),
        ]);
    }
    let a = std::fs::read(&first).unwrap();
    let b = std::fs::read(&second).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same trace must yield a byte-identical PLAN chunk");

    for p in [&trace, &first, &second] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn live_run_and_trace_replay_agree_on_the_plan() {
    // The plan is derived from the object-relative stream, which the
    // trace preserves exactly: optimizing from a live run and from its
    // recorded trace must agree byte for byte.
    let trace = tmp("inv.orpt");
    let live = tmp("inv-live.orp");
    let replayed = tmp("inv-replay.orp");

    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.linked_list",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = optimize(&[
        "--workload",
        "micro.linked_list",
        "--plan-out",
        live.to_str().unwrap(),
    ]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("optimize:"), "{text}");
    assert!(text.contains("baseline L1 miss rate"), "{text}");

    optimize(&[
        "--from-trace",
        trace.to_str().unwrap(),
        "--plan-out",
        replayed.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read(&live).unwrap(),
        std::fs::read(&replayed).unwrap(),
        "live run and trace replay must derive the same plan"
    );

    for p in [&trace, &live, &replayed] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn plan_container_inspects_and_rejects_corruption() {
    let plan = tmp("inspect.orp");
    optimize(&[
        "--workload",
        "micro.linked_list",
        "--plan-out",
        plan.to_str().unwrap(),
    ]);

    let out = cli()
        .args(["inspect", plan.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("PLAN"), "{text}");
    assert!(text.contains("layout plan:"), "{text}");
    assert!(text.contains("transforms"), "{text}");

    // A flipped payload byte must fail the CRC, not decode garbage.
    let mut bytes = std::fs::read(&plan).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&plan, &bytes).unwrap();
    let out = cli()
        .args(["inspect", plan.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "inspect accepted a corrupted plan");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    let _ = std::fs::remove_file(plan);
}

#[test]
fn optimize_reports_opt_metrics_and_honors_top() {
    let json = tmp("metrics.json");
    let out = optimize(&[
        "--workload",
        "micro.linked_list",
        "--top",
        "2",
        "--metrics-out",
        json.to_str().unwrap(),
    ]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("-> 2 transforms"), "{text}");

    let doc = std::fs::read_to_string(&json).unwrap();
    for needle in [
        "\"command\": \"optimize\"",
        "\"workload\": \"micro.linked_list\"",
        "\"opt.transforms\": 2",
        "\"opt.replay_skipped\": 0",
        "\"opt.plan_bytes\"",
        "\"opt.baseline.l1_miss_rate\"",
        "\"opt.planned.l1_miss_rate\"",
        "\"opt.planned.l1_delta\"",
    ] {
        assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
    }
    let _ = std::fs::remove_file(json);
}
