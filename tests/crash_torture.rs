//! Crash-torture suite: drives the CLI's write paths with injected
//! faults (see `orp_format::FaultPlan`) and asserts the durability
//! contract — a reader of any artifact sees the old contents or the
//! new contents, never a torn mix, and a crashed checkpoint overwrite
//! never costs the session its last durable checkpoint.
//!
//! Injected failures are told apart from real I/O problems by the
//! "injected" marker every planned fault carries in its message.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Upper bound on the per-command I/O op sweep: the small profiles and
/// traces used here take far fewer gated operations than this, so a
/// sweep that is still failing at the cap means the op counter leaks.
const OP_SWEEP_CAP: u64 = 64;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orprof-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("orprof-torture-{}-{name}", std::process::id()));
    p
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs `run --workload <w> --profiler leap --out <dest>`, optionally
/// under a fault plan.
fn profile_run(workload: &str, dest: &Path, plan: Option<&str>) -> Output {
    let mut cmd = cli();
    cmd.args([
        "run",
        "--workload",
        workload,
        "--profiler",
        "leap",
        "--out",
        dest.to_str().unwrap(),
    ]);
    if let Some(spec) = plan {
        cmd.args(["--fault-plan", spec]);
    }
    cmd.output().expect("spawn")
}

fn assert_inspects(path: &Path) {
    let out = cli()
        .args(["inspect", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "inspect {}: {}",
        path.display(),
        stderr_of(&out)
    );
}

/// Removes `path` and any `.{name}.tmp-*` sibling a simulated crash
/// left behind (the temp file models a killed process's debris).
fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    for sibling in temp_siblings(path) {
        let _ = std::fs::remove_file(sibling);
    }
}

fn temp_siblings(path: &Path) -> Vec<PathBuf> {
    let (Some(dir), Some(name)) = (path.parent(), path.file_name()) else {
        return Vec::new();
    };
    let prefix = format!(".{}", name.to_string_lossy());
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
        .map(|e| e.path())
        .collect()
}

#[test]
fn benign_plans_leave_the_profile_byte_identical() {
    let reference = tmp("benign-ref.orp");
    let out = profile_run("micro.matrix", &reference, None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let expected = std::fs::read(&reference).unwrap();

    // A clean re-run, an absorbed short write, a retried interrupt
    // burst, and a retried would-block must all produce the exact same
    // bytes and report success.
    for plan in [
        None,
        Some("short-write@n=3"),
        Some("interrupt@n=2x3"),
        Some("would-block@n=2"),
    ] {
        let dest = tmp("benign.orp");
        let out = profile_run("micro.matrix", &dest, plan);
        assert!(out.status.success(), "plan {plan:?}: {}", stderr_of(&out));
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            expected,
            "plan {plan:?} changed the profile bytes"
        );
        cleanup(&dest);
    }
    cleanup(&reference);
}

#[test]
fn io_error_sweep_leaves_the_destination_old_or_new() {
    // OLD: a valid profile from a *different* workload, so old and new
    // contents are distinguishable; both always pass `inspect`.
    let old_src = tmp("sweep-old-src.orp");
    let out = profile_run("micro.btree", &old_src, None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let old = std::fs::read(&old_src).unwrap();
    cleanup(&old_src);

    let new_src = tmp("sweep-new-src.orp");
    let out = profile_run("micro.matrix", &new_src, None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let new = std::fs::read(&new_src).unwrap();
    cleanup(&new_src);
    assert_ne!(old, new, "workloads must produce distinct profiles");

    let dest = tmp("sweep.orp");
    let mut failures = 0u64;
    let mut completed = false;
    for k in 1..=OP_SWEEP_CAP {
        std::fs::write(&dest, &old).unwrap();
        let plan = format!("io-error@n={k}");
        let out = profile_run("micro.matrix", &dest, Some(&plan));
        let err = stderr_of(&out);
        if out.status.success() {
            // The fault index lies beyond the command's op count: the
            // run is clean and the destination carries the new bytes.
            assert!(!err.contains("injected"), "{plan}: {err}");
            assert_eq!(std::fs::read(&dest).unwrap(), new, "{plan}");
            completed = true;
            break;
        }
        assert!(err.contains("injected"), "{plan} failed for real: {err}");
        let now = std::fs::read(&dest).unwrap();
        assert!(
            now == old || now == new,
            "{plan}: destination is torn ({} bytes)",
            now.len()
        );
        assert_inspects(&dest);
        failures += 1;
    }
    assert!(failures > 0, "the sweep never hit a gated operation");
    assert!(
        completed,
        "still failing at op {OP_SWEEP_CAP}; op counting is broken"
    );
    cleanup(&dest);
}

#[test]
fn crash_sweep_never_tears_the_destination() {
    let old_src = tmp("crash-old-src.orp");
    let out = profile_run("micro.btree", &old_src, None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let old = std::fs::read(&old_src).unwrap();
    cleanup(&old_src);

    let new_src = tmp("crash-new-src.orp");
    let out = profile_run("micro.matrix", &new_src, None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let new = std::fs::read(&new_src).unwrap();
    cleanup(&new_src);

    let dest = tmp("crash.orp");
    let len = new.len() as u64;
    let offsets = [1, 2, 8, len / 4, len / 2, len - 1];
    for byte in offsets {
        std::fs::write(&dest, &old).unwrap();
        let plan = format!("crash@byte={byte}");
        let out = profile_run("micro.matrix", &dest, Some(&plan));
        assert!(!out.status.success(), "{plan} did not fail");
        assert!(stderr_of(&out).contains("injected"), "{plan}");
        // The stream was cut before the rename: the old profile is
        // untouched and still inspectable...
        assert_eq!(std::fs::read(&dest).unwrap(), old, "{plan} tore the file");
        assert_inspects(&dest);
        // ...while the torn temp sibling survives, exactly like a
        // process killed mid-write would leave it.
        assert!(
            !temp_siblings(&dest).is_empty(),
            "{plan}: crash should leave its temp file behind"
        );
        cleanup(&dest);
    }

    // A crash cut past the full stream never fires: clean success.
    let plan = format!("crash@byte={}", len * 4);
    let out = profile_run("micro.matrix", &dest, Some(&plan));
    assert!(out.status.success(), "{plan}: {}", stderr_of(&out));
    assert_eq!(std::fs::read(&dest).unwrap(), new, "{plan}");
    cleanup(&dest);

    // With no previous profile, a crashed write leaves no destination
    // at all — never a partial file.
    let absent = tmp("crash-absent.orp");
    let out = profile_run("micro.matrix", &absent, Some("crash@byte=1"));
    assert!(!out.status.success());
    assert!(!absent.exists(), "crash materialized a torn destination");
    cleanup(&absent);
}

#[test]
fn crashed_checkpoint_overwrite_preserves_the_old_checkpoint() {
    // Regression: the checkpoint path used to truncate the destination
    // in place, so a crash mid-write destroyed the only resume point.
    let ckpt = tmp("ckpt.orp");
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.btree",
            "--profiler",
            "leap",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let old = std::fs::read(&ckpt).unwrap();

    for byte in [1u64, 64, 256] {
        let plan = format!("crash@byte={byte}");
        let out = cli()
            .args([
                "run",
                "--workload",
                "micro.matrix",
                "--profiler",
                "leap",
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--fault-plan",
                &plan,
            ])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "{plan} did not fail");
        assert!(stderr_of(&out).contains("injected"), "{plan}");
        assert_eq!(
            std::fs::read(&ckpt).unwrap(),
            old,
            "{plan} corrupted the last durable checkpoint"
        );
    }

    // The preserved checkpoint still resumes a fresh session.
    let out = cli()
        .args([
            "run",
            "--workload",
            "micro.matrix",
            "--profiler",
            "leap",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stdout_of(&out).contains("resumed from checkpoint"),
        "{}",
        stdout_of(&out)
    );
    cleanup(&ckpt);
}

#[test]
fn record_faults_never_announce_success_or_leave_a_torn_trace() {
    let reference = tmp("rec-ref.orpt");
    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.matrix",
            "--out",
            reference.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let expected = std::fs::read(&reference).unwrap();

    let dest = tmp("rec.orpt");
    let mut failures = 0u64;
    let mut completed = false;
    for k in 1..=OP_SWEEP_CAP {
        let plan = format!("io-error@n={k}");
        let out = cli()
            .args([
                "record",
                "--workload",
                "micro.matrix",
                "--out",
                dest.to_str().unwrap(),
                "--fault-plan",
                &plan,
            ])
            .output()
            .expect("spawn");
        let text = stdout_of(&out);
        if out.status.success() {
            assert!(text.contains("recorded"), "{plan}: {text}");
            assert_eq!(std::fs::read(&dest).unwrap(), expected, "{plan}");
            completed = true;
            break;
        }
        // "recorded" is the durability receipt: it must never print
        // when the bytes did not survive the fsync + rename.
        assert!(!text.contains("recorded"), "{plan}: {text}");
        assert!(stderr_of(&out).contains("injected"), "{plan}");
        let state = std::fs::read(&dest).ok();
        assert!(
            state.is_none() || state.as_deref() == Some(&expected[..]),
            "{plan}: torn trace on disk"
        );
        cleanup(&dest);
        failures += 1;
    }
    assert!(failures > 0, "the sweep never hit a gated operation");
    assert!(
        completed,
        "still failing at op {OP_SWEEP_CAP}; op counting is broken"
    );
    cleanup(&dest);
    cleanup(&reference);
}

#[test]
fn transient_read_faults_do_not_change_a_replayed_profile() {
    let trace = tmp("replay.orpt");
    let out = cli()
        .args([
            "record",
            "--workload",
            "micro.matrix",
            "--out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", stderr_of(&out));

    let clean = tmp("replay-clean.orp");
    let out = cli()
        .args([
            "run",
            "--from-trace",
            trace.to_str().unwrap(),
            "--profiler",
            "leap",
            "--out",
            clean.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let expected = std::fs::read(&clean).unwrap();

    // Interrupted / would-block reads are retried inside the I/O layer
    // and never surface; the profile comes out identical.
    for plan in ["interrupt@n=2x4", "would-block@n=3"] {
        let dest = tmp("replay-faulted.orp");
        let out = cli()
            .args([
                "run",
                "--from-trace",
                trace.to_str().unwrap(),
                "--profiler",
                "leap",
                "--out",
                dest.to_str().unwrap(),
                "--fault-plan",
                plan,
            ])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{plan}: {}", stderr_of(&out));
        assert_eq!(std::fs::read(&dest).unwrap(), expected, "{plan}");
        cleanup(&dest);
    }
    cleanup(&clean);
    cleanup(&trace);
}

/// SIGKILLing the daemon mid-checkpoint must leave every tenant's
/// `.orp` old-or-new and inspectable — the same contract the fault
/// sweeps above enforce for the inline CLI, now across many concurrent
/// sessions with a real (not simulated) kill.
#[test]
fn sigkilled_daemon_leaves_every_tenant_artifact_old_or_new() {
    use orprof::format::Hello;
    use orprof::orpd::TenantClient;
    use orprof::trace::ProbeEvent;
    use orprof::workloads::{micro, RunConfig, Workload};

    const TENANTS: usize = 6;

    let dir = tmp("orpd");
    let _ = std::fs::remove_dir_all(&dir);
    let socket = dir.join("orpd.sock");
    let spawn_daemon = || {
        cli()
            .args([
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--dir",
                dir.to_str().unwrap(),
                // Tiny interval: checkpoints overwrite each tenant's
                // artifact constantly, so the kill lands mid-cycle.
                "--checkpoint-events",
                "128",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn orprof-cli serve")
    };
    let wait_for_socket = |sock: &Path| {
        for _ in 0..500 {
            if sock.exists() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket never appeared");
    };
    fn events_of<W: Workload>(w: &W) -> Vec<ProbeEvent> {
        let mut sink = orprof::trace::VecSink::new();
        w.run_with(&RunConfig::default(), &mut sink);
        sink.into_events()
    }
    let tenant = |t: usize| format!("tenant-{t}");

    // Phase 1: every tenant completes a clean session, so each has a
    // durable "old" artifact worth preserving.
    let mut child = spawn_daemon();
    wait_for_socket(&socket);
    let old_events = events_of(&micro::Btree::new(128, 400));
    for t in 0..TENANTS {
        let hello = Hello::new(&tenant(t)).unwrap();
        let mut client = TenantClient::connect(&socket, &hello).expect("phase-1 connect");
        for &ev in &old_events {
            client.event(ev).expect("phase-1 event");
        }
        client.finish().expect("phase-1 finish");
    }
    let old: Vec<Vec<u8>> = (0..TENANTS)
        .map(|t| std::fs::read(dir.join(format!("{}.orp", tenant(t)))).expect("old artifact"))
        .collect();

    // Phase 2, twice with different kill delays: all tenants stream a
    // different workload while the daemon is SIGKILLed under them.
    let new_events: Vec<ProbeEvent> = {
        let one = events_of(&micro::Matrix::new(48, 6));
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend_from_slice(&one);
        }
        all
    };
    for kill_after_ms in [10u64, 40] {
        let workers: Vec<_> = (0..TENANTS)
            .map(|t| {
                let socket = socket.clone();
                let events = new_events.clone();
                let name = tenant(t);
                std::thread::spawn(move || {
                    // Every error here is expected — the daemon dies
                    // under the stream; the invariant lives on disk.
                    let Ok(hello) = Hello::new(&name) else { return };
                    let Ok(mut client) = TenantClient::connect(&socket, &hello) else {
                        return;
                    };
                    for chunk in events.chunks(96) {
                        for &ev in chunk {
                            if client.event(ev).is_err() {
                                return;
                            }
                        }
                        if client.flush_frame().is_err() {
                            return;
                        }
                    }
                    let _ = client.finish();
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(kill_after_ms));
        child.kill().expect("SIGKILL daemon");
        let _ = child.wait();
        for w in workers {
            let _ = w.join();
        }

        for (t, old_bytes) in old.iter().enumerate() {
            let path = dir.join(format!("{}.orp", tenant(t)));
            let now = std::fs::read(&path).expect("artifact survives the kill");
            // Old-or-new: either the phase-1 profile is untouched, or a
            // whole checkpoint replaced it. Never a torn mix — and
            // either way the container walks cleanly.
            if now != *old_bytes {
                assert!(
                    !now.is_empty(),
                    "kill@{kill_after_ms}ms truncated {}",
                    path.display()
                );
            }
            assert_inspects(&path);
        }

        // A restarted daemon accepts every tenant again — a resume
        // handshake succeeds whether the survivor is a resumable
        // checkpoint or a finished profile (then served fresh). The
        // kill leaves a stale socket file behind, so connects are
        // retried until the new daemon has re-bound it.
        child = spawn_daemon();
        wait_for_socket(&socket);
        for t in 0..TENANTS {
            let mut hello = Hello::new(&tenant(t)).unwrap();
            hello.resume = true;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let client = loop {
                match TenantClient::connect(&socket, &hello) {
                    Ok(c) => break c,
                    Err(e) if std::time::Instant::now() >= deadline => {
                        panic!("post-kill resume for {}: {e}", tenant(t))
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            };
            drop(client);
        }
    }
    child.kill().expect("final kill");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_plan_env_var_is_honored_and_validated() {
    let dest = tmp("env.orp");

    // A plan arriving through ORP_FAULT_PLAN gates the run exactly
    // like the flag.
    let mut cmd = cli();
    cmd.args([
        "run",
        "--workload",
        "micro.matrix",
        "--profiler",
        "leap",
        "--out",
        dest.to_str().unwrap(),
    ]);
    cmd.env("ORP_FAULT_PLAN", "io-error@n=1");
    let out = cmd.output().expect("spawn");
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("injected"), "{}", stderr_of(&out));
    assert!(!dest.exists());

    // A malformed spec is a hard error, never a silently disabled
    // torture run.
    let mut cmd = cli();
    cmd.args([
        "run",
        "--workload",
        "micro.matrix",
        "--profiler",
        "leap",
        "--out",
        dest.to_str().unwrap(),
    ]);
    cmd.env("ORP_FAULT_PLAN", "meteor@n=1");
    let out = cmd.output().expect("spawn");
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(
        err.contains("bad fault plan") && err.contains("meteor"),
        "{err}"
    );
    cleanup(&dest);
}
