//! Property tests for the `PLAN` chunk codec: arbitrary well-formed
//! plans round-trip exactly and serialize deterministically, and no
//! truncation or bit flip of a serialized plan ever panics — damage
//! surfaces as a typed [`orp_format::FormatError`].

use proptest::collection::vec;
use proptest::prelude::*;

use orp_core::{GroupId, ObjectSerial};
use orp_opt::{LayoutPlan, Transform, TransformKind};

const ADVISORS: &[&str] = &["cluster", "field-reorder", "remap", "tier"];

/// Deduplicates while keeping first-seen order (the codec rejects
/// duplicate members).
fn dedup_keep_order<T: Ord + Copy>(items: Vec<T>) -> Vec<T> {
    let mut seen = std::collections::BTreeSet::new();
    items.into_iter().filter(|x| seen.insert(*x)).collect()
}

fn kind_strategy() -> impl Strategy<Value = TransformKind> {
    let field_reorder =
        (0u32..64, vec(0u64..512, 1..12)).prop_map(|(g, offs)| TransformKind::FieldReorder {
            group: GroupId(g),
            order: dedup_keep_order(offs),
        });
    let colocate = vec((0u32..64, 0u64..4096), 2..16).prop_map(|objs| {
        let mut objects: Vec<(GroupId, ObjectSerial)> = dedup_keep_order(objs)
            .into_iter()
            .map(|(g, s)| (GroupId(g), ObjectSerial(s)))
            .collect();
        if objects.len() < 2 {
            objects.push((GroupId(u32::MAX), ObjectSerial(u64::MAX)));
        }
        TransformKind::Colocate { objects }
    });
    let pool = (0u32..64).prop_map(|g| TransformKind::PoolGroup { group: GroupId(g) });
    let split = (0u32..64, vec(0u64..4096, 1..32)).prop_map(|(g, hot)| {
        let mut hot = dedup_keep_order(hot);
        hot.sort_unstable(); // the codec requires ascending hot sets
        TransformKind::HotColdSplit {
            group: GroupId(g),
            hot: hot.into_iter().map(ObjectSerial).collect(),
        }
    });
    prop_oneof![field_reorder, colocate, pool, split]
}

fn plan_strategy() -> impl Strategy<Value = LayoutPlan> {
    vec(
        (kind_strategy(), 0usize..ADVISORS.len(), 0u64..1_000_000),
        0..10,
    )
    .prop_map(|ts| {
        LayoutPlan::from_transforms(
            ts.into_iter()
                .map(|(kind, advisor, benefit)| Transform {
                    kind,
                    advisor: ADVISORS[advisor].to_string(),
                    benefit,
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn plans_roundtrip_exactly(plan in plan_strategy()) {
        let bytes = plan.to_bytes();
        let back = LayoutPlan::read_from(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &plan);
        // Determinism: re-serializing the decoded plan is byte-identical.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn canonicalization_is_order_insensitive(plan in plan_strategy(), seed in any::<u64>()) {
        // Rebuilding from a shuffled transform list gives the same plan.
        let mut transforms: Vec<Transform> = plan.transforms().to_vec();
        let mut s = seed;
        for i in (1..transforms.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            transforms.swap(i, (s as usize) % (i + 1));
        }
        let rebuilt = LayoutPlan::from_transforms(transforms);
        prop_assert_eq!(rebuilt.to_bytes(), plan.to_bytes());
    }

    #[test]
    fn truncation_never_panics_and_always_errors(plan in plan_strategy(), cut_seed in any::<u64>()) {
        let bytes = plan.to_bytes();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(LayoutPlan::read_from(&mut &bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flips_never_panic(plan in plan_strategy(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let mut bytes = plan.to_bytes();
        let i = (pos_seed as usize) % bytes.len();
        bytes[i] ^= 1 << bit;
        // Either a typed error or (should the flip cancel out in the
        // CRC, which it cannot for a single bit) a clean parse — the
        // property is "no panic, no hang".
        let _ = LayoutPlan::read_from(&mut bytes.as_slice());
    }
}
