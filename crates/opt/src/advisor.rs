//! The [`LayoutAdvisor`] trait: every analysis speaks [`Transform`]s.
//!
//! Each adviser consumes the object-relative stream (they all
//! implement [`OrSink`]) and, when asked, emits typed transforms with
//! provenance (its [`LayoutAdvisor::name`]) and an expected-benefit
//! score in accesses covered. [`AdvisorSet`] bundles the four built-in
//! advisers behind one sink and merges their output into a single
//! canonical [`LayoutPlan`] — the entry point the `orprof optimize`
//! pipeline, examples, and benches all use.

use orp_core::{OrSink, OrTuple};

use crate::cluster::ClusterAnalysis;
use crate::field_reorder::FieldReorderAnalysis;
use crate::plan::{LayoutPlan, Transform, TransformKind};
use crate::remap::RemapAnalysis;
use crate::tier::TieringAdvisor;

/// Objects per co-location cluster the cluster adviser suggests by
/// default: generous, because affinity chains (e.g. a list traversal)
/// benefit from staying whole.
pub const DEFAULT_CLUSTER_OBJECTS: usize = 1024;

/// An analysis that can propose layout transforms.
pub trait LayoutAdvisor {
    /// Stable adviser name, recorded as each transform's provenance.
    fn name(&self) -> &'static str;

    /// Proposes transforms from the profile accumulated so far.
    /// Order and scoring are adviser-specific; [`LayoutPlan`]
    /// canonicalizes.
    fn advise(&self) -> Vec<Transform>;
}

impl LayoutAdvisor for ClusterAnalysis {
    fn name(&self) -> &'static str {
        "cluster"
    }

    /// Per group: the ordered affinity chains become `Colocate`
    /// transforms; transition weight not covered by any chain becomes
    /// a residual `PoolGroup` (keep the group's stragglers on shared
    /// pages even where no fine order is known).
    fn advise(&self) -> Vec<Transform> {
        let mut out = Vec::new();
        for group in self.groups() {
            let total = self.total_affinity(group);
            if total == 0 {
                continue;
            }
            let mut covered = 0u64;
            for (members, weight) in self.suggest_ordered_clusters(group, DEFAULT_CLUSTER_OBJECTS) {
                if members.len() < 2 || weight == 0 {
                    continue;
                }
                covered += weight;
                out.push(Transform {
                    kind: TransformKind::Colocate {
                        objects: members.into_iter().map(|s| (group, s)).collect(),
                    },
                    advisor: self.name().to_string(),
                    benefit: weight,
                });
            }
            let residual = total.saturating_sub(covered);
            if residual > 0 {
                out.push(Transform {
                    kind: TransformKind::PoolGroup { group },
                    advisor: self.name().to_string(),
                    benefit: residual,
                });
            }
        }
        out
    }
}

impl LayoutAdvisor for FieldReorderAnalysis {
    fn name(&self) -> &'static str {
        "field-reorder"
    }

    /// One `FieldReorder` per group with at least two observed offsets
    /// and nonzero offset affinity; benefit is the group's total
    /// offset-transition weight.
    fn advise(&self) -> Vec<Transform> {
        let mut out = Vec::new();
        for group in self.groups() {
            let weight = self.total_affinity(group);
            if weight == 0 {
                continue;
            }
            let order = self.suggest_layout(group);
            if order.len() < 2 {
                continue;
            }
            out.push(Transform {
                kind: TransformKind::FieldReorder { group, order },
                advisor: self.name().to_string(),
                benefit: weight,
            });
        }
        out
    }
}

impl LayoutAdvisor for RemapAnalysis {
    fn name(&self) -> &'static str {
        "remap"
    }

    /// One cross-group `Colocate` over the suggested placement order
    /// (global-variable re-mapping); benefit is the total cross-object
    /// transition weight.
    fn advise(&self) -> Vec<Transform> {
        let weight = self.total_affinity();
        if weight == 0 {
            return Vec::new();
        }
        let objects = self.suggest_order();
        if objects.len() < 2 {
            return Vec::new();
        }
        vec![Transform {
            kind: TransformKind::Colocate { objects },
            advisor: self.name().to_string(),
            benefit: weight,
        }]
    }
}

/// The four built-in advisers behind one [`OrSink`].
///
/// Feed it the object-relative stream once; [`AdvisorSet::plan`]
/// merges everything they propose into one canonical [`LayoutPlan`].
#[derive(Debug, Default)]
pub struct AdvisorSet {
    /// Object co-location / pooling.
    pub cluster: ClusterAnalysis,
    /// Intra-object field reordering.
    pub reorder: FieldReorderAnalysis,
    /// Cross-group placement (global re-mapping).
    pub remap: RemapAnalysis,
    /// Hot/cold tiering from grammar hot streams.
    pub tier: TieringAdvisor,
}

impl AdvisorSet {
    /// Creates an empty adviser set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The advisers, as trait objects.
    #[must_use]
    pub fn advisors(&self) -> [&dyn LayoutAdvisor; 4] {
        [&self.cluster, &self.reorder, &self.remap, &self.tier]
    }

    /// Runs every adviser and canonicalizes the union of their
    /// proposals.
    #[must_use]
    pub fn plan(&self) -> LayoutPlan {
        let mut transforms = Vec::new();
        for advisor in self.advisors() {
            transforms.extend(advisor.advise());
        }
        LayoutPlan::from_transforms(transforms)
    }
}

impl OrSink for AdvisorSet {
    fn tuple(&mut self, t: &OrTuple) {
        self.cluster.tuple(t);
        self.reorder.tuple(t);
        self.remap.tuple(t);
        self.tier.tuple(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{GroupId, ObjectSerial, Timestamp};
    use orp_trace::{AccessKind, InstrId};

    fn t(group: u32, object: u64, offset: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(0),
            kind: AccessKind::Load,
            group: GroupId(group),
            object: ObjectSerial(object),
            offset,
            time: Timestamp(time),
            size: 8,
        }
    }

    /// A traversal over objects 0..8 of group 0, touching offsets 0
    /// then 32 of each, repeated — every adviser has something to say.
    fn feed_traversal(sink: &mut AdvisorSet) {
        let mut time = 0;
        for _ in 0..50 {
            for obj in 0..8u64 {
                sink.tuple(&t(0, obj, 0, time));
                sink.tuple(&t(0, obj, 32, time + 1));
                time += 2;
            }
        }
    }

    #[test]
    fn advisor_set_produces_a_multi_kind_plan() {
        let mut set = AdvisorSet::new();
        feed_traversal(&mut set);
        let plan = set.plan();
        assert!(!plan.is_empty());
        let codes: std::collections::BTreeSet<u64> =
            plan.transforms().iter().map(|t| t.kind.code()).collect();
        assert!(codes.contains(&1), "field reorder present: {plan:?}");
        assert!(codes.contains(&2), "colocate present: {plan:?}");
        for tr in plan.transforms() {
            assert!(tr.benefit > 0);
            assert!(!tr.advisor.is_empty());
        }
    }

    #[test]
    fn colocate_members_follow_traversal_order() {
        let mut set = AdvisorSet::new();
        feed_traversal(&mut set);
        let plan = set.plan();
        let chain = plan
            .transforms()
            .iter()
            .find_map(|tr| match &tr.kind {
                TransformKind::Colocate { objects } if tr.advisor == "cluster" => Some(objects),
                _ => None,
            })
            .expect("cluster colocate present");
        // The traversal visits serials in order; the chain must be that
        // order or its reverse.
        let serials: Vec<u64> = chain.iter().map(|(_, s)| s.0).collect();
        let mut rev = serials.clone();
        rev.reverse();
        let sorted: Vec<u64> = {
            let mut v = serials.clone();
            v.sort_unstable();
            v
        };
        assert!(
            serials == sorted || rev == sorted,
            "chain is traversal-ordered: {serials:?}"
        );
        assert_eq!(serials.len(), 8);
    }

    #[test]
    fn quiet_stream_produces_an_empty_plan() {
        let set = AdvisorSet::new();
        assert!(set.plan().is_empty());
    }

    #[test]
    fn plan_is_deterministic_across_identical_feeds() {
        let mk = || {
            let mut set = AdvisorSet::new();
            feed_traversal(&mut set);
            set.plan()
        };
        assert_eq!(mk().to_bytes(), mk().to_bytes());
    }
}
