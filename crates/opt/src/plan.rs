//! The `LayoutPlan` IR: typed, scored, provenance-carrying layout
//! transforms.
//!
//! Advisers ([`crate::LayoutAdvisor`]) analyze an object-relative
//! stream and emit [`Transform`]s — *what* to change about the layout,
//! without saying *how* to place bytes. The applier (`orp-allocsim`)
//! consumes the plan and produces concrete addresses; the evaluator
//! (`orp-cache`) replays the trace under both layouts and measures the
//! difference. The plan is the contract between all three: a small,
//! serializable, deterministic value (`PLAN` chunk in a `.orp`
//! container, see `crate::io`).

use std::fmt;

use orp_core::{GroupId, ObjectSerial};

/// A whole-object identity, the granularity of placement transforms.
pub type ObjectKey = (GroupId, ObjectSerial);

/// What a single transform does to the layout.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Reorder the fields of every object of `group`: the offsets in
    /// `order` are packed to the front of the object in that order
    /// (temporally adjacent fields end up on the same cache line).
    FieldReorder {
        /// The group whose objects are reordered.
        group: GroupId,
        /// Observed offsets, in their suggested new order.
        order: Vec<u64>,
    },
    /// Place `objects` contiguously, in exactly this order (object
    /// clustering / global-variable re-mapping).
    Colocate {
        /// The objects to co-locate, in placement order.
        objects: Vec<ObjectKey>,
    },
    /// Route every allocation of `group` into a dedicated pool so the
    /// group's objects share pages regardless of interleaved
    /// allocations from other sites.
    PoolGroup {
        /// The group whose allocations are pooled.
        group: GroupId,
    },
    /// Split `group` into tiers: the `hot` serials are placed in a
    /// dense hot region, the rest in a cold region (OBASE-style
    /// hot/cold object tiering).
    HotColdSplit {
        /// The group being tiered.
        group: GroupId,
        /// Serials of the hot objects, ascending.
        hot: Vec<ObjectSerial>,
    },
}

impl TransformKind {
    /// Stable on-disk code (see `crate::io`).
    #[must_use]
    pub fn code(&self) -> u64 {
        match self {
            TransformKind::FieldReorder { .. } => 1,
            TransformKind::Colocate { .. } => 2,
            TransformKind::PoolGroup { .. } => 3,
            TransformKind::HotColdSplit { .. } => 4,
        }
    }

    /// Short display name (used in reports and `orprof inspect`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TransformKind::FieldReorder { .. } => "field-reorder",
            TransformKind::Colocate { .. } => "colocate",
            TransformKind::PoolGroup { .. } => "pool-group",
            TransformKind::HotColdSplit { .. } => "hot-cold-split",
        }
    }
}

/// One layout transform: what to do, who proposed it, and how much it
/// is expected to help.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transform {
    /// The layout change itself.
    pub kind: TransformKind,
    /// Name of the adviser that proposed it
    /// ([`crate::LayoutAdvisor::name`]).
    pub advisor: String,
    /// Expected benefit in *accesses covered* (affinity weight or heat;
    /// adviser-specific but always "bigger is better"). Orders
    /// application precedence.
    pub benefit: u64,
}

impl Transform {
    /// A stable metric-key-safe identifier: `<label>.g<group>` for
    /// group-scoped transforms, `<label>` for cross-group ones, with a
    /// positional suffix added by [`LayoutPlan::labels`] when needed.
    #[must_use]
    pub fn metric_label(&self) -> String {
        match &self.kind {
            TransformKind::FieldReorder { group, .. }
            | TransformKind::PoolGroup { group }
            | TransformKind::HotColdSplit { group, .. } => {
                format!("{}.g{}", self.kind.label(), group.0)
            }
            TransformKind::Colocate { objects } => match objects.first() {
                Some((g, _)) if objects.iter().all(|(og, _)| og == g) => {
                    format!("{}.g{}", self.kind.label(), g.0)
                }
                _ => self.kind.label().to_string(),
            },
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TransformKind::FieldReorder { group, order } => write!(
                f,
                "field-reorder group {} ({} offsets)",
                group.0,
                order.len()
            )?,
            TransformKind::Colocate { objects } => {
                write!(f, "colocate {} objects", objects.len())?;
            }
            TransformKind::PoolGroup { group } => write!(f, "pool group {}", group.0)?,
            TransformKind::HotColdSplit { group, hot } => {
                write!(f, "hot/cold split group {} ({} hot)", group.0, hot.len())?;
            }
        }
        write!(f, " [benefit {} via {}]", self.benefit, self.advisor)
    }
}

/// A deterministic, ordered set of layout transforms.
///
/// Construction through [`LayoutPlan::from_transforms`] canonicalizes
/// the order (descending benefit, ties broken structurally), so two
/// advisers run over the same trace produce the same plan — and the
/// same serialized bytes (the differential-determinism guarantee the
/// `optimize` pipeline tests rely on).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutPlan {
    transforms: Vec<Transform>,
}

impl LayoutPlan {
    /// Builds a plan, canonicalizing transform order: descending
    /// benefit, then kind code, then structural content, then adviser
    /// name. Total and deterministic.
    #[must_use]
    pub fn from_transforms(mut transforms: Vec<Transform>) -> Self {
        transforms.sort_by(|a, b| {
            b.benefit
                .cmp(&a.benefit)
                .then_with(|| a.kind.code().cmp(&b.kind.code()))
                .then_with(|| structural_key(&a.kind).cmp(&structural_key(&b.kind)))
                .then_with(|| a.advisor.cmp(&b.advisor))
        });
        LayoutPlan { transforms }
    }

    /// The transforms, highest expected benefit first.
    #[must_use]
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Number of transforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// True when the plan proposes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Keeps only the `k` highest-benefit transforms.
    pub fn truncate(&mut self, k: usize) {
        self.transforms.truncate(k);
    }

    /// Appends a transform preserving insertion order — decoder use
    /// only, where the stored order is already canonical.
    pub(crate) fn push_unchecked(&mut self, t: Transform) {
        self.transforms.push(t);
    }

    /// Unique per-transform metric labels, in plan order: the base
    /// [`Transform::metric_label`], suffixed `.N` on repeats.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        self.transforms
            .iter()
            .map(|t| {
                let base = t.metric_label();
                let n = seen.entry(base.clone()).or_insert(0);
                *n += 1;
                if *n == 1 {
                    base
                } else {
                    format!("{base}.{n}")
                }
            })
            .collect()
    }

    /// The field order for `group`, if any `FieldReorder` transform
    /// covers it (highest-benefit one wins).
    #[must_use]
    pub fn field_order(&self, group: GroupId) -> Option<&[u64]> {
        self.transforms.iter().find_map(|t| match &t.kind {
            TransformKind::FieldReorder { group: g, order } if *g == group => {
                Some(order.as_slice())
            }
            _ => None,
        })
    }
}

/// A structural comparison key: the kind's fields flattened to a
/// vector of integers. Used only for deterministic tie-breaking.
fn structural_key(kind: &TransformKind) -> Vec<u64> {
    match kind {
        TransformKind::FieldReorder { group, order } => {
            let mut k = vec![u64::from(group.0)];
            k.extend_from_slice(order);
            k
        }
        TransformKind::Colocate { objects } => {
            let mut k = Vec::with_capacity(objects.len() * 2);
            for (g, s) in objects {
                k.push(u64::from(g.0));
                k.push(s.0);
            }
            k
        }
        TransformKind::PoolGroup { group } => vec![u64::from(group.0)],
        TransformKind::HotColdSplit { group, hot } => {
            let mut k = vec![u64::from(group.0)];
            k.extend(hot.iter().map(|s| s.0));
            k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(group: u32, benefit: u64) -> Transform {
        Transform {
            kind: TransformKind::PoolGroup {
                group: GroupId(group),
            },
            advisor: "test".to_string(),
            benefit,
        }
    }

    #[test]
    fn plan_orders_by_descending_benefit() {
        let plan = LayoutPlan::from_transforms(vec![pool(0, 5), pool(1, 50), pool(2, 10)]);
        let benefits: Vec<u64> = plan.transforms().iter().map(|t| t.benefit).collect();
        assert_eq!(benefits, vec![50, 10, 5]);
    }

    #[test]
    fn ties_break_structurally_not_by_insertion() {
        let a = LayoutPlan::from_transforms(vec![pool(3, 7), pool(1, 7), pool(2, 7)]);
        let b = LayoutPlan::from_transforms(vec![pool(2, 7), pool(3, 7), pool(1, 7)]);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_are_unique() {
        let plan = LayoutPlan::from_transforms(vec![
            pool(0, 3),
            pool(0, 2),
            Transform {
                kind: TransformKind::Colocate {
                    objects: vec![(GroupId(0), ObjectSerial(1)), (GroupId(1), ObjectSerial(2))],
                },
                advisor: "test".to_string(),
                benefit: 9,
            },
        ]);
        let labels = plan.labels();
        assert_eq!(labels.len(), 3);
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 3, "{labels:?}");
        assert!(labels.contains(&"colocate".to_string()));
        assert!(labels.contains(&"pool-group.g0".to_string()));
    }

    #[test]
    fn field_order_lookup_prefers_highest_benefit() {
        let plan = LayoutPlan::from_transforms(vec![
            Transform {
                kind: TransformKind::FieldReorder {
                    group: GroupId(4),
                    order: vec![8, 0],
                },
                advisor: "a".to_string(),
                benefit: 1,
            },
            Transform {
                kind: TransformKind::FieldReorder {
                    group: GroupId(4),
                    order: vec![0, 8],
                },
                advisor: "b".to_string(),
                benefit: 100,
            },
        ]);
        assert_eq!(plan.field_order(GroupId(4)), Some([0u64, 8].as_slice()));
        assert_eq!(plan.field_order(GroupId(9)), None);
    }
}
