//! Hot data stream extraction from WHOMP grammars.
//!
//! A Sequitur rule *is* a repeated subsequence of the profiled stream;
//! its dynamic frequency (how many times its expansion occurs in the
//! original stream) times its expansion length is the number of
//! accesses it covers — exactly the "hot data stream" ranking used for
//! stream prefetching (Chilimbi & Hirzel, cited by the paper as a
//! consumer of whole-stream profiles).

use orp_sequitur::{Grammar, GrammarSymbol, RuleId};

/// One extracted hot stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotStream {
    /// The grammar rule it came from.
    pub rule: RuleId,
    /// The expanded symbol sequence (e.g. object serials or offsets,
    /// depending on which dimension grammar was mined).
    pub expansion: Vec<u64>,
    /// How many times the sequence occurs in the original stream.
    pub occurrences: u64,
    /// `occurrences * expansion.len()`: accesses covered.
    pub heat: u64,
}

/// Extracts the `k` hottest streams with expansion length at least
/// `min_len` from a grammar.
///
/// Dynamic rule frequencies are exact: computed by propagating the
/// start rule's single occurrence down the (acyclic) rule DAG, adding
/// each use site's parent frequency.
///
/// # Examples
///
/// ```
/// use orp_sequitur::Sequitur;
///
/// let mut seq = Sequitur::new();
/// for _ in 0..32 {
///     seq.extend([10u64, 20, 30]);
/// }
/// let top = orp_opt::hot_streams(&seq.grammar(), 2, 1);
/// assert!(top[0].heat >= 48, "the repeated block dominates");
/// ```
#[must_use]
pub fn hot_streams(grammar: &Grammar, min_len: usize, k: usize) -> Vec<HotStream> {
    let n = grammar.rule_count();
    // Exact dynamic occurrence counts, top-down in topological order.
    let mut occurrences = vec![0u64; n];
    occurrences[0] = 1;
    for rule in topological_order(grammar) {
        let occ = occurrences[rule.0 as usize];
        if occ == 0 {
            continue;
        }
        for sym in grammar.body(rule) {
            if let GrammarSymbol::Rule(RuleId(r)) = sym {
                occurrences[*r as usize] += occ;
            }
        }
    }

    let mut streams: Vec<HotStream> = (1..n)
        .map(|i| {
            let rule = RuleId(i as u32);
            let expansion = expand_rule(grammar, rule);
            let occ = occurrences[i];
            HotStream {
                rule,
                heat: occ * expansion.len() as u64,
                expansion,
                occurrences: occ,
            }
        })
        .filter(|s| s.expansion.len() >= min_len && s.occurrences > 0)
        .collect();
    streams.sort_by(|a, b| b.heat.cmp(&a.heat).then(a.rule.0.cmp(&b.rule.0)));
    streams.truncate(k);
    streams
}

/// Rules in an order where every rule precedes the rules its body
/// references (parents before children), via iterative post-order DFS
/// from the start rule.
fn topological_order(grammar: &Grammar) -> Vec<RuleId> {
    let n = grammar.rule_count();
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = in progress, 2 = done
    let mut post: Vec<RuleId> = Vec::with_capacity(n);
    let mut stack: Vec<(u32, bool)> = vec![(0, false)];
    while let Some((rule, children_done)) = stack.pop() {
        if children_done {
            state[rule as usize] = 2;
            post.push(RuleId(rule));
            continue;
        }
        if state[rule as usize] != 0 {
            continue;
        }
        state[rule as usize] = 1;
        stack.push((rule, true));
        for sym in grammar.body(RuleId(rule)) {
            if let GrammarSymbol::Rule(RuleId(r)) = sym {
                if state[*r as usize] == 0 {
                    stack.push((*r, false));
                }
            }
        }
    }
    // Post-order has children first; reverse for parents-first.
    post.reverse();
    post
}

/// Expands a single rule to terminals (iteratively).
fn expand_rule(grammar: &Grammar, rule: RuleId) -> Vec<u64> {
    let mut out = Vec::new();
    let mut stack: Vec<(u32, usize)> = vec![(rule.0, 0)];
    while let Some((r, pos)) = stack.pop() {
        let body = grammar.body(RuleId(r));
        if pos >= body.len() {
            continue;
        }
        stack.push((r, pos + 1));
        match body[pos] {
            GrammarSymbol::Terminal(t) => out.push(t),
            GrammarSymbol::Rule(RuleId(sub)) => stack.push((sub, 0)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_sequitur::Sequitur;

    #[test]
    fn finds_the_repeated_block() {
        // "abcabcabcabc…x?" — the abc block is the hottest stream.
        let mut seq = Sequitur::new();
        for _ in 0..64 {
            seq.extend([1u64, 2, 3]);
        }
        seq.push(99);
        let grammar = seq.grammar();
        let streams = hot_streams(&grammar, 2, 3);
        assert!(!streams.is_empty());
        let top = &streams[0];
        // The hottest rule's expansion is made of the repeating block's
        // symbols and covers most of the stream.
        assert!(top.heat >= 96, "top stream covers {} accesses", top.heat);
        assert!(top.expansion.iter().all(|s| [1, 2, 3].contains(s)));
    }

    #[test]
    fn occurrence_counts_are_exact() {
        // Period-2 input of length 16: rules form a hierarchy; the
        // total coverage of any rule cannot exceed the stream length.
        let mut seq = Sequitur::new();
        for _ in 0..8 {
            seq.extend([7u64, 9]);
        }
        let grammar = seq.grammar();
        for s in hot_streams(&grammar, 1, usize::MAX) {
            assert!(
                s.heat <= 16,
                "rule {:?} covers more than the stream",
                s.rule
            );
            // Verify occurrences by counting the expansion in the
            // original sequence.
            let original = grammar.expand();
            let needle = &s.expansion;
            let mut count = 0u64;
            let mut i = 0;
            while i + needle.len() <= original.len() {
                if &original[i..i + needle.len()] == needle.as_slice() {
                    count += 1;
                    i += needle.len();
                } else {
                    i += 1;
                }
            }
            assert!(
                s.occurrences <= count,
                "rule {:?}: claimed {} occurrences, only {count} non-overlapping found",
                s.rule,
                s.occurrences
            );
        }
    }

    #[test]
    fn min_len_filters_short_rules() {
        let mut seq = Sequitur::new();
        for _ in 0..32 {
            seq.extend([1u64, 2]);
        }
        let grammar = seq.grammar();
        for s in hot_streams(&grammar, 4, usize::MAX) {
            assert!(s.expansion.len() >= 4);
        }
    }

    #[test]
    fn incompressible_input_has_no_streams() {
        let mut seq = Sequitur::new();
        seq.extend(0..100u64);
        assert!(hot_streams(&seq.grammar(), 2, 10).is_empty());
    }

    #[test]
    fn k_truncates_and_orders_by_heat() {
        let mut seq = Sequitur::new();
        for _ in 0..50 {
            seq.extend([1u64, 2, 3, 4]);
        }
        let streams = hot_streams(&seq.grammar(), 1, 2);
        assert!(streams.len() <= 2);
        if streams.len() == 2 {
            assert!(streams[0].heat >= streams[1].heat);
        }
    }
}
