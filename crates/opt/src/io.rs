//! Binary serialization for [`LayoutPlan`]s.
//!
//! A plan lives in a `.orp` container ([`orp_format`]) of kind
//! `LayoutPlan` (primary chunk `PLAN`). The payload is varint-coded:
//!
//! ```text
//! transform_count { kind:varint benefit:varint advisor:(len bytes) body }*
//!
//! body(1 field-reorder) = group:varint n:varint offset:varint*n
//! body(2 colocate)      = n:varint (group:varint serial:varint)*n
//! body(3 pool-group)    = group:varint
//! body(4 hot-cold)      = group:varint n:varint serial:varint*n (ascending)
//! ```
//!
//! Decoding is panic-free: damage the CRC envelope misses (impossible
//! counts, unknown kind codes, non-canonical orderings, bad UTF-8)
//! surfaces as [`FormatError::Malformed`].

use std::collections::BTreeSet;
use std::io::{self, Read, Write};

use orp_core::{GroupId, ObjectSerial};
use orp_format::{
    read_single_chunk, read_varint, write_single_chunk, write_varint, FormatError, ProfileKind,
};

use crate::plan::{LayoutPlan, ObjectKey, Transform, TransformKind};

/// Longest adviser name the decoder accepts (sanity bound; real names
/// are single words).
const MAX_ADVISOR_LEN: u64 = 256;

fn read_group(r: &mut impl Read) -> Result<GroupId, FormatError> {
    let v = read_varint(r)?;
    u32::try_from(v)
        .map(GroupId)
        .map_err(|_| FormatError::Malformed("group id exceeds u32"))
}

/// Reads an element count that must be plausible for `remaining`
/// payload bytes (every element costs at least one byte), so corrupt
/// counts cannot provoke huge allocations.
fn read_count(r: &mut &[u8]) -> Result<usize, FormatError> {
    let n = read_varint(r)?;
    if n > r.len() as u64 {
        return Err(FormatError::Malformed("element count exceeds payload"));
    }
    Ok(n as usize)
}

impl LayoutPlan {
    /// Serializes the plan payload (no container framing —
    /// [`LayoutPlan::write_to`] adds that).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.transforms().len() as u64)?;
        for t in self.transforms() {
            write_varint(w, t.kind.code())?;
            write_varint(w, t.benefit)?;
            write_varint(w, t.advisor.len() as u64)?;
            w.write_all(t.advisor.as_bytes())?;
            match &t.kind {
                TransformKind::FieldReorder { group, order } => {
                    write_varint(w, u64::from(group.0))?;
                    write_varint(w, order.len() as u64)?;
                    for &off in order {
                        write_varint(w, off)?;
                    }
                }
                TransformKind::Colocate { objects } => {
                    write_varint(w, objects.len() as u64)?;
                    for (g, s) in objects {
                        write_varint(w, u64::from(g.0))?;
                        write_varint(w, s.0)?;
                    }
                }
                TransformKind::PoolGroup { group } => {
                    write_varint(w, u64::from(group.0))?;
                }
                TransformKind::HotColdSplit { group, hot } => {
                    write_varint(w, u64::from(group.0))?;
                    write_varint(w, hot.len() as u64)?;
                    for s in hot {
                        write_varint(w, s.0)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Deserializes a payload written by [`LayoutPlan::write_payload`].
    ///
    /// # Errors
    ///
    /// [`FormatError::Malformed`] on unknown kind codes, implausible
    /// counts, duplicate members, or non-ascending hot sets;
    /// [`FormatError::Truncated`] when the payload ends early.
    pub fn read_payload(r: &mut &[u8]) -> Result<Self, FormatError> {
        let count = read_count(r)?;
        let mut transforms = Vec::with_capacity(count);
        for _ in 0..count {
            let code = read_varint(r)?;
            let benefit = read_varint(r)?;
            let name_len = read_varint(r)?;
            if name_len > MAX_ADVISOR_LEN {
                return Err(FormatError::Malformed("adviser name too long"));
            }
            let mut name = vec![0u8; name_len as usize];
            r.read_exact(&mut name)?;
            let advisor = String::from_utf8(name)
                .map_err(|_| FormatError::Malformed("adviser name is not UTF-8"))?;
            let kind = match code {
                1 => {
                    let group = read_group(r)?;
                    let n = read_count(r)?;
                    if n == 0 {
                        return Err(FormatError::Malformed("field-reorder with no offsets"));
                    }
                    let mut order = Vec::with_capacity(n);
                    let mut seen = BTreeSet::new();
                    for _ in 0..n {
                        let off = read_varint(r)?;
                        if !seen.insert(off) {
                            return Err(FormatError::Malformed("duplicate offset in reorder"));
                        }
                        order.push(off);
                    }
                    TransformKind::FieldReorder { group, order }
                }
                2 => {
                    let n = read_count(r)?;
                    if n < 2 {
                        return Err(FormatError::Malformed("colocate needs two objects"));
                    }
                    let mut objects: Vec<ObjectKey> = Vec::with_capacity(n);
                    let mut seen = BTreeSet::new();
                    for _ in 0..n {
                        let group = read_group(r)?;
                        let serial = ObjectSerial(read_varint(r)?);
                        if !seen.insert((group, serial)) {
                            return Err(FormatError::Malformed("duplicate object in colocate"));
                        }
                        objects.push((group, serial));
                    }
                    TransformKind::Colocate { objects }
                }
                3 => TransformKind::PoolGroup {
                    group: read_group(r)?,
                },
                4 => {
                    let group = read_group(r)?;
                    let n = read_count(r)?;
                    if n == 0 {
                        return Err(FormatError::Malformed("hot/cold split with empty hot set"));
                    }
                    let mut hot = Vec::with_capacity(n);
                    let mut prev: Option<u64> = None;
                    for _ in 0..n {
                        let s = read_varint(r)?;
                        if prev.is_some_and(|p| p >= s) {
                            return Err(FormatError::Malformed("hot set is not ascending"));
                        }
                        prev = Some(s);
                        hot.push(ObjectSerial(s));
                    }
                    TransformKind::HotColdSplit { group, hot }
                }
                _ => return Err(FormatError::Malformed("unknown transform kind")),
            };
            transforms.push(Transform {
                kind,
                advisor,
                benefit,
            });
        }
        // Preserve the stored order verbatim: the writer canonicalized
        // it, and re-sorting here would mask writer bugs.
        let mut plan = LayoutPlan::default();
        for t in transforms {
            plan.push_unchecked(t);
        }
        Ok(plan)
    }

    /// Writes the plan as a `.orp` container of kind `LayoutPlan`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::LayoutPlan, &payload)
    }

    /// The full serialized container as bytes (convenient for
    /// byte-identity comparisons).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        // Writing to a Vec cannot fail.
        let _ = self.write_to(&mut buf);
        buf
    }

    /// Reads a container written by [`LayoutPlan::write_to`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage (wrong kind, bad
    /// checksum, truncation) and payload invariant violations.
    pub fn read_from(r: &mut impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::LayoutPlan)?;
        let mut cursor = payload.as_slice();
        let plan = LayoutPlan::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes after PLAN payload"));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> LayoutPlan {
        LayoutPlan::from_transforms(vec![
            Transform {
                kind: TransformKind::FieldReorder {
                    group: GroupId(3),
                    order: vec![0, 36, 8],
                },
                advisor: "field-reorder".to_string(),
                benefit: 120,
            },
            Transform {
                kind: TransformKind::Colocate {
                    objects: vec![
                        (GroupId(1), ObjectSerial(9)),
                        (GroupId(1), ObjectSerial(2)),
                        (GroupId(2), ObjectSerial(0)),
                    ],
                },
                advisor: "cluster".to_string(),
                benefit: 300,
            },
            Transform {
                kind: TransformKind::PoolGroup { group: GroupId(7) },
                advisor: "cluster".to_string(),
                benefit: 10,
            },
            Transform {
                kind: TransformKind::HotColdSplit {
                    group: GroupId(1),
                    hot: vec![ObjectSerial(2), ObjectSerial(5), ObjectSerial(11)],
                },
                advisor: "tier".to_string(),
                benefit: 77,
            },
        ])
    }

    #[test]
    fn plan_roundtrips() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        plan.write_to(&mut buf).unwrap();
        let back = LayoutPlan::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn empty_plan_roundtrips() {
        let plan = LayoutPlan::default();
        let back = LayoutPlan::read_from(&mut plan.to_bytes().as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut buf = Vec::new();
        orp_format::write_single_chunk(&mut buf, ProfileKind::Trace, &[]).unwrap();
        assert!(matches!(
            LayoutPlan::read_from(&mut buf.as_slice()),
            Err(FormatError::WrongKind { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let buf = sample_plan().to_bytes();
        for cut in 0..buf.len() {
            assert!(
                LayoutPlan::read_from(&mut &buf[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let buf = sample_plan().to_bytes();
        for i in 0..buf.len() {
            for bit in [0x01u8, 0x10, 0x80] {
                let mut bad = buf.clone();
                if let Some(b) = bad.get_mut(i) {
                    *b ^= bit;
                }
                let _ = LayoutPlan::read_from(&mut bad.as_slice());
            }
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Unknown transform kind code straight through the envelope.
        let mut payload = Vec::new();
        write_varint(&mut payload, 1).unwrap(); // one transform
        write_varint(&mut payload, 99).unwrap(); // bogus kind
        write_varint(&mut payload, 0).unwrap(); // benefit
        write_varint(&mut payload, 0).unwrap(); // empty adviser name
        let mut buf = Vec::new();
        write_single_chunk(&mut buf, ProfileKind::LayoutPlan, &payload).unwrap();
        assert!(matches!(
            LayoutPlan::read_from(&mut buf.as_slice()),
            Err(FormatError::Malformed(_))
        ));

        // Hot set out of order.
        let plan = LayoutPlan::from_transforms(vec![Transform {
            kind: TransformKind::HotColdSplit {
                group: GroupId(0),
                hot: vec![ObjectSerial(5), ObjectSerial(2)],
            },
            advisor: "tier".to_string(),
            benefit: 1,
        }]);
        let mut payload = Vec::new();
        plan.write_payload(&mut payload).unwrap();
        let mut buf = Vec::new();
        write_single_chunk(&mut buf, ProfileKind::LayoutPlan, &payload).unwrap();
        assert!(matches!(
            LayoutPlan::read_from(&mut buf.as_slice()),
            Err(FormatError::Malformed("hot set is not ascending"))
        ));
    }

    #[test]
    fn implausible_count_is_rejected_without_allocating() {
        let mut payload = Vec::new();
        write_varint(&mut payload, u64::MAX).unwrap();
        let mut buf = Vec::new();
        write_single_chunk(&mut buf, ProfileKind::LayoutPlan, &payload).unwrap();
        assert!(matches!(
            LayoutPlan::read_from(&mut buf.as_slice()),
            Err(FormatError::Malformed("element count exceeds payload"))
        ));
    }
}
