//! Object-clustering analysis: which objects of a group are used
//! together?
//!
//! The object dimension of the object-relative stream directly shows
//! which objects are touched consecutively; objects with high temporal
//! affinity should be co-allocated (cache-conscious clustering, the
//! paper's "object clustering or global variable re-mapping" use case
//! for the object-level grammar).

use std::collections::{BTreeMap, HashMap};

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple};

/// Per-group object-affinity counts and co-allocation suggestions.
#[derive(Debug, Clone, Default)]
pub struct ClusterAnalysis {
    /// (group, lo serial, hi serial) → transition count.
    affinity: BTreeMap<(GroupId, u64, u64), u64>,
    /// Last object accessed per group.
    last: HashMap<GroupId, ObjectSerial>,
    /// Access counts per (group, object).
    heat: BTreeMap<(GroupId, u64), u64>,
}

impl ClusterAnalysis {
    /// Creates an empty analysis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Transition count between two objects of a group (order
    /// insensitive).
    #[must_use]
    pub fn affinity(&self, group: GroupId, a: ObjectSerial, b: ObjectSerial) -> u64 {
        let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
        self.affinity.get(&(group, lo, hi)).copied().unwrap_or(0)
    }

    /// Total accesses to one object.
    #[must_use]
    pub fn heat(&self, group: GroupId, object: ObjectSerial) -> u64 {
        self.heat.get(&(group, object.0)).copied().unwrap_or(0)
    }

    /// The strongest `k` co-allocation pairs of a group, hottest first.
    ///
    /// Each entry is `(object a, object b, transitions)` — a candidate
    /// for placing `a` and `b` on the same cache line / page.
    #[must_use]
    pub fn top_pairs(&self, group: GroupId, k: usize) -> Vec<(ObjectSerial, ObjectSerial, u64)> {
        let mut pairs: Vec<(ObjectSerial, ObjectSerial, u64)> = self
            .affinity
            .range((group, 0, 0)..=(group, u64::MAX, u64::MAX))
            .map(|(&(_, a, b), &w)| (ObjectSerial(a), ObjectSerial(b), w))
            .collect();
        pairs.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        pairs.truncate(k);
        pairs
    }

    /// Groups with at least one observed access.
    #[must_use]
    pub fn groups(&self) -> Vec<GroupId> {
        let mut gs: Vec<GroupId> = self.heat.keys().map(|&(g, _)| g).collect();
        gs.dedup(); // heat is sorted by (group, serial)
        gs
    }

    /// Total intra-group transition weight — the affinity a perfect
    /// co-location of the whole group could exploit.
    #[must_use]
    pub fn total_affinity(&self, group: GroupId) -> u64 {
        self.affinity
            .range((group, 0, 0)..=(group, u64::MAX, u64::MAX))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Like [`ClusterAnalysis::suggest_clusters`], but each cluster's
    /// members come back in *placement order* (the affinity chain they
    /// were merged along) together with the transition weight the
    /// cluster covers. Edges are accepted strongest-first only while
    /// both endpoints have fewer than two neighbors, so every cluster
    /// is a path — exactly the order a co-locating allocator should lay
    /// the objects out in. Isolated objects are not emitted.
    #[must_use]
    pub fn suggest_ordered_clusters(
        &self,
        group: GroupId,
        cluster_size: usize,
    ) -> Vec<(Vec<ObjectSerial>, u64)> {
        assert!(cluster_size >= 2, "ordered clusters pair objects");
        let mut degree: HashMap<u64, usize> = HashMap::new();
        let mut parent: HashMap<u64, u64> = HashMap::new();
        let mut size: HashMap<u64, usize> = HashMap::new();
        let mut weight: HashMap<u64, u64> = HashMap::new();
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        fn find(parent: &mut HashMap<u64, u64>, x: u64) -> u64 {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                x
            } else {
                let root = find(parent, p);
                parent.insert(x, root);
                root
            }
        }
        for (a, b, w) in self.top_pairs(group, usize::MAX) {
            if w == 0 {
                continue;
            }
            let (da, db) = (
                degree.get(&a.0).copied().unwrap_or(0),
                degree.get(&b.0).copied().unwrap_or(0),
            );
            if da >= 2 || db >= 2 {
                continue;
            }
            let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
            if ra == rb {
                continue;
            }
            let (sa, sb) = (
                size.get(&ra).copied().unwrap_or(1),
                size.get(&rb).copied().unwrap_or(1),
            );
            if sa + sb > cluster_size {
                continue;
            }
            let merged_weight =
                weight.get(&ra).copied().unwrap_or(0) + weight.get(&rb).copied().unwrap_or(0) + w;
            parent.insert(ra, rb);
            size.insert(rb, sa + sb);
            weight.insert(rb, merged_weight);
            *degree.entry(a.0).or_default() += 1;
            *degree.entry(b.0).or_default() += 1;
            adj.entry(a.0).or_default().push(b.0);
            adj.entry(b.0).or_default().push(a.0);
        }

        // Every component is a path: walk each from its
        // lowest-numbered endpoint.
        let mut out: Vec<(Vec<ObjectSerial>, u64)> = Vec::new();
        let mut visited: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut starts: Vec<u64> = degree
            .iter()
            .filter(|&(_, &d)| d == 1)
            .map(|(&o, _)| o)
            .collect();
        starts.sort_unstable();
        for start in starts {
            if visited.contains(&start) {
                continue;
            }
            let mut chain = Vec::new();
            let mut cur = start;
            loop {
                visited.insert(cur);
                chain.push(ObjectSerial(cur));
                match adj
                    .get(&cur)
                    .and_then(|ns| ns.iter().find(|n| !visited.contains(n)))
                    .copied()
                {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            let w = weight.get(&find(&mut parent, start)).copied().unwrap_or(0);
            out.push((chain, w));
        }
        out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// Greedily partitions a group's objects into clusters of at most
    /// `cluster_size`, merging along the strongest affinities first —
    /// the allocation-order hint a cache-conscious allocator would
    /// consume.
    #[must_use]
    pub fn suggest_clusters(&self, group: GroupId, cluster_size: usize) -> Vec<Vec<ObjectSerial>> {
        assert!(cluster_size >= 1, "clusters must hold at least one object");
        // Union-find with size caps.
        let mut parent: HashMap<u64, u64> = HashMap::new();
        let mut size: HashMap<u64, usize> = HashMap::new();
        fn find(parent: &mut HashMap<u64, u64>, x: u64) -> u64 {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                x
            } else {
                let root = find(parent, p);
                parent.insert(x, root);
                root
            }
        }
        for (a, b, _) in self.top_pairs(group, usize::MAX) {
            let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
            if ra == rb {
                continue;
            }
            let (sa, sb) = (
                size.get(&ra).copied().unwrap_or(1),
                size.get(&rb).copied().unwrap_or(1),
            );
            if sa + sb > cluster_size {
                continue;
            }
            parent.insert(ra, rb);
            size.insert(rb, sa + sb);
        }
        let mut clusters: BTreeMap<u64, Vec<ObjectSerial>> = BTreeMap::new();
        let members: Vec<u64> = parent.keys().copied().collect();
        for m in members {
            let root = find(&mut parent, m);
            clusters.entry(root).or_default().push(ObjectSerial(m));
        }
        let mut out: Vec<Vec<ObjectSerial>> = clusters.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort();
        out
    }
}

impl OrSink for ClusterAnalysis {
    fn tuple(&mut self, t: &OrTuple) {
        *self.heat.entry((t.group, t.object.0)).or_default() += 1;
        if let Some(prev) = self.last.insert(t.group, t.object) {
            if prev != t.object {
                let (lo, hi) = (prev.0.min(t.object.0), prev.0.max(t.object.0));
                *self.affinity.entry((t.group, lo, hi)).or_default() += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::Timestamp;
    use orp_trace::{AccessKind, InstrId};

    fn t(group: u32, object: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(0),
            kind: AccessKind::Load,
            group: GroupId(group),
            object: ObjectSerial(object),
            offset: 0,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn alternating_objects_have_high_affinity() {
        let mut a = ClusterAnalysis::new();
        let mut time = 0;
        for _ in 0..100 {
            a.tuple(&t(0, 3, time));
            a.tuple(&t(0, 7, time + 1));
            time += 2;
        }
        assert_eq!(
            a.affinity(GroupId(0), ObjectSerial(3), ObjectSerial(7)),
            199
        );
        assert_eq!(a.heat(GroupId(0), ObjectSerial(3)), 100);
        let top = a.top_pairs(GroupId(0), 1);
        assert_eq!((top[0].0, top[0].1), (ObjectSerial(3), ObjectSerial(7)));
    }

    #[test]
    fn clusters_respect_size_cap() {
        // Chain 0-1-2-3 with decreasing strength; cap 2 pairs (0,1) and
        // (2,3).
        let mut a = ClusterAnalysis::new();
        let mut time = 0;
        let mut weave = |x: u64, y: u64, reps: usize, time: &mut u64| {
            for _ in 0..reps {
                a.tuple(&t(0, x, *time));
                a.tuple(&t(0, y, *time + 1));
                *time += 2;
            }
        };
        weave(0, 1, 100, &mut time);
        weave(2, 3, 90, &mut time);
        weave(1, 2, 50, &mut time);
        let clusters = a.suggest_clusters(GroupId(0), 2);
        assert!(
            clusters.contains(&vec![ObjectSerial(0), ObjectSerial(1)]),
            "{clusters:?}"
        );
        assert!(
            clusters.contains(&vec![ObjectSerial(2), ObjectSerial(3)]),
            "{clusters:?}"
        );
    }

    #[test]
    fn groups_do_not_mix() {
        let mut a = ClusterAnalysis::new();
        a.tuple(&t(0, 1, 0));
        a.tuple(&t(1, 2, 1));
        a.tuple(&t(0, 3, 2));
        assert_eq!(a.affinity(GroupId(0), ObjectSerial(1), ObjectSerial(3)), 1);
        assert_eq!(a.affinity(GroupId(1), ObjectSerial(1), ObjectSerial(3)), 0);
    }

    #[test]
    fn self_transitions_do_not_count() {
        let mut a = ClusterAnalysis::new();
        a.tuple(&t(0, 5, 0));
        a.tuple(&t(0, 5, 1));
        assert_eq!(a.affinity(GroupId(0), ObjectSerial(5), ObjectSerial(5)), 0);
        assert_eq!(a.heat(GroupId(0), ObjectSerial(5)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_cluster_size_panics() {
        let a = ClusterAnalysis::new();
        let _ = a.suggest_clusters(GroupId(0), 0);
    }
}
