//! Feedback-directed memory optimization advisers.
//!
//! The CGO 2004 paper motivates object-relative profiling by the
//! optimizations its profiles feed (§3.2): "the offset-level grammar
//! can be used for optimizations like field-reordering … the
//! object-level grammar for object clustering or global variable
//! re-mapping … hot data stream prefetching". This crate implements
//! those three profile consumers:
//!
//! * [`field_reorder`] — per-group field-affinity analysis suggesting
//!   struct layouts that put temporally adjacent fields on the same
//!   cache line (the paper's `(0, 36)*` example);
//! * [`cluster`] — per-group object-affinity analysis suggesting which
//!   objects to co-allocate (cache-conscious clustering);
//! * [`remap`] — cross-group whole-object affinity for global-variable
//!   re-mapping (placing co-used statics adjacently);
//! * [`hot_streams`] — extraction of *hot data streams* (frequently
//!   repeated access subsequences) straight from a WHOMP grammar: a
//!   Sequitur rule's dynamic frequency times its expansion length is
//!   its prefetch value, following Chilimbi-style stream prefetching.
//!
//! All of them consume the object-relative stream (or WHOMP's lossless
//! grammars, which expand back to it); none of them would work on raw
//! addresses, where field offsets and object identities are fused into
//! meaningless absolutes — which is the paper's point.
//!
//! Since the pipeline refactor the analyses are no longer endpoints:
//! each implements [`LayoutAdvisor`] and emits typed, scored
//! [`Transform`]s into a shared [`LayoutPlan`] IR ([`plan`]), which
//! serializes as a CRC-checked `PLAN` chunk ([`io`]), is applied by
//! `orp-allocsim`, and is measured by `orp-cache` — the full
//! profile → advise → plan → apply → re-simulate → report loop.
//! [`tier`] adds the fourth adviser: OBASE-style hot/cold object
//! tiering fed by [`hot_streams`].

#![forbid(unsafe_code)]

pub mod advisor;
pub mod cluster;
pub mod field_reorder;
pub mod hot_streams;
pub mod io;
pub mod plan;
pub mod remap;
pub mod tier;

pub use advisor::{AdvisorSet, LayoutAdvisor, DEFAULT_CLUSTER_OBJECTS};
pub use cluster::ClusterAnalysis;
pub use field_reorder::FieldReorderAnalysis;
pub use hot_streams::{hot_streams, HotStream};
pub use plan::{LayoutPlan, ObjectKey, Transform, TransformKind};
pub use remap::RemapAnalysis;
pub use tier::TieringAdvisor;
