//! Feedback-directed memory optimization advisers.
//!
//! The CGO 2004 paper motivates object-relative profiling by the
//! optimizations its profiles feed (§3.2): "the offset-level grammar
//! can be used for optimizations like field-reordering … the
//! object-level grammar for object clustering or global variable
//! re-mapping … hot data stream prefetching". This crate implements
//! those three profile consumers:
//!
//! * [`field_reorder`] — per-group field-affinity analysis suggesting
//!   struct layouts that put temporally adjacent fields on the same
//!   cache line (the paper's `(0, 36)*` example);
//! * [`cluster`] — per-group object-affinity analysis suggesting which
//!   objects to co-allocate (cache-conscious clustering);
//! * [`remap`] — cross-group whole-object affinity for global-variable
//!   re-mapping (placing co-used statics adjacently);
//! * [`hot_streams`] — extraction of *hot data streams* (frequently
//!   repeated access subsequences) straight from a WHOMP grammar: a
//!   Sequitur rule's dynamic frequency times its expansion length is
//!   its prefetch value, following Chilimbi-style stream prefetching.
//!
//! All three consume the object-relative stream (or WHOMP's lossless
//! grammars, which expand back to it); none of them would work on raw
//! addresses, where field offsets and object identities are fused into
//! meaningless absolutes — which is the paper's point.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod field_reorder;
pub mod hot_streams;
pub mod remap;

pub use cluster::ClusterAnalysis;
pub use field_reorder::FieldReorderAnalysis;
pub use hot_streams::{hot_streams, HotStream};
pub use remap::RemapAnalysis;
