//! Global-variable re-mapping: the paper's third use case for the
//! object-level view ("object clustering or global variable
//! re-mapping").
//!
//! Static objects are singleton groups placed by the linker in
//! definition order — an order that has nothing to do with how the
//! program uses them. This analysis counts temporal transitions between
//! *whole objects across groups* (each static is its own group) and
//! chains them into a suggested placement order, so globals that are
//! used together become neighbors in the data segment.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use orp_core::{OrSink, OrTuple};

/// A whole-object identity (group + serial), the granularity of
/// re-mapping (re-exported from the plan IR).
pub use crate::plan::ObjectKey;

/// Cross-group object-transition counts and placement suggestions.
#[derive(Debug, Clone, Default)]
pub struct RemapAnalysis {
    /// Unordered pair (lexicographically sorted) → transition count.
    affinity: BTreeMap<(ObjectKey, ObjectKey), u64>,
    /// Objects seen.
    objects: BTreeSet<ObjectKey>,
    /// Last object accessed, across all groups.
    last: Option<ObjectKey>,
}

impl RemapAnalysis {
    /// Creates an empty analysis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Transition count between two objects (order insensitive).
    #[must_use]
    pub fn affinity(&self, a: ObjectKey, b: ObjectKey) -> u64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.affinity.get(&(lo, hi)).copied().unwrap_or(0)
    }

    /// All objects observed.
    #[must_use]
    pub fn objects(&self) -> Vec<ObjectKey> {
        self.objects.iter().copied().collect()
    }

    /// Total cross-object transition weight — the upper bound on what
    /// a re-mapping can exploit.
    #[must_use]
    pub fn total_affinity(&self) -> u64 {
        self.affinity.values().sum()
    }

    /// Suggests a placement order: a greedy affinity chain (strongest
    /// edges first, each object adjacent to at most two others, no
    /// cycles), with untouched-by-affinity objects appended.
    #[must_use]
    pub fn suggest_order(&self) -> Vec<ObjectKey> {
        let objects = self.objects();
        if objects.len() <= 2 {
            return objects;
        }
        let mut edges: Vec<(u64, ObjectKey, ObjectKey)> = self
            .affinity
            .iter()
            .map(|(&(a, b), &w)| (w, a, b))
            .collect();
        edges.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));

        let mut degree: HashMap<ObjectKey, usize> = HashMap::new();
        let mut parent: HashMap<ObjectKey, ObjectKey> = objects.iter().map(|&o| (o, o)).collect();
        fn find(parent: &mut HashMap<ObjectKey, ObjectKey>, x: ObjectKey) -> ObjectKey {
            let p = parent[&x];
            if p == x {
                x
            } else {
                let root = find(parent, p);
                parent.insert(x, root);
                root
            }
        }
        let mut adj: HashMap<ObjectKey, Vec<ObjectKey>> = HashMap::new();
        for (w, a, b) in edges {
            if w == 0 {
                continue;
            }
            if degree.get(&a).copied().unwrap_or(0) >= 2
                || degree.get(&b).copied().unwrap_or(0) >= 2
            {
                continue;
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                continue;
            }
            parent.insert(ra, rb);
            *degree.entry(a).or_default() += 1;
            *degree.entry(b).or_default() += 1;
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }

        let mut out = Vec::with_capacity(objects.len());
        let mut visited: BTreeSet<ObjectKey> = BTreeSet::new();
        let starts: Vec<ObjectKey> = objects
            .iter()
            .copied()
            .filter(|o| degree.get(o).copied().unwrap_or(0) == 1)
            .collect();
        for start in starts {
            if visited.contains(&start) {
                continue;
            }
            let mut cur = start;
            loop {
                visited.insert(cur);
                out.push(cur);
                match adj
                    .get(&cur)
                    .and_then(|ns| ns.iter().find(|n| !visited.contains(n)))
                    .copied()
                {
                    Some(next) => cur = next,
                    None => break,
                }
            }
        }
        for o in objects {
            if !visited.contains(&o) {
                out.push(o);
            }
        }
        out
    }
}

impl OrSink for RemapAnalysis {
    fn tuple(&mut self, t: &OrTuple) {
        let key = (t.group, t.object);
        self.objects.insert(key);
        if let Some(prev) = self.last.replace(key) {
            if prev != key {
                let (lo, hi) = if prev <= key {
                    (prev, key)
                } else {
                    (key, prev)
                };
                *self.affinity.entry((lo, hi)).or_default() += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{GroupId, ObjectSerial, Timestamp};
    use orp_trace::{AccessKind, InstrId};

    fn t(group: u32, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(0),
            kind: AccessKind::Load,
            group: GroupId(group),
            object: ObjectSerial(0),
            offset: 0,
            time: Timestamp(time),
            size: 8,
        }
    }

    fn key(group: u32) -> ObjectKey {
        (GroupId(group), ObjectSerial(0))
    }

    #[test]
    fn co_used_globals_become_neighbors() {
        // Globals 0 and 2 ping-pong; 1 and 3 ping-pong; 4 is cold.
        let mut a = RemapAnalysis::new();
        let mut time = 0;
        for _ in 0..100 {
            a.tuple(&t(0, time));
            a.tuple(&t(2, time + 1));
            time += 2;
        }
        for _ in 0..80 {
            a.tuple(&t(1, time));
            a.tuple(&t(3, time + 1));
            time += 2;
        }
        a.tuple(&t(4, time));
        let order = a.suggest_order();
        assert_eq!(order.len(), 5);
        let pos = |g: u32| order.iter().position(|&o| o == key(g)).unwrap();
        assert_eq!(pos(0).abs_diff(pos(2)), 1, "{order:?}");
        assert_eq!(pos(1).abs_diff(pos(3)), 1, "{order:?}");
    }

    #[test]
    fn affinity_is_order_insensitive() {
        let mut a = RemapAnalysis::new();
        a.tuple(&t(0, 0));
        a.tuple(&t(1, 1));
        a.tuple(&t(0, 2));
        assert_eq!(a.affinity(key(0), key(1)), 2);
        assert_eq!(a.affinity(key(1), key(0)), 2);
        assert_eq!(a.affinity(key(0), key(2)), 0);
    }

    #[test]
    fn tiny_inputs_are_safe() {
        let a = RemapAnalysis::new();
        assert!(a.suggest_order().is_empty());
        let mut b = RemapAnalysis::new();
        b.tuple(&t(0, 0));
        assert_eq!(b.suggest_order(), vec![key(0)]);
    }
}
