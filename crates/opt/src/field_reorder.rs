//! Field-reordering analysis: which offsets of a group are accessed
//! close together in time?
//!
//! The paper's example: "A frequently repeated offset sequence, say
//! `(0, 36)*`, along with the object lifetime information … may reveal
//! a field-reordering opportunity to the compiler to take advantage of
//! spatial locality." This module counts, per group, how often two
//! offsets are accessed consecutively *within the same object*, and
//! greedily chains the affinity graph into a suggested field order.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple};

/// Per-group field (offset) affinity counts and layout suggestions.
///
/// Feed it the object-relative stream (it implements [`OrSink`]), then
/// query [`FieldReorderAnalysis::affinity`] or
/// [`FieldReorderAnalysis::suggest_layout`].
///
/// # Examples
///
/// ```
/// use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
/// use orp_opt::FieldReorderAnalysis;
/// use orp_trace::{AccessKind, InstrId};
///
/// let mut a = FieldReorderAnalysis::new();
/// // The paper's (0, 36)* pattern over many objects.
/// for obj in 0..20u64 {
///     for (i, off) in [0u64, 36].into_iter().enumerate() {
///         a.tuple(&OrTuple {
///             instr: InstrId(i as u32),
///             kind: AccessKind::Load,
///             group: GroupId(0),
///             object: ObjectSerial(obj),
///             offset: off,
///             time: Timestamp(obj * 2 + i as u64),
///             size: 8,
///         });
///     }
/// }
/// assert_eq!(a.suggest_layout(GroupId(0)), vec![0, 36]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FieldReorderAnalysis {
    /// (group, lo offset, hi offset) → consecutive-access count.
    affinity: BTreeMap<(GroupId, u64, u64), u64>,
    /// Offsets seen per group.
    offsets: BTreeMap<GroupId, BTreeSet<u64>>,
    /// Last access per group: (object, offset).
    last: HashMap<GroupId, (ObjectSerial, u64)>,
}

impl FieldReorderAnalysis {
    /// Creates an empty analysis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The affinity count between two offsets of a group (order
    /// insensitive).
    #[must_use]
    pub fn affinity(&self, group: GroupId, a: u64, b: u64) -> u64 {
        let (lo, hi) = (a.min(b), a.max(b));
        self.affinity.get(&(group, lo, hi)).copied().unwrap_or(0)
    }

    /// All offsets observed for a group.
    #[must_use]
    pub fn offsets(&self, group: GroupId) -> Vec<u64> {
        self.offsets
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Groups with at least one affinity edge.
    #[must_use]
    pub fn groups(&self) -> Vec<GroupId> {
        self.offsets.keys().copied().collect()
    }

    /// Total offset-transition weight of a group — how much temporal
    /// field adjacency a reordering could exploit.
    #[must_use]
    pub fn total_affinity(&self, group: GroupId) -> u64 {
        self.affinity
            .range((group, 0, 0)..=(group, u64::MAX, u64::MAX))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Suggests a field order for `group`: a greedy chain through the
    /// affinity graph, strongest edges first — fields that are accessed
    /// together end up adjacent, so they share cache lines after
    /// reordering.
    ///
    /// Offsets never involved in an affinity edge are appended in
    /// ascending order (their placement is unconstrained).
    #[must_use]
    pub fn suggest_layout(&self, group: GroupId) -> Vec<u64> {
        let offsets = self.offsets(group);
        if offsets.len() <= 2 {
            return offsets;
        }
        // Edges sorted by descending affinity.
        let mut edges: Vec<(u64, u64, u64)> = self
            .affinity
            .range((group, 0, 0)..=(group, u64::MAX, u64::MAX))
            .map(|(&(_, a, b), &w)| (w, a, b))
            .collect();
        edges.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));

        // Greedy chain building: accept an edge when both endpoints
        // have degree < 2 and the edge does not close a cycle.
        let mut degree: HashMap<u64, usize> = HashMap::new();
        let mut parent: HashMap<u64, u64> = offsets.iter().map(|&o| (o, o)).collect();
        fn find(parent: &mut HashMap<u64, u64>, x: u64) -> u64 {
            let p = parent[&x];
            if p == x {
                x
            } else {
                let root = find(parent, p);
                parent.insert(x, root);
                root
            }
        }
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        for (w, a, b) in edges {
            if w == 0 {
                continue;
            }
            let (da, db) = (
                degree.get(&a).copied().unwrap_or(0),
                degree.get(&b).copied().unwrap_or(0),
            );
            if da >= 2 || db >= 2 {
                continue;
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                continue;
            }
            parent.insert(ra, rb);
            *degree.entry(a).or_default() += 1;
            *degree.entry(b).or_default() += 1;
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }

        // Walk each chain from an endpoint; emit isolated offsets last.
        let mut out = Vec::with_capacity(offsets.len());
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        let mut starts: Vec<u64> = offsets
            .iter()
            .copied()
            .filter(|o| degree.get(o).copied().unwrap_or(0) == 1)
            .collect();
        starts.sort_unstable();
        for start in starts {
            if visited.contains(&start) {
                continue;
            }
            let mut cur = start;
            let mut prev = None;
            loop {
                visited.insert(cur);
                out.push(cur);
                let next = adj
                    .get(&cur)
                    .and_then(|ns| {
                        ns.iter()
                            .find(|&&n| Some(n) != prev && !visited.contains(&n))
                    })
                    .copied();
                match next {
                    Some(n) => {
                        prev = Some(cur);
                        cur = n;
                    }
                    None => break,
                }
            }
        }
        for o in offsets {
            if !visited.contains(&o) {
                out.push(o);
            }
        }
        out
    }
}

impl OrSink for FieldReorderAnalysis {
    fn tuple(&mut self, t: &OrTuple) {
        self.offsets.entry(t.group).or_default().insert(t.offset);
        if let Some((obj, off)) = self.last.insert(t.group, (t.object, t.offset)) {
            if obj == t.object && off != t.offset {
                let (lo, hi) = (off.min(t.offset), off.max(t.offset));
                *self.affinity.entry((t.group, lo, hi)).or_default() += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::Timestamp;
    use orp_trace::{AccessKind, InstrId};

    fn t(group: u32, object: u64, offset: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(0),
            kind: AccessKind::Load,
            group: GroupId(group),
            object: ObjectSerial(object),
            offset,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn paper_offset_pair_pattern() {
        // The paper's (0, 36)* repeated offset sequence.
        let mut a = FieldReorderAnalysis::new();
        let mut time = 0;
        for obj in 0..50 {
            a.tuple(&t(0, obj, 0, time));
            a.tuple(&t(0, obj, 36, time + 1));
            time += 2;
        }
        assert_eq!(a.affinity(GroupId(0), 0, 36), 50);
        assert_eq!(a.affinity(GroupId(0), 36, 0), 50, "order insensitive");
        assert_eq!(a.suggest_layout(GroupId(0)), vec![0, 36]);
    }

    #[test]
    fn chains_strongest_affinities_adjacently() {
        // Offsets 0,8,16,24: pattern (0,16) x100, (8,24) x100, (0,8) x10.
        let mut a = FieldReorderAnalysis::new();
        let mut time = 0;
        for rep in 0..100 {
            a.tuple(&t(0, 0, 0, time));
            a.tuple(&t(0, 0, 16, time + 1));
            a.tuple(&t(0, 1, 8, time + 2));
            a.tuple(&t(0, 1, 24, time + 3));
            time += 4;
            if rep < 10 {
                a.tuple(&t(0, 2, 0, time));
                a.tuple(&t(0, 2, 8, time + 1));
                time += 2;
            }
        }
        let layout = a.suggest_layout(GroupId(0));
        assert_eq!(layout.len(), 4);
        let pos = |o: u64| layout.iter().position(|&x| x == o).unwrap();
        assert_eq!(
            pos(0).abs_diff(pos(16)),
            1,
            "hottest pair adjacent: {layout:?}"
        );
        assert_eq!(
            pos(8).abs_diff(pos(24)),
            1,
            "second pair adjacent: {layout:?}"
        );
    }

    #[test]
    fn cross_object_adjacency_is_not_affinity() {
        // Consecutive accesses to *different* objects say nothing about
        // intra-object layout.
        let mut a = FieldReorderAnalysis::new();
        a.tuple(&t(0, 0, 0, 0));
        a.tuple(&t(0, 1, 36, 1));
        assert_eq!(a.affinity(GroupId(0), 0, 36), 0);
    }

    #[test]
    fn groups_are_independent() {
        let mut a = FieldReorderAnalysis::new();
        a.tuple(&t(0, 0, 0, 0));
        a.tuple(&t(1, 0, 8, 1)); // group switch resets nothing across groups
        a.tuple(&t(0, 0, 16, 2));
        assert_eq!(a.affinity(GroupId(0), 0, 16), 1);
        assert_eq!(a.affinity(GroupId(1), 0, 16), 0);
        assert_eq!(a.groups().len(), 2);
    }

    #[test]
    fn isolated_offsets_are_appended() {
        let mut a = FieldReorderAnalysis::new();
        a.tuple(&t(0, 0, 0, 0));
        a.tuple(&t(0, 0, 8, 1));
        // Offset 99 is seen but never adjacent to anything (different
        // object).
        a.tuple(&t(0, 5, 99, 2));
        let layout = a.suggest_layout(GroupId(0));
        assert_eq!(layout.last(), Some(&99));
        assert_eq!(layout.len(), 3);
    }

    #[test]
    fn empty_analysis_is_safe() {
        let a = FieldReorderAnalysis::new();
        assert!(a.suggest_layout(GroupId(0)).is_empty());
        assert!(a.groups().is_empty());
        assert!(a.offsets(GroupId(0)).is_empty());
    }
}
