//! Hot/cold object tiering driven by grammar hot streams.
//!
//! OBASE-style tiering: objects that appear in a group's *hot data
//! streams* (frequently repeated access subsequences, mined by
//! [`hot_streams`] from a Sequitur grammar over the group's object
//! dimension) are placed in a dense hot region; the rest move to a
//! cold region. The hot set is a structural signal — membership in a
//! repeated traversal — not a plain access-count cutoff, which is
//! exactly what the object-relative grammar adds over a flat heat
//! histogram.

use std::collections::{BTreeMap, BTreeSet};

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple};
use orp_sequitur::Sequitur;

use crate::advisor::LayoutAdvisor;
use crate::hot_streams::hot_streams;
use crate::plan::{Transform, TransformKind};

/// Default minimum hot-stream expansion length considered structural.
pub const DEFAULT_MIN_STREAM_LEN: usize = 2;
/// Default number of top streams per group whose members become hot.
pub const DEFAULT_TOP_STREAMS: usize = 8;

/// Hot/cold tiering adviser: one Sequitur grammar per group over the
/// object-serial dimension, mined with [`hot_streams`] at advise time.
#[derive(Debug, Clone)]
pub struct TieringAdvisor {
    grammars: BTreeMap<GroupId, Sequitur>,
    /// Access counts per (group, serial) — scores the hot set.
    heat: BTreeMap<(GroupId, u64), u64>,
    min_stream_len: usize,
    top_streams: usize,
}

impl Default for TieringAdvisor {
    fn default() -> Self {
        Self::new()
    }
}

impl TieringAdvisor {
    /// Creates an adviser with the default mining parameters.
    #[must_use]
    pub fn new() -> Self {
        TieringAdvisor {
            grammars: BTreeMap::new(),
            heat: BTreeMap::new(),
            min_stream_len: DEFAULT_MIN_STREAM_LEN,
            top_streams: DEFAULT_TOP_STREAMS,
        }
    }

    /// Creates an adviser with explicit mining parameters: streams
    /// shorter than `min_stream_len` are ignored, and only the
    /// `top_streams` hottest streams per group contribute members.
    #[must_use]
    pub fn with_params(min_stream_len: usize, top_streams: usize) -> Self {
        TieringAdvisor {
            min_stream_len: min_stream_len.max(1),
            top_streams,
            ..TieringAdvisor::new()
        }
    }

    /// The hot serials of one group under the current profile.
    #[must_use]
    pub fn hot_set(&self, group: GroupId) -> BTreeSet<ObjectSerial> {
        let Some(seq) = self.grammars.get(&group) else {
            return BTreeSet::new();
        };
        let grammar = seq.grammar();
        hot_streams(&grammar, self.min_stream_len, self.top_streams)
            .into_iter()
            .flat_map(|s| s.expansion)
            .map(ObjectSerial)
            .collect()
    }

    fn object_count(&self, group: GroupId) -> usize {
        self.heat.range((group, 0)..=(group, u64::MAX)).count()
    }

    fn hot_heat(&self, group: GroupId, hot: &BTreeSet<ObjectSerial>) -> u64 {
        hot.iter()
            .map(|s| self.heat.get(&(group, s.0)).copied().unwrap_or(0))
            .sum()
    }
}

impl LayoutAdvisor for TieringAdvisor {
    fn name(&self) -> &'static str {
        "tier"
    }

    /// One `HotColdSplit` per group whose hot-stream members form a
    /// proper, nonempty subset of the group's objects; benefit is the
    /// accesses the hot set covers.
    fn advise(&self) -> Vec<Transform> {
        let mut out = Vec::new();
        for &group in self.grammars.keys() {
            let hot = self.hot_set(group);
            if hot.is_empty() || hot.len() >= self.object_count(group) {
                // Nothing structural, or everything is hot — a split
                // would not separate anything.
                continue;
            }
            let benefit = self.hot_heat(group, &hot);
            if benefit == 0 {
                continue;
            }
            out.push(Transform {
                kind: TransformKind::HotColdSplit {
                    group,
                    hot: hot.into_iter().collect(),
                },
                advisor: self.name().to_string(),
                benefit,
            });
        }
        out
    }
}

impl OrSink for TieringAdvisor {
    fn tuple(&mut self, t: &OrTuple) {
        self.grammars.entry(t.group).or_default().push(t.object.0);
        *self.heat.entry((t.group, t.object.0)).or_default() += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::Timestamp;
    use orp_trace::{AccessKind, InstrId};

    fn t(group: u32, object: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(0),
            kind: AccessKind::Load,
            group: GroupId(group),
            object: ObjectSerial(object),
            offset: 0,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn repeated_traversal_becomes_the_hot_tier() {
        let mut adv = TieringAdvisor::new();
        let mut time = 0;
        // Objects 0..4 cycle hotly; objects 100..120 are touched once.
        for _ in 0..60 {
            for obj in 0..4u64 {
                adv.tuple(&t(0, obj, time));
                time += 1;
            }
        }
        for obj in 100..120u64 {
            adv.tuple(&t(0, obj, time));
            time += 1;
        }
        let transforms = adv.advise();
        assert_eq!(transforms.len(), 1);
        let Transform { kind, benefit, .. } = &transforms[0];
        let TransformKind::HotColdSplit { group, hot } = kind else {
            panic!("expected a hot/cold split, got {kind:?}");
        };
        assert_eq!(*group, GroupId(0));
        let hot_serials: BTreeSet<u64> = hot.iter().map(|s| s.0).collect();
        assert!(
            hot_serials.is_subset(&(0..4u64).collect()),
            "hot set {hot_serials:?} is from the cycling objects"
        );
        assert!(*benefit >= 100, "covers the traversal: {benefit}");
        // Canonical: ascending.
        assert!(hot.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn uniform_access_produces_no_split() {
        // Every object equally part of the repeated structure: hot set
        // is the whole group, so no split is proposed.
        let mut adv = TieringAdvisor::new();
        let mut time = 0;
        for _ in 0..50 {
            for obj in 0..3u64 {
                adv.tuple(&t(0, obj, time));
                time += 1;
            }
        }
        assert!(adv.advise().is_empty());
    }

    #[test]
    fn groups_are_tiered_independently() {
        let mut adv = TieringAdvisor::new();
        let mut time = 0;
        for _ in 0..60 {
            for obj in 0..4u64 {
                adv.tuple(&t(5, obj, time));
                time += 1;
            }
        }
        for obj in 50..60u64 {
            adv.tuple(&t(5, obj, time));
            adv.tuple(&t(9, obj, time + 1));
            time += 2;
        }
        let transforms = adv.advise();
        assert!(transforms.iter().all(|t| matches!(
            t.kind,
            TransformKind::HotColdSplit { group, .. } if group == GroupId(5)
        )));
    }

    #[test]
    fn empty_adviser_is_quiet() {
        assert!(TieringAdvisor::new().advise().is_empty());
        assert!(TieringAdvisor::new().hot_set(GroupId(0)).is_empty());
    }
}
