//! The per-file facts database the rules run against.
//!
//! [`FileFacts`] is stage 1 of the engine: one lex + marker/test-span
//! scan + syntax pass per file, shared by every rule (the legacy token
//! rules read the significant-token view; the cross-file rules read
//! the extracted items). [`WorkspaceFacts`] is the cross-file linker's
//! input: every file's facts plus the chunk-tag registry extracted
//! from `crates/format/src/chunk.rs`.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Kind, Token};
use crate::rules::RULES;
use crate::syntax::{self, FileSyntax};
use crate::Diagnostic;

/// Everything the engine knows about one file.
pub struct FileFacts {
    pub rel: PathBuf,
    /// `rel` normalized to forward slashes for classification.
    pub rel_s: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub sig: Vec<usize>,
    /// Lines exempted per rule by inline `analyze: allow` markers.
    pub allowed: HashSet<(&'static str, u32)>,
    /// Malformed markers, reported as `allow-marker` diagnostics.
    pub marker_problems: Vec<Diagnostic>,
    /// Line spans of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
    pub syntax: FileSyntax,
}

impl FileFacts {
    #[must_use]
    pub fn new(rel: &Path, src: &str) -> Self {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != Kind::Comment)
            .map(|(i, _)| i)
            .collect();
        let syntax = syntax::parse(&tokens, &sig);
        let mut facts = FileFacts {
            rel: rel.to_path_buf(),
            rel_s: rel_str(rel),
            tokens,
            sig,
            allowed: HashSet::new(),
            marker_problems: Vec::new(),
            test_spans: Vec::new(),
            syntax,
        };
        facts.scan_markers();
        facts.scan_test_spans();
        facts
    }

    pub(crate) fn s(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    pub(crate) fn stext(&self, i: usize) -> &str {
        &self.s(i).text
    }

    #[must_use]
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    #[must_use]
    pub fn line_allowed(&self, rule: &'static str, line: u32) -> bool {
        self.allowed.contains(&(rule, line))
    }

    /// Whether a function (by index) is itself a test or sits in a
    /// test span.
    #[must_use]
    pub fn fn_is_test(&self, f: usize) -> bool {
        self.in_test_span(self.syntax.fns[f].line)
    }

    /// Collects `// analyze: allow(<rule>): <reason>` markers: each
    /// exempts its own line and the next (so it can sit above the
    /// statement).
    fn scan_markers(&mut self) {
        let mut found = Vec::new();
        for t in &self.tokens {
            if t.kind != Kind::Comment {
                continue;
            }
            // Only a comment that *is* a marker counts — prose that
            // mentions the syntax (like these docs) must not grant an
            // exemption.
            let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
            let Some(rest) = body.strip_prefix("analyze: allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                found.push((None, t.line, "unclosed allow marker".to_owned()));
                continue;
            };
            // `allow(panic)` is the documented spelling for the
            // no-panic rule's infallibility marker.
            let name = match &rest[..close] {
                "panic" => "no-panic",
                other => other,
            };
            let reason = rest[close + 1..]
                .trim_start_matches([':', '-', '—', ' '])
                .trim();
            match RULES.iter().find(|r| **r == name) {
                None => found.push((
                    None,
                    t.line,
                    format!("unknown rule '{name}' in allow marker"),
                )),
                Some(rule) if reason.is_empty() => found.push((
                    None,
                    t.line,
                    format!("allow({rule}) marker needs a justification after the ')'"),
                )),
                Some(rule) => found.push((Some(*rule), t.line, String::new())),
            }
        }
        for (rule, line, message) in found {
            match rule {
                Some(rule) => {
                    self.allowed.insert((rule, line));
                    self.allowed.insert((rule, line + 1));
                }
                None => self.marker_problems.push(Diagnostic {
                    file: self.rel.clone(),
                    line,
                    rule: "allow-marker",
                    message,
                }),
            }
        }
    }

    /// Marks the line span of every item annotated `#[cfg(test)]` or
    /// `#[test]`: the span runs from the attribute to the item's
    /// closing brace (or `;`).
    fn scan_test_spans(&mut self) {
        let mut i = 0;
        while i < self.sig.len() {
            if self.stext(i) != "#" || i + 1 >= self.sig.len() || self.stext(i + 1) != "[" {
                i += 1;
                continue;
            }
            let attr_line = self.s(i).line;
            // Collect attribute content to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr = Vec::new();
            while j < self.sig.len() && depth > 0 {
                match self.stext(j) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    t => attr.push(t.to_owned()),
                }
                j += 1;
            }
            let is_test_attr = attr.first().is_some_and(|a| a == "test")
                || (attr.contains(&"cfg".to_owned()) && attr.contains(&"test".to_owned()));
            if !is_test_attr {
                i = j;
                continue;
            }
            // Skip any further attributes, then span the item.
            while j + 1 < self.sig.len() && self.stext(j) == "#" && self.stext(j + 1) == "[" {
                let mut depth = 0usize;
                j += 1;
                loop {
                    match self.stext(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                    if j >= self.sig.len() {
                        break;
                    }
                }
                j += 1;
            }
            let mut braces = 0usize;
            let end_line = loop {
                if j >= self.sig.len() {
                    break self.tokens.last().map_or(attr_line, |t| t.line);
                }
                match self.stext(j) {
                    ";" if braces == 0 => break self.s(j).line,
                    "{" => braces += 1,
                    "}" => {
                        braces -= 1;
                        if braces == 0 {
                            break self.s(j).line;
                        }
                    }
                    _ => {}
                }
                j += 1;
            };
            self.test_spans.push((attr_line, end_line));
            i = j + 1;
        }
    }
}

// ---- path classification -------------------------------------------------

pub(crate) fn rel_str(rel: &Path) -> String {
    // Normalize to forward slashes so classification is
    // platform-independent.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Decode-path files: all of `orp-format`, every crate's `io.rs`
/// (the FromBytes-style parsers), and the session layer (parses
/// checkpoint containers).
#[must_use]
pub fn is_decode_path(rel: &str) -> bool {
    rel.starts_with("crates/format/src/")
        || rel == "crates/core/src/session.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/io.rs"))
}

/// First-party source (rules don't police vendored stand-ins beyond
/// `forbid-unsafe`).
#[must_use]
pub fn is_first_party(rel: &str) -> bool {
    rel.starts_with("crates/") || rel.starts_with("src/")
}

/// Integration tests, benches and examples: exercised code, not
/// shipped decode paths.
#[must_use]
pub fn is_test_tree(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

/// Grammar-construction hot paths: every push runs one to three digram
/// map operations, so these crates must not construct maps with the
/// default (SipHash) hasher.
#[must_use]
pub fn is_grammar_hot_path(rel: &str) -> bool {
    rel.starts_with("crates/sequitur/src/") || rel.starts_with("crates/whomp/src/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: `lib.rs` /
/// `main.rs` / `bin/*.rs` of the facade crate, every workspace crate,
/// and the vendored stand-ins.
#[must_use]
pub fn is_crate_root(rel: &str) -> bool {
    let bin = |prefix: &str| {
        rel.strip_prefix(prefix).is_some_and(|rest| {
            let mut parts = rest.splitn(4, '/');
            // "<crate>/src/bin/<file>.rs" under crates/ or third_party/
            matches!(
                (parts.next(), parts.next(), parts.next(), parts.next()),
                (Some(_), Some("src"), Some("bin"), Some(f)) if f.ends_with(".rs") && !f.contains('/')
            )
        })
    };
    let root_file = |prefix: &str| {
        rel == format!("{prefix}src/lib.rs") || rel == format!("{prefix}src/main.rs")
    };
    if root_file("") || (rel.starts_with("src/bin/") && rel.ends_with(".rs")) {
        return true;
    }
    for tree in ["crates/", "third_party/"] {
        if bin(tree) {
            return true;
        }
        if let Some(rest) = rel.strip_prefix(tree) {
            let mut parts = rest.splitn(2, '/');
            if let (Some(_), Some(tail)) = (parts.next(), parts.next()) {
                if tail == "src/lib.rs" || tail == "src/main.rs" {
                    return true;
                }
            }
        }
    }
    false
}

// ---- workspace aggregation -----------------------------------------------

/// The cross-file linker's input: all per-file facts plus the chunk
/// registry extracted from `crates/format/src/chunk.rs`.
pub struct WorkspaceFacts {
    pub files: Vec<FileFacts>,
    /// `ChunkTag` consts declared in `chunk.rs`: `(NAME, line)`.
    pub chunk_tags: Vec<(String, u32)>,
    /// `ProfileKind` variant → primary `ChunkTag` const name, from
    /// `ProfileKind::primary_chunk`.
    pub kind_primary: Vec<(String, String)>,
}

impl WorkspaceFacts {
    #[must_use]
    pub fn build(files: Vec<FileFacts>) -> Self {
        let mut chunk_tags = Vec::new();
        let mut kind_primary = Vec::new();
        if let Some(chunk) = files
            .iter()
            .find(|f| f.rel_s == "crates/format/src/chunk.rs")
        {
            // Declared tags: `const NAME: ChunkTag =`.
            for i in 0..chunk.sig.len().saturating_sub(4) {
                if chunk.stext(i) == "const"
                    && chunk.stext(i + 2) == ":"
                    && chunk.stext(i + 3) == "ChunkTag"
                    && chunk.stext(i + 4) == "="
                {
                    chunk_tags.push((chunk.stext(i + 1).to_owned(), chunk.s(i + 1).line));
                }
            }
            // Kind → primary tag: inside `fn primary_chunk`, match arms
            // pair `ProfileKind::K => ChunkTag::T`.
            if let Some(f) = chunk.syntax.fns.iter().find(|f| f.name == "primary_chunk") {
                if let Some((lo, hi)) = f.body {
                    let mut i = lo;
                    while i + 9 < hi {
                        if chunk.stext(i) == "ProfileKind"
                            && chunk.stext(i + 1) == ":"
                            && chunk.stext(i + 2) == ":"
                            && chunk.stext(i + 4) == "="
                            && chunk.stext(i + 5) == ">"
                            && chunk.stext(i + 6) == "ChunkTag"
                        {
                            kind_primary.push((
                                chunk.stext(i + 3).to_owned(),
                                chunk.stext(i + 9).to_owned(),
                            ));
                            i += 10;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
        WorkspaceFacts {
            files,
            chunk_tags,
            kind_primary,
        }
    }

    /// The `ChunkTag` const names a `ProfileKind` variant maps to.
    #[must_use]
    pub fn primary_tag_of(&self, kind: &str) -> Option<&str> {
        self.kind_primary
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, t)| t.as_str())
    }

    /// The `ProfileKind` variants whose primary chunk is `tag`.
    #[must_use]
    pub fn kinds_of_tag(&self, tag: &str) -> Vec<&str> {
        self.kind_primary
            .iter()
            .filter(|(_, t)| t == tag)
            .map(|(k, _)| k.as_str())
            .collect()
    }
}
