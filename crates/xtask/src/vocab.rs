//! The metric-key vocabulary: one source of truth shared by
//! `cargo xtask validate-report` (report keys must be enumerated) and
//! the `metric-key` analyze rule (code literals and the vocabulary
//! must agree in both directions).
//!
//! The vocabulary lives in `schemas/run_report.schema` alongside the
//! field lines:
//!
//! ```text
//! set stream instruction group object offset records instructions
//! key counter grammar.batches.<stream>
//! key span    grammar.worker_busy_ns.<stream>
//! key ratio   opt.<opt-subject...>.l1_delta
//! ```
//!
//! A `<name>` placeholder matches exactly one dot-separated segment
//! drawn from `set name`; `<name...>` matches one member segment plus
//! any trailing segments (transform labels like `colocate.g2`).
//! Histogram keys (`key observe x`) additionally match their folded
//! counter forms `x.count`/`x.min`/`x.max`/`x.sum` (see
//! `orp_obs::RunReport::absorb`).

use std::collections::BTreeMap;

/// Which recorder surface a key pattern belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    Counter,
    Observe,
    Span,
    Ratio,
}

impl KeyKind {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "counter" => KeyKind::Counter,
            "observe" => KeyKind::Observe,
            "span" => KeyKind::Span,
            "ratio" => KeyKind::Ratio,
            _ => None?,
        })
    }
}

/// One `key` line: a kind plus a dot-segmented pattern.
#[derive(Debug, Clone)]
pub struct KeyPattern {
    pub kind: KeyKind,
    pub pattern: String,
    /// 1-based line in the schema file (diagnostic anchor).
    pub line: u32,
}

/// The parsed vocabulary.
#[derive(Debug, Default)]
pub struct Vocabulary {
    pub sets: BTreeMap<String, Vec<String>>,
    pub keys: Vec<KeyPattern>,
}

/// One pattern segment after parsing.
enum Seg<'a> {
    /// A literal segment.
    Lit(&'a str),
    /// `<set>` — exactly one segment, constrained to the set (or any
    /// single segment when the set name is unknown).
    One(&'a str),
    /// `<set...>` — one constrained segment plus any trailing ones.
    Tail(&'a str),
}

impl Vocabulary {
    /// Parses `set`/`key` lines out of a schema document; other lines
    /// are left to the field-schema parser. Malformed vocabulary lines
    /// are reported as `(line, problem)` pairs.
    #[must_use]
    pub fn parse(schema_text: &str) -> (Self, Vec<(u32, String)>) {
        let mut vocab = Vocabulary::default();
        let mut problems = Vec::new();
        for (idx, raw) in schema_text.lines().enumerate() {
            let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let line = raw.trim();
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("set") => {
                    let Some(name) = parts.next() else {
                        problems.push((line_no, "set line needs a name".to_owned()));
                        continue;
                    };
                    let members: Vec<String> = parts.map(str::to_owned).collect();
                    if members.is_empty() {
                        problems.push((line_no, format!("set '{name}' has no members")));
                        continue;
                    }
                    vocab.sets.insert(name.to_owned(), members);
                }
                Some("key") => {
                    let (Some(kind), Some(pattern), None) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        problems.push((
                            line_no,
                            "key line must be 'key <kind> <pattern>'".to_owned(),
                        ));
                        continue;
                    };
                    let Some(kind) = KeyKind::parse(kind) else {
                        problems.push((
                            line_no,
                            format!("unknown key kind '{kind}' (counter/observe/span/ratio)"),
                        ));
                        continue;
                    };
                    vocab.keys.push(KeyPattern {
                        kind,
                        pattern: pattern.to_owned(),
                        line: line_no,
                    });
                }
                _ => {}
            }
        }
        (vocab, problems)
    }

    /// Whether `key` (a concrete report key) is enumerated for `kind`.
    /// Counter keys also match `observe` patterns through their folded
    /// `.count`/`.min`/`.max`/`.sum` forms.
    #[must_use]
    pub fn matches(&self, kind: KeyKind, key: &str) -> bool {
        for kp in &self.keys {
            if kp.kind == kind && self.pattern_matches(&kp.pattern, key) {
                return true;
            }
            if kind == KeyKind::Counter && kp.kind == KeyKind::Observe {
                if let Some(base) = key
                    .strip_suffix(".count")
                    .or_else(|| key.strip_suffix(".min"))
                    .or_else(|| key.strip_suffix(".max"))
                    .or_else(|| key.strip_suffix(".sum"))
                {
                    if self.pattern_matches(&kp.pattern, base) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether a concrete key matches a pattern.
    #[must_use]
    pub fn pattern_matches(&self, pattern: &str, key: &str) -> bool {
        let psegs: Vec<Seg<'_>> = split_pattern(pattern).into_iter().map(parse_seg).collect();
        let ksegs: Vec<&str> = key.split('.').collect();
        self.match_at(&psegs, &ksegs)
    }

    /// Whether a code-side *template* key (segments may be `{}` holes
    /// from `format!` literals, matching one or more segments) is
    /// covered by a pattern of the given kind. `kind` of `None` means
    /// any kind.
    #[must_use]
    pub fn template_matches(&self, kind: Option<KeyKind>, template: &str) -> bool {
        self.keys.iter().any(|kp| {
            kind.is_none_or(|k| k == kp.kind)
                && template_matches_pattern(&kp.pattern, template, self)
        })
    }

    /// Whether one code-side template witnesses one pattern (the
    /// backward direction of the `metric-key` rule: a vocabulary entry
    /// nobody emits is dead weight).
    #[must_use]
    pub fn witnesses(&self, pattern: &str, template: &str) -> bool {
        template_matches_pattern(pattern, template, self)
    }

    fn match_at(&self, psegs: &[Seg<'_>], ksegs: &[&str]) -> bool {
        match (psegs.first(), ksegs.first()) {
            (None, None) => true,
            (None, Some(_)) | (Some(_), None) => false,
            (Some(seg), Some(&k)) => match seg {
                Seg::Lit(lit) => *lit == k && self.match_at(&psegs[1..], &ksegs[1..]),
                Seg::One(set) => self.in_set(set, k) && self.match_at(&psegs[1..], &ksegs[1..]),
                Seg::Tail(set) => {
                    if !self.in_set(set, k) {
                        return false;
                    }
                    // Consume 1..=n segments for the tail.
                    (1..=ksegs.len()).any(|take| self.match_at(&psegs[1..], &ksegs[take..]))
                }
            },
        }
    }

    fn in_set(&self, set: &str, segment: &str) -> bool {
        match self.sets.get(set) {
            Some(members) => members.iter().any(|m| m == segment),
            // Unknown set name: any single segment (an escape hatch,
            // but `set` lines are expected for every placeholder).
            None => !segment.is_empty(),
        }
    }
}

/// Splits a pattern on `.` — but not on the dots inside a `<name...>`
/// placeholder.
fn split_pattern(pattern: &str) -> Vec<&str> {
    let mut segs = Vec::new();
    let mut start = 0;
    let mut in_angle = false;
    for (i, c) in pattern.char_indices() {
        match c {
            '<' => in_angle = true,
            '>' => in_angle = false,
            '.' if !in_angle => {
                segs.push(&pattern[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    segs.push(&pattern[start..]);
    segs
}

fn parse_seg(s: &str) -> Seg<'_> {
    s.strip_prefix('<')
        .and_then(|rest| rest.strip_suffix('>'))
        .map_or(Seg::Lit(s), |inner| {
            inner.strip_suffix("...").map_or(Seg::One(inner), Seg::Tail)
        })
}

/// Matches a code-side template (with `{}` holes standing for one or
/// more segments) against a vocabulary pattern. A hole is compatible
/// with any run of pattern segments of length ≥ 1.
fn template_matches_pattern(pattern: &str, template: &str, vocab: &Vocabulary) -> bool {
    let psegs: Vec<Seg<'_>> = split_pattern(pattern).into_iter().map(parse_seg).collect();
    let tsegs: Vec<&str> = template.split('.').collect();
    fn go(psegs: &[Seg<'_>], tsegs: &[&str], vocab: &Vocabulary) -> bool {
        match (psegs.first(), tsegs.first()) {
            (None, None) => true,
            (None, Some(_)) | (Some(_), None) => false,
            (Some(seg), Some(&t)) => {
                if t == "{}" {
                    // The hole absorbs 1..=n pattern segments.
                    return (1..=psegs.len()).any(|take| go(&psegs[take..], &tsegs[1..], vocab));
                }
                match seg {
                    Seg::Lit(lit) => *lit == t && go(&psegs[1..], &tsegs[1..], vocab),
                    Seg::One(set) => vocab.in_set(set, t) && go(&psegs[1..], &tsegs[1..], vocab),
                    Seg::Tail(set) => {
                        vocab.in_set(set, t)
                            && (1..=tsegs.len()).any(|take| go(&psegs[1..], &tsegs[take..], vocab))
                    }
                }
            }
        }
    }
    go(&psegs, &tsegs, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        let (v, problems) = Vocabulary::parse(
            "set stream instruction group object offset records instructions\n\
             set opt-subject baseline planned field-reorder colocate pool-group hot-cold-split\n\
             key counter grammar.batches.<stream>\n\
             key span grammar.worker_busy_ns.<stream>\n\
             key ratio opt.<opt-subject...>.l1_delta\n\
             key observe leap.streams_per_group\n\
             key counter omc.memo_hits\n",
        );
        assert!(problems.is_empty(), "{problems:?}");
        v
    }

    #[test]
    fn placeholders_constrain_to_set_members() {
        let v = vocab();
        assert!(v.matches(KeyKind::Counter, "grammar.batches.object"));
        assert!(!v.matches(KeyKind::Counter, "grammar.batches.threads"));
        assert!(!v.matches(KeyKind::Span, "grammar.worker_busy_ns.offsets"));
        assert!(v.matches(KeyKind::Span, "grammar.worker_busy_ns.records"));
    }

    #[test]
    fn tail_placeholders_allow_label_suffixes() {
        let v = vocab();
        assert!(v.matches(KeyKind::Ratio, "opt.planned.l1_delta"));
        assert!(v.matches(KeyKind::Ratio, "opt.colocate.g2.l1_delta"));
        assert!(v.matches(KeyKind::Ratio, "opt.hot-cold-split.g1.2.l1_delta"));
        assert!(!v.matches(KeyKind::Ratio, "opt.pooled.g1.l1_delta"));
        assert!(!v.matches(KeyKind::Ratio, "opt.planned.miss_rate"));
    }

    #[test]
    fn observe_patterns_cover_their_folded_counters() {
        let v = vocab();
        assert!(v.matches(KeyKind::Counter, "leap.streams_per_group.count"));
        assert!(v.matches(KeyKind::Counter, "leap.streams_per_group.max"));
        assert!(!v.matches(KeyKind::Counter, "leap.streams_per_group.p99"));
        assert!(v.matches(KeyKind::Observe, "leap.streams_per_group"));
    }

    #[test]
    fn format_holes_match_placeholder_runs() {
        let v = vocab();
        assert!(v.template_matches(None, "opt.{}.l1_delta"));
        assert!(v.template_matches(Some(KeyKind::Counter), "omc.memo_hits"));
        assert!(!v.template_matches(None, "opt.{}.l9_delta"));
    }

    #[test]
    fn malformed_lines_are_reported() {
        let (_, problems) = Vocabulary::parse("key bogus x\nset lonely\nkey counter\n");
        assert_eq!(problems.len(), 3);
    }
}
