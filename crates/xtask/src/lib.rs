//! The `cargo xtask analyze` static-verification pass.
//!
//! Eight repo-specific invariants that `rustc`/`clippy` cannot express,
//! checked at token level (see [`lexer`]) so they hold across
//! formatting and never match inside strings or comments:
//!
//! * **no-panic** — decode paths (`crates/format/src/**`, every
//!   `crates/*/src/io.rs`, `crates/core/src/session.rs`) must not
//!   `unwrap`/`expect`/`panic!`/index: malformed input routes through
//!   `FormatError`, never a panic. Provably-infallible sites carry
//!   `// analyze: allow(panic): <reason>`.
//! * **le-bytes** — byte-order framing (`from_le_bytes` & friends)
//!   belongs in `orp-format`'s codecs; everything else reads/writes
//!   through `read_u32_le`/`read_u64_le`/varints.
//! * **chunk-match** — a `match` over [`ChunkTag`]s needs an explicit,
//!   *non-empty* catch-all: the tag space is open (the KNOWN registry
//!   grows), and silently dropping unknown chunks hides corruption.
//! * **chunk-registry** — every `ChunkTag` const declared in
//!   `chunk.rs` must be in the `KNOWN` registry.
//! * **forbid-unsafe** — every crate root declares
//!   `#![forbid(unsafe_code)]` unless `analyze.allow` exempts it with a
//!   reason.
//! * **no-metrics-in-decode** — `orp-format` stays observability-free:
//!   no recorder ident (`orp_obs`, `Recorder`, `StatsRecorder`,
//!   `NoopRecorder`) may appear in its decode paths. I/O accounting is
//!   plain integers (`IoStats`); publication happens in the caller.
//! * **atomic-artifact-writes** — artifact producers must not
//!   `File::create`/`fs::write` outputs directly: a crash mid-write
//!   leaves a torn file. Writes go through `orp_format::AtomicFile` /
//!   `write_bytes_atomic` (the primitive's own crate and this tooling
//!   crate are exempt).
//! * **no-siphash-in-hot-paths** — the grammar crates
//!   (`crates/sequitur/src/**`, `crates/whomp/src/**`) must not build
//!   `HashMap`/`HashSet` with the default SipHash hasher
//!   (`::new`/`::with_capacity`): hot-path maps annotate
//!   `FxBuildHasher` and construct through `::default()`.
//!
//! Inline exemptions: `// analyze: allow(<rule>): <reason>` on the
//! violating line or the line above. File-level exemptions live in
//! `analyze.allow` at the repo root (`<rule> <path> <reason>` per
//! line). Both require a non-empty reason; a bare marker is itself a
//! violation.

#![forbid(unsafe_code)]

pub mod json;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analyzed root.
    pub file: PathBuf,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule name (`no-panic`, `le-bytes`, …).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Runs every analyze rule over the workspace rooted at `root`.
/// Returns the violations sorted by file then line.
///
/// # Panics
///
/// Panics when `root` cannot be walked (not a readable directory).
#[must_use]
pub fn analyze(root: &Path) -> Vec<Diagnostic> {
    let allowlist = rules::Allowlist::load(root);
    let mut diags = allowlist.problems.clone();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    for rel in &files {
        // Unreadable/non-UTF-8 files are not source we lint.
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        diags.extend(rules::check_file(rel, &src, &allowlist));
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Validates a `RunReport` JSON document against the line-based schema
/// at `schema` (see `schemas/run_report.schema`): the document must
/// parse, be an object, and carry every listed field with the listed
/// type. Returns a one-line summary on success, the full problem list
/// on failure.
///
/// # Errors
///
/// Returns every problem found — unreadable inputs, parse failures,
/// malformed schema lines, missing fields, and type mismatches.
pub fn validate_report(report: &Path, schema: &Path) -> Result<String, Vec<String>> {
    let schema_text = match std::fs::read_to_string(schema) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("{}: {e}", schema.display())]),
    };
    let report_text = match std::fs::read_to_string(report) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("{}: {e}", report.display())]),
    };
    let value = match json::parse(&report_text) {
        Ok(value) => value,
        Err(e) => return Err(vec![format!("{}: not valid JSON: {e}", report.display())]),
    };
    let Some(fields) = value.as_object() else {
        return Err(vec![format!(
            "{}: top level must be an object, found {}",
            report.display(),
            value.type_name()
        )]);
    };

    let mut problems = Vec::new();
    let mut checked = 0usize;
    for (idx, line) in schema_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(field), Some(spec), None) = (parts.next(), parts.next(), parts.next()) else {
            problems.push(format!(
                "{}:{}: schema line must be '<field> <type>'",
                schema.display(),
                idx + 1
            ));
            continue;
        };
        checked += 1;
        match fields.get(field) {
            None => problems.push(format!("missing required field \"{field}\"")),
            Some(value) => {
                if let Err(found) = spec_matches(value, spec) {
                    problems.push(format!("field \"{field}\" must be {spec}, found {found}"));
                }
            }
        }
    }
    check_grammar_metric_names(fields, &mut problems);
    check_opt_metric_names(fields, &mut problems);
    if problems.is_empty() {
        Ok(format!(
            "validate-report: {} ok ({checked} required fields present and typed)",
            report.display()
        ))
    } else {
        Err(problems)
    }
}

/// The per-dimension grammar streams a `grammar.*` metric may name:
/// the four OMSG dimensions, RASG's single record stream, and the
/// hybrid profiler's per-instruction aggregate.
const GRAMMAR_STREAMS: &[&str] = &[
    "instruction",
    "group",
    "object",
    "offset",
    "records",
    "instructions",
];

/// Supplemental check beyond the line schema: `grammar.*` keys are an
/// enumerated namespace, not free-form. A typo'd stream name (or a new
/// family added without updating this list) would silently vanish from
/// dashboards keyed on the known names, so it fails validation here.
fn check_grammar_metric_names(
    fields: &std::collections::BTreeMap<String, json::Value>,
    problems: &mut Vec<String>,
) {
    let streamed = |key: &str, family: &str| {
        key.strip_prefix(family)
            .and_then(|s| s.strip_prefix('.'))
            .is_some_and(|stream| GRAMMAR_STREAMS.contains(&stream))
    };
    if let Some(json::Value::Object(counters)) = fields.get("counters") {
        for key in counters.keys() {
            let known = !key.starts_with("grammar.")
                || key == "grammar.workers"
                || [
                    "grammar.rules",
                    "grammar.symbols",
                    "grammar.batches",
                    "grammar.stalls",
                ]
                .iter()
                .any(|family| streamed(key, family));
            if !known {
                problems.push(format!(
                    "counter \"{key}\" is not a known grammar.* family \
                     (grammar.workers, or grammar.rules/symbols/batches/stalls.<stream> \
                     with <stream> one of {})",
                    GRAMMAR_STREAMS.join("/")
                ));
            }
        }
    }
    if let Some(json::Value::Object(spans)) = fields.get("spans") {
        for key in spans.keys() {
            if key.starts_with("grammar.") && !streamed(key, "grammar.worker_busy_ns") {
                problems.push(format!(
                    "span \"{key}\" is not a known grammar.* family \
                     (grammar.worker_busy_ns.<stream> with <stream> one of {})",
                    GRAMMAR_STREAMS.join("/")
                ));
            }
        }
    }
}

/// The transform families a layout plan can contain — the `<subject>`
/// part of an `opt.<subject>.<metric>` ratio is `baseline`, `planned`,
/// or a transform label built from one of these (e.g. `colocate`,
/// `pool-group.g3`, `hot-cold-split.g1.2`).
const OPT_TRANSFORM_FAMILIES: &[&str] =
    &["field-reorder", "colocate", "pool-group", "hot-cold-split"];

/// The per-replay measurements `orprof-cli optimize` emits.
const OPT_METRICS: &[&str] = &["l1_miss_rate", "l2_miss_rate", "l1_delta"];

/// Supplemental check: `opt.*` ratios are the optimize pipeline's
/// stable vocabulary (`opt.baseline.l1_miss_rate`,
/// `opt.planned.l1_delta`, `opt.<transform-label>.l1_delta`, …). A
/// renamed transform family or measurement would silently detach the
/// layout-gains dashboards, so unknown shapes fail validation.
fn check_opt_metric_names(
    fields: &std::collections::BTreeMap<String, json::Value>,
    problems: &mut Vec<String>,
) {
    let Some(json::Value::Object(ratios)) = fields.get("ratios") else {
        return;
    };
    for key in ratios.keys() {
        let Some(rest) = key.strip_prefix("opt.") else {
            continue;
        };
        let known = rest.rsplit_once('.').is_some_and(|(subject, metric)| {
            let subject_known = subject == "baseline"
                || subject == "planned"
                || OPT_TRANSFORM_FAMILIES
                    .iter()
                    .any(|f| subject == *f || subject.starts_with(&format!("{f}.")));
            subject_known && OPT_METRICS.contains(&metric)
        });
        if !known {
            problems.push(format!(
                "ratio \"{key}\" is not a known opt.* metric \
                 (opt.<baseline|planned|transform-label>.<{}>, with transform labels \
                 built from {})",
                OPT_METRICS.join("|"),
                OPT_TRANSFORM_FAMILIES.join("/")
            ));
        }
    }
}

/// Matches one schema type spec (`number`, `string?`, `number=1`,
/// `object<number>`, `array<object>`) against a value; `Err` carries a
/// description of what was found instead.
fn spec_matches(value: &json::Value, spec: &str) -> Result<(), String> {
    use json::Value;
    let (spec, nullable) = match spec.strip_suffix('?') {
        Some(base) => (base, true),
        None => (spec, false),
    };
    if nullable && *value == Value::Null {
        return Ok(());
    }
    if let Some((base, want)) = spec.split_once('=') {
        let Ok(want) = want.parse::<f64>() else {
            return Err(format!("unusable schema pin '{base}={want}'"));
        };
        return match value {
            Value::Number(n) if base == "number" && (*n - want).abs() < f64::EPSILON => Ok(()),
            other => Err(format!("{} {other:?}", other.type_name())),
        };
    }
    let (base, elem) = match spec.strip_suffix('>').and_then(|s| s.split_once('<')) {
        Some((base, elem)) => (base, Some(elem)),
        None => (spec, None),
    };
    let elements: Vec<&Value> = match (base, value) {
        ("number", Value::Number(_)) | ("string", Value::String(_)) | ("bool", Value::Bool(_)) => {
            return Ok(())
        }
        ("object", Value::Object(fields)) => fields.values().collect(),
        ("array", Value::Array(items)) => items.iter().collect(),
        _ => return Err(value.type_name().to_owned()),
    };
    if let Some(elem) = elem {
        for e in elements {
            spec_matches(e, elem).map_err(|found| format!("{base} containing {found}"))?;
        }
    }
    Ok(())
}

/// Walks `dir` collecting `.rs` paths relative to `root`, skipping
/// build output, VCS internals, and the seeded-violation fixtures that
/// exist precisely to fail these rules.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
