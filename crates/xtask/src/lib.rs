//! The `cargo xtask analyze` static-verification pass.
//!
//! Four repo-specific invariants that `rustc`/`clippy` cannot express,
//! checked at token level (see [`lexer`]) so they hold across
//! formatting and never match inside strings or comments:
//!
//! * **no-panic** — decode paths (`crates/format/src/**`, every
//!   `crates/*/src/io.rs`, `crates/core/src/session.rs`) must not
//!   `unwrap`/`expect`/`panic!`/index: malformed input routes through
//!   `FormatError`, never a panic. Provably-infallible sites carry
//!   `// analyze: allow(panic): <reason>`.
//! * **le-bytes** — byte-order framing (`from_le_bytes` & friends)
//!   belongs in `orp-format`'s codecs; everything else reads/writes
//!   through `read_u32_le`/`read_u64_le`/varints.
//! * **chunk-match** — a `match` over [`ChunkTag`]s needs an explicit,
//!   *non-empty* catch-all: the tag space is open (the KNOWN registry
//!   grows), and silently dropping unknown chunks hides corruption.
//! * **chunk-registry** — every `ChunkTag` const declared in
//!   `chunk.rs` must be in the `KNOWN` registry.
//! * **forbid-unsafe** — every crate root declares
//!   `#![forbid(unsafe_code)]` unless `analyze.allow` exempts it with a
//!   reason.
//!
//! Inline exemptions: `// analyze: allow(<rule>): <reason>` on the
//! violating line or the line above. File-level exemptions live in
//! `analyze.allow` at the repo root (`<rule> <path> <reason>` per
//! line). Both require a non-empty reason; a bare marker is itself a
//! violation.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analyzed root.
    pub file: PathBuf,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule name (`no-panic`, `le-bytes`, …).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Runs every analyze rule over the workspace rooted at `root`.
/// Returns the violations sorted by file then line.
///
/// # Panics
///
/// Panics when `root` cannot be walked (not a readable directory).
#[must_use]
pub fn analyze(root: &Path) -> Vec<Diagnostic> {
    let allowlist = rules::Allowlist::load(root);
    let mut diags = allowlist.problems.clone();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    for rel in &files {
        // Unreadable/non-UTF-8 files are not source we lint.
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        diags.extend(rules::check_file(rel, &src, &allowlist));
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Walks `dir` collecting `.rs` paths relative to `root`, skipping
/// build output, VCS internals, and the seeded-violation fixtures that
/// exist precisely to fail these rules.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
