//! The `cargo xtask analyze` static-verification engine.
//!
//! Three stages (all self-contained — no external parser):
//!
//! 1. **Facts** ([`facts`], [`syntax`], [`lexer`]) — each file is
//!    lexed once and a lightweight syntax pass extracts items, fn
//!    signatures, calls, string literals, and `ChunkTag`/`ProfileKind`
//!    path references into a per-file facts database shared by every
//!    rule.
//! 2. **Linking** ([`callgraph`], [`facts::WorkspaceFacts`]) — an
//!    approximate name-based call graph plus the chunk-tag registry
//!    and the metric-key vocabulary ([`vocab`]) tie the files
//!    together.
//! 3. **Rules** ([`rules`]) — the eight per-file token rules
//!    re-expressed against the facts, plus five cross-file rules:
//!
//! Per-file rules:
//!
//! * **no-panic** — decode paths (`crates/format/src/**`, every
//!   `crates/*/src/io.rs`, `crates/core/src/session.rs`) must not
//!   `unwrap`/`expect`/`panic!`/index: malformed input routes through
//!   `FormatError`, never a panic. Provably-infallible sites carry
//!   `// analyze: allow(panic): <reason>`.
//! * **le-bytes** — byte-order framing (`from_le_bytes` & friends)
//!   belongs in `orp-format`'s codecs; everything else reads/writes
//!   through `read_u32_le`/`read_u64_le`/varints.
//! * **chunk-match** — a `match` over [`ChunkTag`]s needs an explicit,
//!   *non-empty* catch-all: the tag space is open (the KNOWN registry
//!   grows), and silently dropping unknown chunks hides corruption.
//! * **chunk-registry** — every `ChunkTag` const declared in
//!   `chunk.rs` must be in the `KNOWN` registry.
//! * **forbid-unsafe** — every crate root declares
//!   `#![forbid(unsafe_code)]` unless `analyze.allow` exempts it with a
//!   reason.
//! * **no-metrics-in-decode** — `orp-format` stays observability-free:
//!   no recorder ident (`orp_obs`, `Recorder`, `StatsRecorder`,
//!   `NoopRecorder`) may appear in its decode paths. I/O accounting is
//!   plain integers (`IoStats`); publication happens in the caller.
//! * **atomic-artifact-writes** — artifact producers must not
//!   `File::create`/`fs::write` outputs directly: a crash mid-write
//!   leaves a torn file. Writes go through `orp_format::AtomicFile` /
//!   `write_bytes_atomic` (the primitive's own crate and this tooling
//!   crate are exempt).
//! * **no-siphash-in-hot-paths** — the grammar crates
//!   (`crates/sequitur/src/**`, `crates/whomp/src/**`) must not build
//!   `HashMap`/`HashSet` with the default SipHash hasher
//!   (`::new`/`::with_capacity`): hot-path maps annotate
//!   `FxBuildHasher` and construct through `::default()`.
//!
//! Cross-file rules:
//!
//! * **panic-reachability** — no fn transitively reachable from a
//!   decode entry point (a `pub fn read_*`/`decode_*`/… in a decode
//!   file) may `unwrap`/`expect`/`panic!`; findings carry the
//!   reconstructed call path.
//! * **untrusted-length** — a length decoded by
//!   `read_varint`/`read_u32_le`/… must pass a bound (`.min(…)`,
//!   `.clamp(…)`, or a comparison against a trusted value) before it
//!   sizes a `with_capacity`/`reserve`/`vec![…; n]` allocation.
//! * **metric-key** — every literal recorder key and every
//!   `opt.*`/`grammar.*`/`io.*` label must be enumerated in the
//!   `schemas/run_report.schema` vocabulary, and every vocabulary
//!   entry must have a witnessing label in code.
//! * **codec-pair** — every `ChunkTag` with an encoder must have a
//!   decoder, an inspect arm under `src/bin/`, and a corruption test.
//! * **error-type** — public decode-path fns return `Result` with a
//!   `FormatError`-family error (or `io::Error` at the I/O boundary),
//!   never `Option` and never nothing.
//!
//! Inline exemptions: `// analyze: allow(<rule>): <reason>` on the
//! violating line or the line above. File-level exemptions live in
//! `analyze.allow` at the repo root (`<rule> <path> <reason>` per
//! line). Both require a non-empty reason; a bare marker is itself a
//! violation. Accepted historical findings live in `analyze.baseline`
//! ([`baseline`]); machine-readable output (`--format json|sarif`) is
//! in [`output`].

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod facts;
pub mod json;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod syntax;
pub mod vocab;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the analyzed root.
    pub file: PathBuf,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule name (`no-panic`, `le-bytes`, …).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// `analyze` could not run at all (as opposed to running and finding
/// violations): the root is not a walkable directory.
#[derive(Debug)]
pub struct AnalyzeError {
    pub root: PathBuf,
    pub source: std::io::Error,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analyze: cannot walk '{}': {}",
            self.root.display(),
            self.source
        )
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Runs every analyze rule over the workspace rooted at `root`.
/// Returns the violations sorted by file then line.
///
/// # Errors
///
/// Returns [`AnalyzeError`] when `root` cannot be walked (not a
/// readable directory). Unreadable *files* under a walkable root are
/// skipped, as before.
pub fn analyze(root: &Path) -> Result<Vec<Diagnostic>, AnalyzeError> {
    std::fs::read_dir(root).map_err(|source| AnalyzeError {
        root: root.to_path_buf(),
        source,
    })?;
    let allowlist = rules::Allowlist::load(root);
    let mut diags = allowlist.problems.clone();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let mut all_facts = Vec::new();
    for rel in &files {
        // Unreadable/non-UTF-8 files are not source we lint.
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        all_facts.push(facts::FileFacts::new(rel, &src));
    }
    let ws = facts::WorkspaceFacts::build(all_facts);
    for f in &ws.files {
        diags.extend(rules::check_file_facts(f, &allowlist));
    }
    let schema_rel = Path::new("schemas/run_report.schema");
    let vocab = match std::fs::read_to_string(root.join(schema_rel)) {
        Ok(text) => {
            let (vocab, problems) = vocab::Vocabulary::parse(&text);
            for (line, message) in problems {
                diags.push(Diagnostic {
                    file: schema_rel.to_path_buf(),
                    line,
                    rule: "metric-key",
                    message: format!("vocabulary line: {message}"),
                });
            }
            vocab
        }
        // No schema at this root (fixture trees): the metric-key rule
        // idles on an empty vocabulary.
        Err(_) => vocab::Vocabulary::default(),
    };
    diags.extend(rules::check_workspace(&ws, &allowlist, &vocab, schema_rel));
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

/// Validates a `RunReport` JSON document against the line-based schema
/// at `schema` (see `schemas/run_report.schema`): the document must
/// parse, be an object, carry every listed field with the listed
/// type, and use only metric keys enumerated in the schema's
/// `set`/`key` vocabulary ([`vocab`]). Returns a one-line summary on
/// success, the full problem list on failure.
///
/// # Errors
///
/// Returns every problem found — unreadable inputs, parse failures,
/// malformed schema lines, missing fields, type mismatches, and
/// unknown metric keys.
pub fn validate_report(report: &Path, schema: &Path) -> Result<String, Vec<String>> {
    let schema_text = match std::fs::read_to_string(schema) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("{}: {e}", schema.display())]),
    };
    let report_text = match std::fs::read_to_string(report) {
        Ok(text) => text,
        Err(e) => return Err(vec![format!("{}: {e}", report.display())]),
    };
    let value = match json::parse(&report_text) {
        Ok(value) => value,
        Err(e) => return Err(vec![format!("{}: not valid JSON: {e}", report.display())]),
    };
    let Some(fields) = value.as_object() else {
        return Err(vec![format!(
            "{}: top level must be an object, found {}",
            report.display(),
            value.type_name()
        )]);
    };

    let mut problems = Vec::new();
    let (vocabulary, vocab_problems) = vocab::Vocabulary::parse(&schema_text);
    for (line, message) in vocab_problems {
        problems.push(format!("{}:{line}: {message}", schema.display()));
    }
    let mut checked = 0usize;
    for (idx, line) in schema_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.clone().next();
        // `set`/`key` lines are the metric vocabulary, parsed above.
        if matches!(first, Some("set" | "key")) {
            continue;
        }
        let (Some(field), Some(spec), None) = (parts.next(), parts.next(), parts.next()) else {
            problems.push(format!(
                "{}:{}: schema line must be '<field> <type>'",
                schema.display(),
                idx + 1
            ));
            continue;
        };
        checked += 1;
        match fields.get(field) {
            None => problems.push(format!("missing required field \"{field}\"")),
            Some(value) => {
                if let Err(found) = spec_matches(value, spec) {
                    problems.push(format!("field \"{field}\" must be {spec}, found {found}"));
                }
            }
        }
    }
    check_metric_vocabulary(fields, &vocabulary, &mut problems);
    if problems.is_empty() {
        Ok(format!(
            "validate-report: {} ok ({checked} required fields present and typed)",
            report.display()
        ))
    } else {
        Err(problems)
    }
}

/// Checks every `counters`/`ratios`/`spans` key against the schema's
/// `key` vocabulary: metric names feed dashboards by exact shape, so a
/// typo'd stream or a renamed transform family must fail validation,
/// not silently vanish. Skipped entirely when the schema declares no
/// vocabulary.
fn check_metric_vocabulary(
    fields: &std::collections::BTreeMap<String, json::Value>,
    vocabulary: &vocab::Vocabulary,
    problems: &mut Vec<String>,
) {
    if vocabulary.keys.is_empty() {
        return;
    }
    let surfaces: [(&str, vocab::KeyKind, &str); 3] = [
        ("counters", vocab::KeyKind::Counter, "counter"),
        ("ratios", vocab::KeyKind::Ratio, "ratio"),
        ("spans", vocab::KeyKind::Span, "span"),
    ];
    for (field, kind, noun) in surfaces {
        let Some(json::Value::Object(entries)) = fields.get(field) else {
            continue;
        };
        for key in entries.keys() {
            if !vocabulary.matches(kind, key) {
                problems.push(format!(
                    "{noun} \"{key}\" is not in the schema vocabulary — no `key {noun}` \
                     pattern in the schema matches it (see the set/key lines in \
                     schemas/run_report.schema)"
                ));
            }
        }
    }
}

/// Matches one schema type spec (`number`, `string?`, `number=1`,
/// `object<number>`, `array<object>`) against a value; `Err` carries a
/// description of what was found instead.
fn spec_matches(value: &json::Value, spec: &str) -> Result<(), String> {
    use json::Value;
    let (spec, nullable) = match spec.strip_suffix('?') {
        Some(base) => (base, true),
        None => (spec, false),
    };
    if nullable && *value == Value::Null {
        return Ok(());
    }
    if let Some((base, want)) = spec.split_once('=') {
        let Ok(want) = want.parse::<f64>() else {
            return Err(format!("unusable schema pin '{base}={want}'"));
        };
        return match value {
            Value::Number(n) if base == "number" && (*n - want).abs() < f64::EPSILON => Ok(()),
            other => Err(format!("{} {other:?}", other.type_name())),
        };
    }
    let (base, elem) = match spec.strip_suffix('>').and_then(|s| s.split_once('<')) {
        Some((base, elem)) => (base, Some(elem)),
        None => (spec, None),
    };
    let elements: Vec<&Value> = match (base, value) {
        ("number", Value::Number(_)) | ("string", Value::String(_)) | ("bool", Value::Bool(_)) => {
            return Ok(())
        }
        ("object", Value::Object(fields)) => fields.values().collect(),
        ("array", Value::Array(items)) => items.iter().collect(),
        _ => return Err(value.type_name().to_owned()),
    };
    if let Some(elem) = elem {
        for e in elements {
            spec_matches(e, elem).map_err(|found| format!("{base} containing {found}"))?;
        }
    }
    Ok(())
}

/// Walks `dir` collecting `.rs` paths relative to `root`, skipping
/// build output, VCS internals, and the seeded-violation fixtures that
/// exist precisely to fail these rules.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
