//! The committed findings baseline (`analyze.baseline` at the repo
//! root): CI fails only on *new* findings, so a rule can be introduced
//! (or tightened) before every historical violation is paid down.
//!
//! One line per accepted finding, tab-separated:
//!
//! ```text
//! <rule>\t<file>\t<message>
//! ```
//!
//! Line numbers are deliberately *not* part of the key — unrelated
//! edits move code around, and a baseline that churns on every
//! reflow teaches people to regenerate it blindly. `#` comments and
//! blank lines are ignored.

use std::collections::HashSet;

use crate::Diagnostic;

/// The baseline key for one diagnostic.
fn key(d: &Diagnostic) -> String {
    format!(
        "{}\t{}\t{}",
        d.rule,
        d.file.display(),
        d.message.replace(['\t', '\n'], " ")
    )
}

/// Renders a findings list as baseline file contents (sorted,
/// deduplicated, with a header comment).
#[must_use]
pub fn render(diags: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diags.iter().map(key).collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# Accepted analyze findings: <rule>\\t<file>\\t<message> per line.\n\
         # Regenerate with `cargo xtask analyze --write-baseline`; review the diff.\n",
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses baseline file contents into the accepted-findings set.
#[must_use]
pub fn parse(text: &str) -> HashSet<String> {
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Splits findings into (new, baselined) against the accepted set.
#[must_use]
pub fn split<'a>(
    diags: &'a [Diagnostic],
    accepted: &HashSet<String>,
) -> (Vec<&'a Diagnostic>, Vec<&'a Diagnostic>) {
    diags.iter().partition(|d| !accepted.contains(&key(d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(rule: &'static str, file: &str, message: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line: 3,
            rule,
            message: message.to_owned(),
        }
    }

    #[test]
    fn round_trip_suppresses_known_findings_regardless_of_line() {
        let old = [diag("no-panic", "a.rs", "unwrap() somewhere")];
        let accepted = parse(&render(&old));
        let mut moved = old[0].clone();
        moved.line = 99;
        let fresh = diag("le-bytes", "b.rs", "from_le_bytes");
        let diags = [moved, fresh];
        let (new, known) = split(&diags, &accepted);
        assert_eq!(known.len(), 1, "line moves must stay baselined");
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "le-bytes");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let accepted = parse("# header\n\nno-panic\ta.rs\tmsg\n");
        assert_eq!(accepted.len(), 1);
    }
}
