//! A minimal JSON reader for `cargo xtask validate-report`.
//!
//! The workspace vendors no serialization crates, so report validation
//! parses with this self-contained recursive-descent reader. It
//! accepts exactly RFC 8259 documents (objects, arrays, strings,
//! numbers, booleans, null) and keeps numbers as `f64` — the report
//! schema only needs presence and type checks, not full fidelity.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The schema-facing type name (`object`, `array`, `string`,
    /// `number`, `bool`, `null`).
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object's fields, when this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing content rejected).
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if fields.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates only matter for non-BMP text;
                            // report keys are ASCII. Map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to the char boundary for multi-byte
                    // UTF-8 (input is a &str, so continuation bytes
                    // are well-formed).
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = &self.bytes[start..self.pos];
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\n"}"#)
            .expect("valid document");
        let obj = v.as_object().expect("object");
        assert_eq!(
            obj["a"],
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Number(-3.0),
            ])
        );
        assert_eq!(obj["e"], Value::String("x\n".to_owned()));
        assert_eq!(
            obj["b"].as_object().expect("object")["c"],
            Value::Bool(true)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"\\q\"",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert!(
            parse(r#"{"a": 1, "a": 2}"#).is_err(),
            "duplicate keys rejected"
        );
    }

    #[test]
    fn real_run_report_shape_parses() {
        let doc = concat!(
            "{\n",
            "  \"schema_version\": 1,\n",
            "  \"command\": \"run\",\n",
            "  \"workload\": \"micro.matrix\",\n",
            "  \"profiler\": null,\n",
            "  \"counters\": {\n    \"omc.memo_hits\": 69629\n  },\n",
            "  \"ratios\": {\n    \"omc.memo_hit_rate\": 0.999957\n  },\n",
            "  \"shard_counts\": [\n    {\"shard\": 0, \"tuples\": 5, \"batches\": 1, \"stalls\": 0}\n  ]\n",
            "}\n"
        );
        let v = parse(doc).expect("report parses");
        let obj = v.as_object().expect("object");
        assert_eq!(obj["schema_version"], Value::Number(1.0));
        assert_eq!(obj["profiler"], Value::Null);
        assert_eq!(obj["shard_counts"].type_name(), "array");
    }
}
