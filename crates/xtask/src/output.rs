//! Machine-readable output for `cargo xtask analyze`: a compact JSON
//! findings document and SARIF 2.1.0 (the format CI code-scanning
//! surfaces ingest). Both are emitted with the crate's own writer —
//! the workspace vendors no serialization crates.

use crate::Diagnostic;

/// Escapes a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// SARIF wants forward-slash artifact URIs regardless of host OS.
fn uri(d: &Diagnostic) -> String {
    d.file
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the findings as a stable JSON document:
/// `{"version":1,"findings":[{file,line,rule,message}…]}`.
#[must_use]
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&uri(d)),
            d.line,
            escape(d.rule),
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the findings as a minimal SARIF 2.1.0 log: one run, one
/// driver (`xtask-analyze`), one result per finding, rule metadata for
/// every rule that fired.
#[must_use]
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut rule_ids: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules = rule_ids
        .iter()
        .map(|id| format!("{{\"id\": \"{}\"}}", escape(id)))
        .collect::<Vec<_>>()
        .join(", ");
    let mut results = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]\n        }}",
            escape(d.rule),
            escape(&d.message),
            escape(&uri(d)),
            d.line.max(1)
        ));
    }
    if !diags.is_empty() {
        results.push_str("\n      ");
    }
    format!(
        "{{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\"driver\": {{\"name\": \"xtask-analyze\", \
         \"informationUri\": \"https://example.invalid/xtask-analyze\", \"rules\": [{rules}]}}}},\n      \
         \"results\": [{results}]\n    }}\n  ]\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag() -> Diagnostic {
        Diagnostic {
            file: PathBuf::from("crates/format/src/io.rs"),
            line: 7,
            rule: "no-panic",
            message: "a \"quoted\" message\nwith a newline".to_owned(),
        }
    }

    #[test]
    fn json_output_round_trips_through_the_crate_parser() {
        let doc = to_json(&[diag()]);
        let value = crate::json::parse(&doc).expect("valid JSON");
        let findings = value
            .as_object()
            .and_then(|o| o.get("findings"))
            .expect("findings array");
        let crate::json::Value::Array(items) = findings else {
            panic!("findings must be an array");
        };
        assert_eq!(items.len(), 1);
        let f = items[0].as_object().expect("finding object");
        assert_eq!(
            f.get("file"),
            Some(&crate::json::Value::String(
                "crates/format/src/io.rs".to_owned()
            ))
        );
        assert_eq!(f.get("line"), Some(&crate::json::Value::Number(7.0)));
    }

    #[test]
    fn sarif_output_parses_and_carries_the_result() {
        let doc = to_sarif(&[diag()]);
        let value = crate::json::parse(&doc).expect("valid SARIF JSON");
        let obj = value.as_object().expect("object");
        assert_eq!(
            obj.get("version"),
            Some(&crate::json::Value::String("2.1.0".to_owned()))
        );
        let crate::json::Value::Array(runs) = obj.get("runs").expect("runs") else {
            panic!("runs must be an array");
        };
        let run = runs[0].as_object().expect("run object");
        let crate::json::Value::Array(results) = run.get("results").expect("results") else {
            panic!("results must be an array");
        };
        assert_eq!(results.len(), 1);
        let result = results[0].as_object().expect("result object");
        assert_eq!(
            result.get("ruleId"),
            Some(&crate::json::Value::String("no-panic".to_owned()))
        );
    }

    #[test]
    fn empty_findings_are_valid_documents() {
        assert!(crate::json::parse(&to_json(&[])).is_ok());
        assert!(crate::json::parse(&to_sarif(&[])).is_ok());
    }
}
