//! A token-level Rust lexer sufficient for the analyze rules.
//!
//! Not a parser: it splits source into identifiers, punctuation,
//! literals and comments with line numbers, getting the hard parts
//! right — nested block comments, (raw/byte) strings, char literals vs
//! lifetimes — so rules never match inside text that isn't code. Rules
//! then work on short token sequences (`.` `unwrap` `(`), which is
//! robust to formatting without needing `syn`.

/// What a token is; rules mostly dispatch on `Ident` vs `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// String/char/number literal (payload not interpreted).
    Literal,
    /// Line or block comment, text included (allow-markers live here).
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    /// Source text. For comments, includes the delimiters.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Lexes `src` into tokens. Unterminated constructs (possible in
/// fixture files) terminate the affected token at end of input rather
/// than failing.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c.is_alphanumeric() || c == '_' => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(Kind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Kind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Kind::Comment, text, line);
    }

    /// A `"…"` string body (the caller has classified it); escapes keep
    /// `\"` from terminating early. The payload is retained (quoted) so
    /// the syntax pass can index string literals; escape sequences are
    /// kept verbatim — rules that read payloads only deal in
    /// identifier-like metric keys where escapes never appear.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::from("\"");
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        text.push('"');
        self.push(Kind::Literal, text, line);
    }

    /// Distinguishes `'a'` (char literal) from `'a` (lifetime): a
    /// lifetime is a quote + identifier with no closing quote.
    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if c != '\'' => self.peek(2) == Some('\''),
            _ => true, // `''` or EOF: treat as (malformed) char
        };
        if is_char {
            self.bump(); // quote
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(Kind::Literal, String::from("'…'"), line);
        } else {
            self.bump(); // quote
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Kind::Literal, text, line);
        }
    }

    /// Numbers, loosely: digits/alphanumerics/underscores, plus a `.`
    /// only when followed by a digit (so `0..len` stays three tokens).
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let continues = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Kind::Literal, text, line);
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: `b"…"`, `r"…"`, `br#"…"#`, `c"…"`.
        let next = self.peek(0);
        match (text.as_str(), next) {
            ("r" | "br" | "cr", Some('"' | '#')) => {
                // Re-lex as a raw string: rewind conceptually by
                // treating the prefix as consumed and the raw body next.
                self.raw_string_after_prefix(line);
            }
            ("b" | "c", Some('"')) => {
                self.string(line);
                // Merge: the literal token already pushed covers it.
            }
            _ => self.push(Kind::Ident, text, line),
        }
    }

    /// Raw-string body when the `r`/`br` prefix was already consumed by
    /// ident scanning (`self.pos` is at `#` or `"`).
    fn raw_string_after_prefix(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Kind::Literal, String::from("r\"…\""), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != Kind::Comment)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let toks = texts(r#"let s = "a.unwrap()"; // .unwrap() here too"#);
        assert!(!toks.iter().any(|t| t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = texts("let s = r#\"quote \" inside\"#; x.unwrap()");
        assert!(toks.iter().any(|t| t == "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) { x.expect(\"msg\") }");
        assert!(toks.iter().any(|t| t == "'a"));
        assert!(toks.iter().any(|t| t == "expect"));
    }

    #[test]
    fn range_expressions_do_not_absorb_dots() {
        let toks = texts("&buf[0..4]");
        assert_eq!(toks, vec!["&", "buf", "[", "0", ".", ".", "4", "]"]);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = texts("/* outer /* inner */ still comment */ ident");
        assert_eq!(toks, vec!["ident"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("let a = \"multi\nline\";\nb");
        let b = toks.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 3);
    }
}
