//! The lightweight syntax pass: token stream → per-file item facts.
//!
//! Not a full parser — a single forward scan over the non-comment
//! token stream that recovers exactly the shapes the rules need:
//! function items (name, owning `impl` type, visibility, return-type
//! tokens, body extent), call expressions (callee name, `::` qualifier,
//! method/macro flavor, argument extent), and string literals with
//! their payloads. Everything positional is an index into the file's
//! significant-token list (`sig`), so rules can re-inspect surrounding
//! tokens cheaply.

use crate::lexer::{Kind, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// The `impl` block's self type (the `for` type on trait impls),
    /// when the function is an associated item.
    pub owner: Option<String>,
    /// `pub` in any spelling (`pub`, `pub(crate)`, …).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Sig-index range of the body `{ … }` (inclusive braces); `None`
    /// for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Return-type tokens between `->` and the body/`;`/`where`.
    pub ret: Vec<String>,
}

/// One call expression (`name(…)`, `q::name(…)`, `.name(…)`,
/// `name!(…)`).
#[derive(Debug, Clone)]
pub struct CallInfo {
    pub name: String,
    /// The path segment immediately before `::name(` — `Grammar` in
    /// `Grammar::read_from(…)`.
    pub qualifier: Option<String>,
    /// Preceded by `.` — a method call on some receiver.
    pub is_method: bool,
    pub is_macro: bool,
    pub line: u32,
    /// Index into [`FileSyntax::fns`] of the innermost enclosing
    /// function, when the call is inside one.
    pub enclosing: Option<usize>,
    /// Sig-index range of the argument tokens, exclusive of the
    /// delimiters.
    pub args: (usize, usize),
}

/// One string literal (plain/byte strings carry their payload; raw
/// strings are opaque).
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Payload without the surrounding quotes.
    pub value: String,
    pub line: u32,
    pub sig_index: usize,
    pub enclosing: Option<usize>,
}

/// A reference to a cross-file registry item: `ChunkTag::NAME` or
/// `ProfileKind::Variant`.
#[derive(Debug, Clone)]
pub struct PathRef {
    /// `ChunkTag` or `ProfileKind`.
    pub qualifier: String,
    pub name: String,
    pub line: u32,
    pub enclosing: Option<usize>,
}

/// Everything the syntax pass recovers from one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    pub fns: Vec<FnInfo>,
    pub calls: Vec<CallInfo>,
    pub strings: Vec<StrLit>,
    pub path_refs: Vec<PathRef>,
}

/// Rust keywords that can precede `(`/`[` without forming a call.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "mut", "ref", "in", "as", "impl",
    "dyn", "where", "move", "box", "break", "continue", "else", "use", "pub", "crate", "super",
    "self", "Self", "mod", "struct", "enum", "union", "trait", "type", "const", "static", "unsafe",
    "extern", "async", "await",
];

/// Runs the syntax pass over the significant tokens of a file.
/// `tokens` is the full lex; `sig` indexes its non-comment tokens.
#[must_use]
pub fn parse(tokens: &[Token], sig: &[usize]) -> FileSyntax {
    let t = |i: usize| -> &Token { &tokens[sig[i]] };
    let text = |i: usize| -> &str { &tokens[sig[i]].text };
    let n = sig.len();
    let mut out = FileSyntax::default();

    // Pass 1: function items. Tracks an impl-owner stack keyed on brace
    // depth so associated fns know their self type.
    let mut depth = 0i32;
    let mut impl_stack: Vec<(i32, Option<String>)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        match text(i) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                    impl_stack.pop();
                }
            }
            "impl" => {
                // impl [<…>] Type [<…>] [for Type2 [<…>]] {
                let (owner, open) = impl_owner(tokens, sig, i);
                if let Some(open) = open {
                    // Owner becomes active at the block's inner depth.
                    impl_stack.push((depth + 1, owner));
                    i = open; // the `{` is re-seen next iteration
                    continue;
                }
            }
            "fn" => {
                if let Some(info) = fn_item(tokens, sig, i, &impl_stack) {
                    // Skip ahead past the signature so nested closures
                    // don't re-trigger; the body braces still pass
                    // through the depth tracking above.
                    out.fns.push(info);
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Pass 2: calls, string literals, and registry path refs, with
    // enclosing-fn attribution against the pass-1 body ranges.
    let enclosing = |idx: usize| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (f, info) in out.fns.iter().enumerate() {
            if let Some((lo, hi)) = info.body {
                if lo <= idx && idx <= hi {
                    // Innermost wins: later fns with containing bodies
                    // start later.
                    let better =
                        best.is_none_or(|b| out.fns[b].body.is_some_and(|(blo, _)| blo <= lo));
                    if better {
                        best = Some(f);
                    }
                }
            }
        }
        best
    };
    for i in 0..n {
        let tok = t(i);
        if tok.kind == Kind::Literal && tok.text.starts_with('"') && tok.text.len() >= 2 {
            out.strings.push(StrLit {
                value: tok.text[1..tok.text.len() - 1].to_owned(),
                line: tok.line,
                sig_index: i,
                enclosing: enclosing(i),
            });
            continue;
        }
        if tok.kind != Kind::Ident || KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        // `Qualifier::Name` registry references.
        if matches!(tok.text.as_str(), "ChunkTag" | "ProfileKind")
            && i + 3 < n
            && text(i + 1) == ":"
            && text(i + 2) == ":"
            && tokens[sig[i + 3]].kind == Kind::Ident
        {
            out.path_refs.push(PathRef {
                qualifier: tok.text.clone(),
                name: text(i + 3).to_owned(),
                line: tok.line,
                enclosing: enclosing(i),
            });
        }
        // Calls: `name (`, `name ! (`/`[`.
        let (is_macro, open_at) = if i + 1 < n && text(i + 1) == "(" {
            (false, i + 1)
        } else if i + 2 < n && text(i + 1) == "!" && matches!(text(i + 2), "(" | "[") {
            (true, i + 2)
        } else {
            continue;
        };
        // `fn name(` is a definition, not a call.
        if i > 0 && text(i - 1) == "fn" {
            continue;
        }
        let close = matching_close(tokens, sig, open_at);
        let is_method = i > 0 && text(i - 1) == ".";
        let qualifier = if !is_method
            && i >= 3
            && text(i - 1) == ":"
            && text(i - 2) == ":"
            && tokens[sig[i - 3]].kind == Kind::Ident
        {
            Some(text(i - 3).to_owned())
        } else {
            None
        };
        out.calls.push(CallInfo {
            name: tok.text.clone(),
            qualifier,
            is_method,
            is_macro,
            line: tok.line,
            enclosing: enclosing(i),
            args: (open_at + 1, close),
        });
    }
    out
}

/// Finds the sig index of the delimiter matching the one at `open`
/// (exclusive upper bound when the file is truncated).
fn matching_close(tokens: &[Token], sig: &[usize], open: usize) -> usize {
    let close_of = |s: &str| match s {
        "(" => ")",
        "[" => "]",
        _ => "}",
    };
    let open_text = tokens[sig[open]].text.clone();
    let want = close_of(&open_text);
    let mut depth = 0i32;
    for (j, &si) in sig.iter().enumerate().skip(open) {
        match tokens[si].text.as_str() {
            t if t == open_text => depth += 1,
            t if t == want => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    sig.len()
}

/// Parses the head of an `impl` block at sig index `i`; returns the
/// owner type name and the sig index of the opening `{`.
fn impl_owner(tokens: &[Token], sig: &[usize], i: usize) -> (Option<String>, Option<usize>) {
    let text = |j: usize| -> &str { &tokens[sig[j]].text };
    let n = sig.len();
    let mut j = i + 1;
    // Skip generic parameters on the impl itself.
    j = skip_generics(tokens, sig, j);
    let mut first_type: Option<String> = None;
    let mut for_type: Option<String> = None;
    let mut after_for = false;
    let mut angle = 0i32;
    while j < n {
        match text(j) {
            "{" if angle == 0 => {
                return (for_type.or(first_type), Some(j));
            }
            ";" if angle == 0 => return (None, None),
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => after_for = true,
            t if tokens[sig[j]].kind == Kind::Ident && angle == 0 => {
                // Path segments: remember the last ident before `{`,
                // so `crate::module::Type` resolves to `Type`.
                if after_for {
                    for_type = Some(t.to_owned());
                } else if first_type.is_none() || (j > 0 && text(j - 1) == ":") {
                    first_type = Some(t.to_owned());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// Skips a `<…>` group starting at `j`, if present.
fn skip_generics(tokens: &[Token], sig: &[usize], j: usize) -> usize {
    if j >= sig.len() || tokens[sig[j]].text != "<" {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < sig.len() {
        match tokens[sig[k]].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    sig.len()
}

/// Parses one `fn` item whose `fn` keyword sits at sig index `i`.
fn fn_item(
    tokens: &[Token],
    sig: &[usize],
    i: usize,
    impl_stack: &[(i32, Option<String>)],
) -> Option<FnInfo> {
    let text = |j: usize| -> &str { &tokens[sig[j]].text };
    let n = sig.len();
    let name_at = i + 1;
    if name_at >= n || tokens[sig[name_at]].kind != Kind::Ident {
        return None; // `fn(` pointer type, or truncated input
    }
    let name = text(name_at).to_owned();
    let line = tokens[sig[i]].line;

    // Visibility: walk back over qualifiers to a possible `pub`.
    let mut back = i;
    let mut is_pub = false;
    while back > 0 {
        back -= 1;
        match text(back) {
            "const" | "unsafe" | "async" | "extern" => {}
            t if t.starts_with('"') => {} // extern "C"
            ")" => {
                // `pub(crate)` / `pub(in …)` group: walk to its `(`.
                let mut depth = 1i32;
                while back > 0 && depth > 0 {
                    back -= 1;
                    match text(back) {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
            }
            "pub" => {
                is_pub = true;
                break;
            }
            _ => break,
        }
    }

    // Parameters: `(…)` after the name (generics may intervene).
    let mut j = skip_generics(tokens, sig, name_at + 1);
    if j >= n || text(j) != "(" {
        return None;
    }
    let params_close = matching_close(tokens, sig, j);
    j = params_close + 1;

    // Return type: tokens between `->` and `{`/`;`/`where`.
    let mut ret = Vec::new();
    if j + 1 < n && text(j) == "-" && text(j + 1) == ">" {
        j += 2;
        let mut angle = 0i32;
        while j < n {
            match text(j) {
                "{" | ";" if angle == 0 => break,
                "where" if angle == 0 => break,
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            ret.push(text(j).to_owned());
            j += 1;
        }
    }
    // Skip a where clause to the body.
    while j < n && !matches!(text(j), "{" | ";") {
        j += 1;
    }
    let body = if j < n && text(j) == "{" {
        Some((j, matching_close(tokens, sig, j)))
    } else {
        None
    };

    let owner = impl_stack.last().and_then(|(_, o)| o.clone());
    Some(FnInfo {
        name,
        owner,
        is_pub,
        line,
        body,
        ret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileSyntax {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != Kind::Comment)
            .map(|(i, _)| i)
            .collect();
        parse(&tokens, &sig)
    }

    #[test]
    fn fn_items_carry_owner_visibility_and_return() {
        let s = parse_src(
            "impl Foo {\n  pub fn read_from(r: &mut R) -> Result<Self, FormatError> { body() }\n  fn helper(&self) {}\n}\npub(crate) fn free() -> Option<u32> { None }\n",
        );
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].name, "read_from");
        assert_eq!(s.fns[0].owner.as_deref(), Some("Foo"));
        assert!(s.fns[0].is_pub);
        assert!(s.fns[0].ret.contains(&"FormatError".to_owned()));
        assert!(!s.fns[1].is_pub);
        assert_eq!(s.fns[1].owner.as_deref(), Some("Foo"));
        assert_eq!(s.fns[2].name, "free");
        assert!(s.fns[2].is_pub);
        assert_eq!(s.fns[2].owner, None);
        assert_eq!(s.fns[2].ret, vec!["Option", "<", "u32", ">"]);
    }

    #[test]
    fn trait_impls_use_the_for_type() {
        let s = parse_src("impl<T> Advisor for Tiering<T> { fn advise(&self) {} }");
        assert_eq!(s.fns[0].owner.as_deref(), Some("Tiering"));
    }

    #[test]
    fn calls_record_flavor_and_enclosing_fn() {
        let s = parse_src(
            "fn outer() {\n  let v = Grammar::read_from(r);\n  x.unwrap();\n  vec![0u8; n];\n  plain(1);\n}\n",
        );
        let by_name = |n: &str| s.calls.iter().find(|c| c.name == n).expect(n);
        let g = by_name("read_from");
        assert_eq!(g.qualifier.as_deref(), Some("Grammar"));
        assert!(!g.is_method);
        let u = by_name("unwrap");
        assert!(u.is_method);
        let v = by_name("vec");
        assert!(v.is_macro);
        let p = by_name("plain");
        assert_eq!(p.enclosing, Some(0));
        assert!(s.fns[0].body.is_some());
    }

    #[test]
    fn string_payloads_and_registry_refs_are_indexed() {
        let s = parse_src(
            "fn f(rec: &mut dyn Recorder) {\n  rec.counter(\"omc.memo_hits\", 1);\n  let t = ChunkTag::METRICS;\n}\n",
        );
        assert!(s.strings.iter().any(|l| l.value == "omc.memo_hits"));
        let r = &s.path_refs[0];
        assert_eq!(
            (r.qualifier.as_str(), r.name.as_str()),
            ("ChunkTag", "METRICS")
        );
        assert_eq!(r.enclosing, Some(0));
    }
}
