//! Stage 2: the cross-file linker — an approximate, name-based call
//! graph over the workspace facts.
//!
//! Resolution is deliberately conservative: a call edge is added only
//! when the callee can be pinned down with reasonable confidence —
//! same-file definitions win, `Type::method` paths match the defining
//! `impl` (or a file whose stem matches the qualifier), and bare or
//! method calls resolve only when the workspace has few definitions of
//! that name. Ambiguous names add *all* candidate edges (reachability
//! over-approximates; the panic rule's findings stay reviewable via
//! the reported call path), while names with many definitions are
//! dropped entirely to keep the approximation honest.

use std::collections::{HashMap, VecDeque};

use crate::facts::{is_first_party, is_test_tree, WorkspaceFacts};

/// A function node: `(file index, fn index within that file)`.
pub type FnId = (usize, usize);

/// Names so common that an unqualified call tells us nothing; edges
/// through them would connect the whole workspace.
const AMBIGUOUS_CAP: usize = 4;

pub struct CallGraph {
    /// Resolved call edges per function.
    pub edges: HashMap<FnId, Vec<FnId>>,
}

impl CallGraph {
    /// Links every in-scope file's calls against the workspace's
    /// function definitions.
    #[must_use]
    pub fn build(ws: &WorkspaceFacts) -> Self {
        // Index definitions by name. Only first-party, non-test-tree
        // files participate — vendored stand-ins and test helpers are
        // not decode-reachable surface.
        let mut defs_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if !is_first_party(&file.rel_s)
                || is_test_tree(&file.rel_s)
                || file.rel_s.starts_with("crates/xtask/")
            {
                continue;
            }
            for (gi, f) in file.syntax.fns.iter().enumerate() {
                if file.in_test_span(f.line) {
                    continue;
                }
                defs_by_name.entry(&f.name).or_default().push((fi, gi));
            }
        }

        let mut edges: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if !is_first_party(&file.rel_s)
                || is_test_tree(&file.rel_s)
                || file.rel_s.starts_with("crates/xtask/")
            {
                continue;
            }
            for call in &file.syntax.calls {
                let Some(enclosing) = call.enclosing else {
                    continue;
                };
                if call.is_macro || file.in_test_span(call.line) {
                    continue;
                }
                let Some(candidates) = defs_by_name.get(call.name.as_str()) else {
                    continue;
                };
                let caller: FnId = (fi, enclosing);
                let mut targets: Vec<FnId> = Vec::new();
                // 1. Same-file definition: the strongest signal.
                if let Some(&t) = candidates.iter().find(|(tfi, _)| *tfi == fi) {
                    targets.push(t);
                } else if let Some(q) = &call.qualifier {
                    // 2. `Q::name(…)`: match the defining impl's self
                    //    type, or a module file named like the
                    //    qualifier.
                    let ql = q.to_lowercase();
                    for &(tfi, tgi) in candidates {
                        let def_file = &ws.files[tfi];
                        let def = &def_file.syntax.fns[tgi];
                        let owner_matches = def.owner.as_deref() == Some(q.as_str());
                        let stem_matches = def_file
                            .rel
                            .file_stem()
                            .is_some_and(|s| s.to_string_lossy().to_lowercase() == ql);
                        if owner_matches || stem_matches {
                            targets.push((tfi, tgi));
                        }
                    }
                } else if candidates.len() <= AMBIGUOUS_CAP {
                    // 3. Bare/method call: accept only when the name is
                    //    rare enough that the candidates are plausible.
                    targets.extend(candidates.iter().copied());
                }
                if !targets.is_empty() {
                    edges.entry(caller).or_default().extend(targets);
                }
            }
        }
        for list in edges.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        CallGraph { edges }
    }

    /// BFS closure from `entries`; the returned map's values are the
    /// BFS parents, so a call path can be reconstructed for any
    /// reached function (entries map to themselves).
    #[must_use]
    pub fn reachable_from(&self, entries: &[FnId]) -> HashMap<FnId, FnId> {
        let mut parent: HashMap<FnId, FnId> = HashMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &e in entries {
            if parent.insert(e, e).is_none() {
                queue.push_back(e);
            }
        }
        while let Some(node) = queue.pop_front() {
            if let Some(nexts) = self.edges.get(&node) {
                for &n in nexts {
                    if parent.insert(n, node).is_none() {
                        queue.push_back(n);
                    }
                }
            }
        }
        parent
    }

    /// Reconstructs the entry → … → `node` call path as fn names.
    #[must_use]
    pub fn path_to(
        &self,
        ws: &WorkspaceFacts,
        parents: &HashMap<FnId, FnId>,
        node: FnId,
    ) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = node;
        for _ in 0..64 {
            let (fi, gi) = cur;
            path.push(ws.files[fi].syntax.fns[gi].name.clone());
            match parents.get(&cur) {
                Some(&p) if p != cur => cur = p,
                _ => break,
            }
        }
        path.reverse();
        path
    }
}
