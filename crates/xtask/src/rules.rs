//! The analyze rules (see the crate docs for the catalogue).

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Kind, Token};
use crate::Diagnostic;

/// Rule names a marker or allowlist line may reference.
const RULES: &[&str] = &[
    "no-panic",
    "le-bytes",
    "chunk-match",
    "chunk-registry",
    "forbid-unsafe",
    "no-metrics-in-decode",
    "atomic-artifact-writes",
    "no-siphash-in-hot-paths",
];

/// File-level exemptions from `analyze.allow` at the repo root.
///
/// Line format: `<rule> <path> <reason…>`, `#` comments and blank
/// lines ignored. A line with an unknown rule or no reason is itself
/// reported (in [`Allowlist::problems`]) — exemptions must stay
/// auditable.
pub struct Allowlist {
    entries: HashSet<(String, PathBuf)>,
    pub problems: Vec<Diagnostic>,
}

impl Allowlist {
    #[must_use]
    pub fn load(root: &Path) -> Self {
        let path = root.join("analyze.allow");
        let mut entries = HashSet::new();
        let mut problems = Vec::new();
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Allowlist { entries, problems };
        };
        for (idx, line) in text.lines().enumerate() {
            let line_no = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default();
            let file = parts.next().unwrap_or_default();
            let reason = parts.next().unwrap_or_default().trim();
            if !RULES.contains(&rule) {
                problems.push(Diagnostic {
                    file: PathBuf::from("analyze.allow"),
                    line: line_no,
                    rule: "allowlist",
                    message: format!("unknown rule '{rule}' (known: {})", RULES.join(", ")),
                });
            } else if file.is_empty() || reason.is_empty() {
                problems.push(Diagnostic {
                    file: PathBuf::from("analyze.allow"),
                    line: line_no,
                    rule: "allowlist",
                    message: "format is '<rule> <path> <reason>'; a reason is required".to_owned(),
                });
            } else {
                entries.insert((rule.to_owned(), PathBuf::from(file)));
            }
        }
        Allowlist { entries, problems }
    }

    fn exempts(&self, rule: &str, file: &Path) -> bool {
        self.entries
            .contains(&(rule.to_owned(), file.to_path_buf()))
    }
}

// ---- path classification -------------------------------------------------

fn rel_str(rel: &Path) -> String {
    // Normalize to forward slashes so classification is
    // platform-independent.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Decode-path files: all of `orp-format`, every crate's `io.rs`
/// (the FromBytes-style parsers), and the session layer (parses
/// checkpoint containers).
fn is_decode_path(rel: &str) -> bool {
    rel.starts_with("crates/format/src/")
        || rel == "crates/core/src/session.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/io.rs"))
}

/// First-party source (rules don't police vendored stand-ins beyond
/// `forbid-unsafe`).
fn is_first_party(rel: &str) -> bool {
    rel.starts_with("crates/") || rel.starts_with("src/")
}

/// Integration tests, benches and examples: exercised code, not
/// shipped decode paths.
fn is_test_tree(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

/// Grammar-construction hot paths: every push runs one to three digram
/// map operations, so these crates must not construct maps with the
/// default (SipHash) hasher.
fn is_grammar_hot_path(rel: &str) -> bool {
    rel.starts_with("crates/sequitur/src/") || rel.starts_with("crates/whomp/src/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: `lib.rs` /
/// `main.rs` / `bin/*.rs` of the facade crate, every workspace crate,
/// and the vendored stand-ins.
fn is_crate_root(rel: &str) -> bool {
    let bin = |prefix: &str| {
        rel.strip_prefix(prefix).is_some_and(|rest| {
            let mut parts = rest.splitn(4, '/');
            // "<crate>/src/bin/<file>.rs" under crates/ or third_party/
            matches!(
                (parts.next(), parts.next(), parts.next(), parts.next()),
                (Some(_), Some("src"), Some("bin"), Some(f)) if f.ends_with(".rs") && !f.contains('/')
            )
        })
    };
    let root_file = |prefix: &str| {
        rel == format!("{prefix}src/lib.rs") || rel == format!("{prefix}src/main.rs")
    };
    if root_file("") || (rel.starts_with("src/bin/") && rel.ends_with(".rs")) {
        return true;
    }
    for tree in ["crates/", "third_party/"] {
        if bin(tree) {
            return true;
        }
        if let Some(rest) = rel.strip_prefix(tree) {
            let mut parts = rest.splitn(3, '/');
            if let (Some(_), Some(tail), None) = (parts.next(), parts.next(), parts.next()) {
                let _ = tail;
            }
            let mut parts = rest.splitn(2, '/');
            if let (Some(_), Some(tail)) = (parts.next(), parts.next()) {
                if tail == "src/lib.rs" || tail == "src/main.rs" {
                    return true;
                }
            }
        }
    }
    false
}

// ---- per-file context ----------------------------------------------------

struct FileCx<'a> {
    rel: &'a Path,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    sig: Vec<usize>,
    /// Lines exempted per rule by inline markers.
    allowed: HashSet<(&'static str, u32)>,
    /// Line spans of `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(u32, u32)>,
    diags: Vec<Diagnostic>,
}

impl<'a> FileCx<'a> {
    fn new(rel: &'a Path, src: &str) -> Self {
        let tokens = lex(src);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != Kind::Comment)
            .map(|(i, _)| i)
            .collect();
        let mut cx = FileCx {
            rel,
            tokens,
            sig,
            allowed: HashSet::new(),
            test_spans: Vec::new(),
            diags: Vec::new(),
        };
        cx.scan_markers();
        cx.scan_test_spans();
        cx
    }

    fn s(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    fn stext(&self, i: usize) -> &str {
        &self.s(i).text
    }

    fn report(&mut self, rule: &'static str, line: u32, message: String) {
        if self.allowed.contains(&(rule, line)) {
            return;
        }
        self.diags.push(Diagnostic {
            file: self.rel.to_path_buf(),
            line,
            rule,
            message,
        });
    }

    /// Collects `// analyze: allow(<rule>): <reason>` markers: each
    /// exempts its own line and the next (so it can sit above the
    /// statement).
    fn scan_markers(&mut self) {
        let mut found = Vec::new();
        for t in &self.tokens {
            if t.kind != Kind::Comment {
                continue;
            }
            // Only a comment that *is* a marker counts — prose that
            // mentions the syntax (like these docs) must not grant an
            // exemption.
            let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
            let Some(rest) = body.strip_prefix("analyze: allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                found.push((None, t.line, "unclosed allow marker".to_owned()));
                continue;
            };
            // `allow(panic)` is the documented spelling for the
            // no-panic rule's infallibility marker.
            let name = match &rest[..close] {
                "panic" => "no-panic",
                other => other,
            };
            let reason = rest[close + 1..]
                .trim_start_matches([':', '-', '—', ' '])
                .trim();
            match RULES.iter().find(|r| **r == name) {
                None => found.push((
                    None,
                    t.line,
                    format!("unknown rule '{name}' in allow marker"),
                )),
                Some(rule) if reason.is_empty() => found.push((
                    None,
                    t.line,
                    format!("allow({rule}) marker needs a justification after the ')'"),
                )),
                Some(rule) => found.push((Some(*rule), t.line, String::new())),
            }
        }
        for (rule, line, message) in found {
            match rule {
                Some(rule) => {
                    self.allowed.insert((rule, line));
                    self.allowed.insert((rule, line + 1));
                }
                None => self.diags.push(Diagnostic {
                    file: self.rel.to_path_buf(),
                    line,
                    rule: "allow-marker",
                    message,
                }),
            }
        }
    }

    /// Marks the line span of every item annotated `#[cfg(test)]` or
    /// `#[test]`: the span runs from the attribute to the item's
    /// closing brace (or `;`).
    fn scan_test_spans(&mut self) {
        let mut i = 0;
        while i < self.sig.len() {
            if self.stext(i) != "#" || i + 1 >= self.sig.len() || self.stext(i + 1) != "[" {
                i += 1;
                continue;
            }
            let attr_line = self.s(i).line;
            // Collect attribute content to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr = Vec::new();
            while j < self.sig.len() && depth > 0 {
                match self.stext(j) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    t => attr.push(t.to_owned()),
                }
                j += 1;
            }
            let is_test_attr = attr.first().is_some_and(|a| a == "test")
                || (attr.contains(&"cfg".to_owned()) && attr.contains(&"test".to_owned()));
            if !is_test_attr {
                i = j;
                continue;
            }
            // Skip any further attributes, then span the item.
            while j + 1 < self.sig.len() && self.stext(j) == "#" && self.stext(j + 1) == "[" {
                let mut depth = 0usize;
                j += 1;
                loop {
                    match self.stext(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                    if j >= self.sig.len() {
                        break;
                    }
                }
                j += 1;
            }
            let mut braces = 0usize;
            let end_line = loop {
                if j >= self.sig.len() {
                    break self.tokens.last().map_or(attr_line, |t| t.line);
                }
                match self.stext(j) {
                    ";" if braces == 0 => break self.s(j).line,
                    "{" => braces += 1,
                    "}" => {
                        braces -= 1;
                        if braces == 0 {
                            break self.s(j).line;
                        }
                    }
                    _ => {}
                }
                j += 1;
            };
            self.test_spans.push((attr_line, end_line));
            i = j + 1;
        }
    }

    fn in_test_span(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

// ---- rules ---------------------------------------------------------------

/// Runs every applicable rule on one file.
#[must_use]
pub fn check_file(rel: &Path, src: &str, allowlist: &Allowlist) -> Vec<Diagnostic> {
    let rel_s = rel_str(rel);
    let mut cx = FileCx::new(rel, src);
    if is_decode_path(&rel_s) && !is_test_tree(&rel_s) && !allowlist.exempts("no-panic", rel) {
        no_panic(&mut cx);
    }
    if is_first_party(&rel_s)
        && !rel_s.starts_with("crates/format/src/")
        && !rel_s.starts_with("crates/xtask/")
        && !is_test_tree(&rel_s)
        && !allowlist.exempts("le-bytes", rel)
    {
        le_bytes(&mut cx);
    }
    if is_first_party(&rel_s) && !is_test_tree(&rel_s) && !allowlist.exempts("chunk-match", rel) {
        chunk_match(&mut cx);
    }
    if rel_s == "crates/format/src/chunk.rs" && !allowlist.exempts("chunk-registry", rel) {
        chunk_registry(&mut cx);
    }
    if is_crate_root(&rel_s) && !allowlist.exempts("forbid-unsafe", rel) {
        forbid_unsafe(&mut cx);
    }
    if rel_s.starts_with("crates/format/src/")
        && !is_test_tree(&rel_s)
        && !allowlist.exempts("no-metrics-in-decode", rel)
    {
        no_metrics_in_decode(&mut cx);
    }
    if is_first_party(&rel_s)
        && !rel_s.starts_with("crates/format/src/")
        && !rel_s.starts_with("crates/xtask/")
        && !is_test_tree(&rel_s)
        && !allowlist.exempts("atomic-artifact-writes", rel)
    {
        atomic_artifact_writes(&mut cx);
    }
    if is_grammar_hot_path(&rel_s)
        && !is_test_tree(&rel_s)
        && !allowlist.exempts("no-siphash-in-hot-paths", rel)
    {
        no_siphash_in_hot_paths(&mut cx);
    }
    cx.diags
}

/// `no-panic`: decode paths must turn malformed input into
/// `FormatError`, never a panic.
fn no_panic(cx: &mut FileCx<'_>) {
    const BANGS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut hits = Vec::new();
    for i in 0..cx.sig.len() {
        let t = cx.s(i);
        if cx.in_test_span(t.line) {
            continue;
        }
        let line = t.line;
        // `.unwrap()` / `.expect(`
        if t.text == "."
            && i + 2 < cx.sig.len()
            && matches!(cx.stext(i + 1), "unwrap" | "expect")
            && cx.stext(i + 2) == "("
        {
            hits.push((
                line,
                format!(
                    "{}() in a decode path — malformed input must route through \
                     FormatError; if provably infallible, mark \
                     `// analyze: allow(no-panic): <why>`",
                    cx.stext(i + 1)
                ),
            ));
        }
        // `panic!(` and friends
        if t.kind == Kind::Ident
            && BANGS.contains(&t.text.as_str())
            && i + 1 < cx.sig.len()
            && cx.stext(i + 1) == "!"
        {
            hits.push((
                line,
                format!(
                    "{}! in a decode path — return a FormatError instead",
                    t.text
                ),
            ));
        }
        // Indexing/slicing: `expr[...]` panics on out-of-bounds input.
        if t.text == "["
            && i > 0
            && (cx.s(i - 1).kind == Kind::Ident || matches!(cx.stext(i - 1), ")" | "]"))
            && !matches!(cx.stext(i - 1), "_" | "as")
        {
            // Exclude keywords that precede array types/patterns.
            let prev = cx.stext(i - 1);
            let keyword = matches!(
                prev,
                "let"
                    | "mut"
                    | "ref"
                    | "const"
                    | "static"
                    | "return"
                    | "in"
                    | "of"
                    | "dyn"
                    | "impl"
                    | "where"
                    | "else"
                    | "match"
                    | "if"
                    | "box"
                    | "pub"
                    | "crate"
                    | "move"
                    | "unsafe"
                    | "async"
                    | "type"
                    | "struct"
                    | "enum"
                    | "fn"
            );
            if !keyword {
                hits.push((
                    line,
                    "indexing in a decode path panics on malformed input — use \
                     get()/split_at checked forms, or mark \
                     `// analyze: allow(no-panic): <why>`"
                        .to_owned(),
                ));
            }
        }
    }
    for (line, message) in hits {
        cx.report("no-panic", line, message);
    }
}

/// `le-bytes`: byte-order framing outside `orp-format` re-implements
/// the codecs (and drifts from them).
fn le_bytes(cx: &mut FileCx<'_>) {
    const FRAMING: &[&str] = &[
        "from_le_bytes",
        "to_le_bytes",
        "from_be_bytes",
        "to_be_bytes",
        "from_ne_bytes",
        "to_ne_bytes",
    ];
    let mut hits = Vec::new();
    for i in 0..cx.sig.len() {
        let t = cx.s(i);
        if t.kind == Kind::Ident && FRAMING.contains(&t.text.as_str()) && !cx.in_test_span(t.line) {
            hits.push((
                t.line,
                format!(
                    "{} is hand-rolled framing — use orp_format's codecs \
                     (read_u32_le/read_u64_le/varints) so the wire format \
                     stays in one crate",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("le-bytes", line, message);
    }
}

/// `chunk-match`: a `match` whose arms mention `ChunkTag` needs an
/// explicit non-empty catch-all — the tag space is open.
fn chunk_match(cx: &mut FileCx<'_>) {
    let mut hits = Vec::new();
    let mut i = 0;
    while i < cx.sig.len() {
        if cx.stext(i) != "match" || cx.s(i).kind != Kind::Ident {
            i += 1;
            continue;
        }
        let match_line = cx.s(i).line;
        // Find the body `{`: first brace at paren/bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < cx.sig.len() {
            match cx.stext(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => break, // not a match expression
                _ => {}
            }
            j += 1;
        }
        if j >= cx.sig.len() || cx.stext(j) != "{" {
            i = j;
            continue;
        }
        let body_start = j + 1;
        let mut braces = 1i32;
        let mut body_end = body_start;
        while body_end < cx.sig.len() && braces > 0 {
            match cx.stext(body_end) {
                "{" => braces += 1,
                "}" => braces -= 1,
                _ => {}
            }
            if braces == 0 {
                break;
            }
            body_end += 1;
        }
        // The rule targets matches *over* tags: ChunkTag in the
        // scrutinee or in an arm pattern. A match on some other
        // (closed, compiler-checked) enum that merely produces tags in
        // its arm bodies is fine.
        let scrutinee_has = (i + 1..j).any(|k| cx.stext(k) == "ChunkTag");
        let mut pattern_has = false;
        {
            let mut depth = 0i32;
            let mut in_pattern = true;
            let mut k = body_start;
            while k < body_end {
                match cx.stext(k) {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        // A depth-0 block arm body just closed: the
                        // next tokens are the next arm's pattern.
                        if depth == 0 {
                            in_pattern = true;
                        }
                    }
                    "=" if depth == 0 && k + 1 < body_end && cx.stext(k + 1) == ">" => {
                        in_pattern = false;
                    }
                    "," if depth == 0 => in_pattern = true,
                    "ChunkTag" if in_pattern && depth == 0 => pattern_has = true,
                    _ => {}
                }
                k += 1;
            }
        }
        if (scrutinee_has || pattern_has) && !cx.in_test_span(match_line) {
            match catch_all(cx, body_start, body_end) {
                CatchAll::Missing => hits.push((
                    match_line,
                    "match over ChunkTag without a catch-all arm — the tag \
                     space is open (KNOWN registry); handle unknown tags \
                     explicitly"
                        .to_owned(),
                )),
                CatchAll::Empty(line) => hits.push((
                    line,
                    "catch-all arm silently drops unknown chunk tags — \
                     surface FormatError::UnknownChunk, count, or log; an \
                     empty body hides corruption"
                        .to_owned(),
                )),
                CatchAll::Ok => {}
            }
        }
        i = body_end + 1;
    }
    for (line, message) in hits {
        cx.report("chunk-match", line, message);
    }
}

enum CatchAll {
    Missing,
    Empty(u32),
    Ok,
}

/// Looks for a catch-all arm (`_ =>` or a lowercase-binding `x =>`)
/// directly at the match body's top level and classifies its body.
fn catch_all(cx: &FileCx<'_>, start: usize, end: usize) -> CatchAll {
    let mut depth = 0i32;
    let mut k = start;
    while k < end {
        match cx.stext(k) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            _ => {}
        }
        // An arrow at depth 0 whose pattern is a single `_` or a
        // lowercase binding: the pattern token sits right before `=`,
        // preceded by `,` or the body opening.
        if depth == 0 && cx.stext(k) == "=" && k + 1 < end && cx.stext(k + 1) == ">" && k >= 1 {
            let pat = cx.s(k - 1);
            let pat_is_binding = pat.kind == Kind::Ident
                && (pat.text == "_" || pat.text.chars().next().is_some_and(char::is_lowercase));
            // The pattern opens an arm when preceded by the body `{`,
            // an arm-separating `,`, or a block arm body's closing `}`
            // (no comma required after a block).
            let pat_starts_arm =
                k < 2 + start || matches!(cx.stext(k - 2), "," | "{" | "}") || k - 1 == start;
            if pat_is_binding && pat_starts_arm {
                // Classify the arm body.
                let b = k + 2;
                if b < end
                    && ((cx.stext(b) == "{" && b + 1 < end && cx.stext(b + 1) == "}")
                        || (cx.stext(b) == "("
                            && b + 1 < end
                            && cx.stext(b + 1) == ")"
                            && (b + 2 >= end || matches!(cx.stext(b + 2), "," | "}"))))
                {
                    return CatchAll::Empty(pat.line);
                }
                return CatchAll::Ok;
            }
        }
        k += 1;
    }
    CatchAll::Missing
}

/// `chunk-registry`: every `ChunkTag` const in `chunk.rs` must be in
/// the `KNOWN` registry.
fn chunk_registry(cx: &mut FileCx<'_>) {
    // Declared: `const NAME: ChunkTag =`
    let mut declared = Vec::new();
    for i in 0..cx.sig.len().saturating_sub(4) {
        if cx.stext(i) == "const"
            && cx.stext(i + 2) == ":"
            && cx.stext(i + 3) == "ChunkTag"
            && cx.stext(i + 4) == "="
        {
            declared.push((cx.stext(i + 1).to_owned(), cx.s(i + 1).line));
        }
    }
    // Registered: `ChunkTag::NAME` between `KNOWN` and its terminating
    // `;`.
    let mut registered = HashSet::new();
    if let Some(start) = (0..cx.sig.len()).find(|&i| cx.stext(i) == "KNOWN") {
        let mut i = start;
        while i < cx.sig.len() && cx.stext(i) != ";" {
            if cx.stext(i) == "ChunkTag"
                && i + 3 < cx.sig.len()
                && cx.stext(i + 1) == ":"
                && cx.stext(i + 2) == ":"
            {
                registered.insert(cx.stext(i + 3).to_owned());
            }
            i += 1;
        }
    }
    let mut hits = Vec::new();
    for (name, line) in declared {
        if !registered.contains(&name) {
            hits.push((
                line,
                format!(
                    "ChunkTag::{name} is not in the KNOWN registry — \
                     inspect/skip tooling will treat it as foreign"
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("chunk-registry", line, message);
    }
}

/// `no-metrics-in-decode`: `orp-format` must stay observability-free.
///
/// The zero-overhead guarantee rests on the wire-format crate having
/// no recorder hooks at all: its `IoStats` are plain integers, and the
/// `orp-obs` dependency edge points *at* `orp-format`, never back.
/// Any recorder ident appearing in a decode path means someone started
/// publishing metrics from inside the codec hot loop.
fn no_metrics_in_decode(cx: &mut FileCx<'_>) {
    const METRICS_IDENTS: &[&str] = &["orp_obs", "Recorder", "StatsRecorder", "NoopRecorder"];
    let mut hits = Vec::new();
    for i in 0..cx.sig.len() {
        let t = cx.s(i);
        if t.kind == Kind::Ident
            && METRICS_IDENTS.contains(&t.text.as_str())
            && !cx.in_test_span(t.line)
        {
            hits.push((
                t.line,
                format!(
                    "{} in orp-format — the wire-format crate must not \
                     depend on the observability layer; count with plain \
                     integers (IoStats) and publish from the caller",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("no-metrics-in-decode", line, message);
    }
}

/// `atomic-artifact-writes`: artifacts reach disk only through the
/// durable path.
///
/// A direct `File::create` or `fs::write` truncates the destination
/// before the new bytes are durable, so a crash mid-write leaves a
/// torn artifact where a reader expects old-complete or new-complete.
/// Producers go through `orp_format::AtomicFile` /
/// `write_bytes_atomic` (temp sibling, fsync, rename, directory
/// fsync) — which is why the primitive's own crate is exempt.
fn atomic_artifact_writes(cx: &mut FileCx<'_>) {
    let mut hits = Vec::new();
    for i in 0..cx.sig.len().saturating_sub(3) {
        let t = cx.s(i);
        if t.kind != Kind::Ident
            || cx.in_test_span(t.line)
            || cx.stext(i + 1) != ":"
            || cx.stext(i + 2) != ":"
        {
            continue;
        }
        let callee = cx.stext(i + 3);
        let torn = match t.text.as_str() {
            "File" => matches!(callee, "create" | "create_new"),
            "fs" => callee == "write",
            _ => false,
        };
        if torn {
            hits.push((
                t.line,
                format!(
                    "{}::{callee} truncates the destination before the new \
                     bytes are durable — write artifacts through \
                     orp_format::AtomicFile / write_bytes_atomic, or mark \
                     `// analyze: allow(atomic-artifact-writes): <why>`",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("atomic-artifact-writes", line, message);
    }
}

/// `no-siphash-in-hot-paths`: grammar crates must not build hash maps
/// with the default hasher.
///
/// `HashMap::new()` / `with_capacity()` are only defined for
/// `RandomState` (SipHash-1-3), which profiling showed dominating the
/// per-symbol cost of grammar construction (DESIGN.md §13). Hot-path
/// maps spell an explicit hasher in the type and construct through
/// `HashMap::default()` — like `sequitur`'s `DigramMap` with
/// `FxBuildHasher` — so the fast hasher cannot silently regress back
/// to SipHash. The same applies to `HashSet`. Test code is exempt:
/// differential tests deliberately build SipHash maps to compare
/// against.
fn no_siphash_in_hot_paths(cx: &mut FileCx<'_>) {
    let mut hits = Vec::new();
    for i in 0..cx.sig.len().saturating_sub(3) {
        let t = cx.s(i);
        if t.kind != Kind::Ident
            || !matches!(t.text.as_str(), "HashMap" | "HashSet")
            || cx.in_test_span(t.line)
            || cx.stext(i + 1) != ":"
            || cx.stext(i + 2) != ":"
        {
            continue;
        }
        let callee = cx.stext(i + 3);
        if matches!(callee, "new" | "with_capacity") {
            hits.push((
                t.line,
                format!(
                    "{}::{callee} pins the default SipHash hasher in a \
                     grammar hot path — annotate the map type with \
                     FxBuildHasher (see orp_sequitur::FxBuildHasher) and \
                     construct with ::default(), or mark \
                     `// analyze: allow(no-siphash-in-hot-paths): <why>`",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("no-siphash-in-hot-paths", line, message);
    }
}

/// `forbid-unsafe`: crate roots must declare `#![forbid(unsafe_code)]`.
fn forbid_unsafe(cx: &mut FileCx<'_>) {
    for i in 0..cx.sig.len().saturating_sub(6) {
        if cx.stext(i) == "#"
            && cx.stext(i + 1) == "!"
            && cx.stext(i + 2) == "["
            && cx.stext(i + 3) == "forbid"
            && cx.stext(i + 4) == "("
            && cx.stext(i + 5) == "unsafe_code"
        {
            return;
        }
    }
    cx.report(
        "forbid-unsafe",
        1,
        "crate root lacks #![forbid(unsafe_code)] — add it, or exempt \
         this root in analyze.allow with a reason"
            .to_owned(),
    );
}
