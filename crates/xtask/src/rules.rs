//! The analyze rules (see the crate docs for the catalogue).
//!
//! Two layers: the per-file token rules ([`check_file`]), which run on
//! one file's facts in isolation, and the cross-file rules
//! ([`check_workspace`]), which run on the linked [`WorkspaceFacts`] —
//! call-graph panic reachability, decoded-length taint, metric-key
//! consistency against the schema vocabulary, codec-pair completeness
//! over the chunk registry, and decode-path error-type discipline.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraph, FnId};
use crate::facts::{
    is_crate_root, is_decode_path, is_first_party, is_grammar_hot_path, is_test_tree, FileFacts,
    WorkspaceFacts,
};
use crate::lexer::Kind;
use crate::vocab::{KeyKind, Vocabulary};
use crate::Diagnostic;

/// Rule names a marker or allowlist line may reference.
pub(crate) const RULES: &[&str] = &[
    "no-panic",
    "le-bytes",
    "chunk-match",
    "chunk-registry",
    "forbid-unsafe",
    "no-metrics-in-decode",
    "atomic-artifact-writes",
    "no-siphash-in-hot-paths",
    "panic-reachability",
    "untrusted-length",
    "metric-key",
    "codec-pair",
    "error-type",
];

/// File-level exemptions from `analyze.allow` at the repo root.
///
/// Line format: `<rule> <path> <reason…>`, `#` comments and blank
/// lines ignored. A line with an unknown rule or no reason is itself
/// reported (in [`Allowlist::problems`]) — exemptions must stay
/// auditable.
pub struct Allowlist {
    entries: HashSet<(String, PathBuf)>,
    pub problems: Vec<Diagnostic>,
}

impl Allowlist {
    #[must_use]
    pub fn load(root: &Path) -> Self {
        let path = root.join("analyze.allow");
        let mut entries = HashSet::new();
        let mut problems = Vec::new();
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Allowlist { entries, problems };
        };
        for (idx, line) in text.lines().enumerate() {
            let line_no = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default();
            let file = parts.next().unwrap_or_default();
            let reason = parts.next().unwrap_or_default().trim();
            if !RULES.contains(&rule) {
                problems.push(Diagnostic {
                    file: PathBuf::from("analyze.allow"),
                    line: line_no,
                    rule: "allowlist",
                    message: format!("unknown rule '{rule}' (known: {})", RULES.join(", ")),
                });
            } else if file.is_empty() || reason.is_empty() {
                problems.push(Diagnostic {
                    file: PathBuf::from("analyze.allow"),
                    line: line_no,
                    rule: "allowlist",
                    message: "format is '<rule> <path> <reason>'; a reason is required".to_owned(),
                });
            } else {
                entries.insert((rule.to_owned(), PathBuf::from(file)));
            }
        }
        Allowlist { entries, problems }
    }

    pub(crate) fn exempts(&self, rule: &str, file: &Path) -> bool {
        self.entries
            .contains(&(rule.to_owned(), file.to_path_buf()))
    }
}

// ---- per-file rule context -----------------------------------------------

/// Borrowed view a per-file rule runs in: the file's facts plus the
/// diagnostics it accumulates (filtered through inline allow markers).
struct RuleCx<'a> {
    f: &'a FileFacts,
    diags: Vec<Diagnostic>,
}

impl RuleCx<'_> {
    fn n(&self) -> usize {
        self.f.sig.len()
    }

    fn s(&self, i: usize) -> &crate::lexer::Token {
        self.f.s(i)
    }

    fn stext(&self, i: usize) -> &str {
        self.f.stext(i)
    }

    fn in_test_span(&self, line: u32) -> bool {
        self.f.in_test_span(line)
    }

    fn report(&mut self, rule: &'static str, line: u32, message: String) {
        if self.f.line_allowed(rule, line) {
            return;
        }
        self.diags.push(Diagnostic {
            file: self.f.rel.clone(),
            line,
            rule,
            message,
        });
    }
}

// ---- per-file rules ------------------------------------------------------

/// Runs every applicable per-file rule on one file, building its facts
/// from source. Cross-file rules need [`check_workspace`].
#[must_use]
pub fn check_file(rel: &Path, src: &str, allowlist: &Allowlist) -> Vec<Diagnostic> {
    check_file_facts(&FileFacts::new(rel, src), allowlist)
}

/// Runs every applicable per-file rule against pre-built facts.
#[must_use]
pub fn check_file_facts(facts: &FileFacts, allowlist: &Allowlist) -> Vec<Diagnostic> {
    let rel = facts.rel.as_path();
    let rel_s = facts.rel_s.as_str();
    let mut cx = RuleCx {
        f: facts,
        diags: facts.marker_problems.clone(),
    };
    if is_decode_path(rel_s) && !is_test_tree(rel_s) && !allowlist.exempts("no-panic", rel) {
        no_panic(&mut cx);
    }
    if is_first_party(rel_s)
        && !rel_s.starts_with("crates/format/src/")
        && !rel_s.starts_with("crates/xtask/")
        && !is_test_tree(rel_s)
        && !allowlist.exempts("le-bytes", rel)
    {
        le_bytes(&mut cx);
    }
    if is_first_party(rel_s) && !is_test_tree(rel_s) && !allowlist.exempts("chunk-match", rel) {
        chunk_match(&mut cx);
    }
    if rel_s == "crates/format/src/chunk.rs" && !allowlist.exempts("chunk-registry", rel) {
        chunk_registry(&mut cx);
    }
    if is_crate_root(rel_s) && !allowlist.exempts("forbid-unsafe", rel) {
        forbid_unsafe(&mut cx);
    }
    if rel_s.starts_with("crates/format/src/")
        && !is_test_tree(rel_s)
        && !allowlist.exempts("no-metrics-in-decode", rel)
    {
        no_metrics_in_decode(&mut cx);
    }
    if is_first_party(rel_s)
        && !rel_s.starts_with("crates/format/src/")
        && !rel_s.starts_with("crates/xtask/")
        && !is_test_tree(rel_s)
        && !allowlist.exempts("atomic-artifact-writes", rel)
    {
        atomic_artifact_writes(&mut cx);
    }
    if is_grammar_hot_path(rel_s)
        && !is_test_tree(rel_s)
        && !allowlist.exempts("no-siphash-in-hot-paths", rel)
    {
        no_siphash_in_hot_paths(&mut cx);
    }
    cx.diags
}

/// `no-panic`: decode paths must turn malformed input into
/// `FormatError`, never a panic.
fn no_panic(cx: &mut RuleCx<'_>) {
    const BANGS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut hits = Vec::new();
    for i in 0..cx.n() {
        let t = cx.s(i);
        if cx.in_test_span(t.line) {
            continue;
        }
        let line = t.line;
        // `.unwrap()` / `.expect(`
        if t.text == "."
            && i + 2 < cx.n()
            && matches!(cx.stext(i + 1), "unwrap" | "expect")
            && cx.stext(i + 2) == "("
        {
            hits.push((
                line,
                format!(
                    "{}() in a decode path — malformed input must route through \
                     FormatError; if provably infallible, mark \
                     `// analyze: allow(no-panic): <why>`",
                    cx.stext(i + 1)
                ),
            ));
        }
        // `panic!(` and friends
        if t.kind == Kind::Ident
            && BANGS.contains(&t.text.as_str())
            && i + 1 < cx.n()
            && cx.stext(i + 1) == "!"
        {
            hits.push((
                line,
                format!(
                    "{}! in a decode path — return a FormatError instead",
                    t.text
                ),
            ));
        }
        // Indexing/slicing: `expr[...]` panics on out-of-bounds input.
        if t.text == "["
            && i > 0
            && (cx.s(i - 1).kind == Kind::Ident || matches!(cx.stext(i - 1), ")" | "]"))
            && !matches!(cx.stext(i - 1), "_" | "as")
        {
            // Exclude keywords that precede array types/patterns.
            let prev = cx.stext(i - 1);
            let keyword = matches!(
                prev,
                "let"
                    | "mut"
                    | "ref"
                    | "const"
                    | "static"
                    | "return"
                    | "in"
                    | "of"
                    | "dyn"
                    | "impl"
                    | "where"
                    | "else"
                    | "match"
                    | "if"
                    | "box"
                    | "pub"
                    | "crate"
                    | "move"
                    | "unsafe"
                    | "async"
                    | "type"
                    | "struct"
                    | "enum"
                    | "fn"
            );
            if !keyword {
                hits.push((
                    line,
                    "indexing in a decode path panics on malformed input — use \
                     get()/split_at checked forms, or mark \
                     `// analyze: allow(no-panic): <why>`"
                        .to_owned(),
                ));
            }
        }
    }
    for (line, message) in hits {
        cx.report("no-panic", line, message);
    }
}

/// `le-bytes`: byte-order framing outside `orp-format` re-implements
/// the codecs (and drifts from them).
fn le_bytes(cx: &mut RuleCx<'_>) {
    const FRAMING: &[&str] = &[
        "from_le_bytes",
        "to_le_bytes",
        "from_be_bytes",
        "to_be_bytes",
        "from_ne_bytes",
        "to_ne_bytes",
    ];
    let mut hits = Vec::new();
    for i in 0..cx.n() {
        let t = cx.s(i);
        if t.kind == Kind::Ident && FRAMING.contains(&t.text.as_str()) && !cx.in_test_span(t.line) {
            hits.push((
                t.line,
                format!(
                    "{} is hand-rolled framing — use orp_format's codecs \
                     (read_u32_le/read_u64_le/varints) so the wire format \
                     stays in one crate",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("le-bytes", line, message);
    }
}

/// `chunk-match`: a `match` whose arms mention `ChunkTag` needs an
/// explicit non-empty catch-all — the tag space is open.
fn chunk_match(cx: &mut RuleCx<'_>) {
    let mut hits = Vec::new();
    let mut i = 0;
    while i < cx.n() {
        if cx.stext(i) != "match" || cx.s(i).kind != Kind::Ident {
            i += 1;
            continue;
        }
        let match_line = cx.s(i).line;
        // Find the body `{`: first brace at paren/bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < cx.n() {
            match cx.stext(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => break, // not a match expression
                _ => {}
            }
            j += 1;
        }
        if j >= cx.n() || cx.stext(j) != "{" {
            i = j;
            continue;
        }
        let body_start = j + 1;
        let mut braces = 1i32;
        let mut body_end = body_start;
        while body_end < cx.n() && braces > 0 {
            match cx.stext(body_end) {
                "{" => braces += 1,
                "}" => braces -= 1,
                _ => {}
            }
            if braces == 0 {
                break;
            }
            body_end += 1;
        }
        // The rule targets matches *over* tags: ChunkTag in the
        // scrutinee or in an arm pattern. A match on some other
        // (closed, compiler-checked) enum that merely produces tags in
        // its arm bodies is fine.
        let scrutinee_has = (i + 1..j).any(|k| cx.stext(k) == "ChunkTag");
        let mut pattern_has = false;
        {
            let mut depth = 0i32;
            let mut in_pattern = true;
            let mut k = body_start;
            while k < body_end {
                match cx.stext(k) {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        // A depth-0 block arm body just closed: the
                        // next tokens are the next arm's pattern.
                        if depth == 0 {
                            in_pattern = true;
                        }
                    }
                    "=" if depth == 0 && k + 1 < body_end && cx.stext(k + 1) == ">" => {
                        in_pattern = false;
                    }
                    "," if depth == 0 => in_pattern = true,
                    "ChunkTag" if in_pattern && depth == 0 => pattern_has = true,
                    _ => {}
                }
                k += 1;
            }
        }
        if (scrutinee_has || pattern_has) && !cx.in_test_span(match_line) {
            match catch_all(cx, body_start, body_end) {
                CatchAll::Missing => hits.push((
                    match_line,
                    "match over ChunkTag without a catch-all arm — the tag \
                     space is open (KNOWN registry); handle unknown tags \
                     explicitly"
                        .to_owned(),
                )),
                CatchAll::Empty(line) => hits.push((
                    line,
                    "catch-all arm silently drops unknown chunk tags — \
                     surface FormatError::UnknownChunk, count, or log; an \
                     empty body hides corruption"
                        .to_owned(),
                )),
                CatchAll::Ok => {}
            }
        }
        i = body_end + 1;
    }
    for (line, message) in hits {
        cx.report("chunk-match", line, message);
    }
}

enum CatchAll {
    Missing,
    Empty(u32),
    Ok,
}

/// Looks for a catch-all arm (`_ =>` or a lowercase-binding `x =>`)
/// directly at the match body's top level and classifies its body.
fn catch_all(cx: &RuleCx<'_>, start: usize, end: usize) -> CatchAll {
    let mut depth = 0i32;
    let mut k = start;
    while k < end {
        match cx.stext(k) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            _ => {}
        }
        // An arrow at depth 0 whose pattern is a single `_` or a
        // lowercase binding: the pattern token sits right before `=`,
        // preceded by `,` or the body opening.
        if depth == 0 && cx.stext(k) == "=" && k + 1 < end && cx.stext(k + 1) == ">" && k >= 1 {
            let pat = cx.s(k - 1);
            let pat_is_binding = pat.kind == Kind::Ident
                && (pat.text == "_" || pat.text.chars().next().is_some_and(char::is_lowercase));
            // The pattern opens an arm when preceded by the body `{`,
            // an arm-separating `,`, or a block arm body's closing `}`
            // (no comma required after a block).
            let pat_starts_arm =
                k < 2 + start || matches!(cx.stext(k - 2), "," | "{" | "}") || k - 1 == start;
            if pat_is_binding && pat_starts_arm {
                // Classify the arm body.
                let b = k + 2;
                if b < end
                    && ((cx.stext(b) == "{" && b + 1 < end && cx.stext(b + 1) == "}")
                        || (cx.stext(b) == "("
                            && b + 1 < end
                            && cx.stext(b + 1) == ")"
                            && (b + 2 >= end || matches!(cx.stext(b + 2), "," | "}"))))
                {
                    return CatchAll::Empty(pat.line);
                }
                return CatchAll::Ok;
            }
        }
        k += 1;
    }
    CatchAll::Missing
}

/// `chunk-registry`: every `ChunkTag` const in `chunk.rs` must be in
/// the `KNOWN` registry.
fn chunk_registry(cx: &mut RuleCx<'_>) {
    // Declared: `const NAME: ChunkTag =`
    let mut declared = Vec::new();
    for i in 0..cx.n().saturating_sub(4) {
        if cx.stext(i) == "const"
            && cx.stext(i + 2) == ":"
            && cx.stext(i + 3) == "ChunkTag"
            && cx.stext(i + 4) == "="
        {
            declared.push((cx.stext(i + 1).to_owned(), cx.s(i + 1).line));
        }
    }
    // Registered: `ChunkTag::NAME` between `KNOWN` and its terminating
    // `;`.
    let mut registered = HashSet::new();
    if let Some(start) = (0..cx.n()).find(|&i| cx.stext(i) == "KNOWN") {
        let mut i = start;
        while i < cx.n() && cx.stext(i) != ";" {
            if cx.stext(i) == "ChunkTag"
                && i + 3 < cx.n()
                && cx.stext(i + 1) == ":"
                && cx.stext(i + 2) == ":"
            {
                registered.insert(cx.stext(i + 3).to_owned());
            }
            i += 1;
        }
    }
    let mut hits = Vec::new();
    for (name, line) in declared {
        if !registered.contains(&name) {
            hits.push((
                line,
                format!(
                    "ChunkTag::{name} is not in the KNOWN registry — \
                     inspect/skip tooling will treat it as foreign"
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("chunk-registry", line, message);
    }
}

/// `no-metrics-in-decode`: `orp-format` must stay observability-free.
///
/// The zero-overhead guarantee rests on the wire-format crate having
/// no recorder hooks at all: its `IoStats` are plain integers, and the
/// `orp-obs` dependency edge points *at* `orp-format`, never back.
/// Any recorder ident appearing in a decode path means someone started
/// publishing metrics from inside the codec hot loop.
fn no_metrics_in_decode(cx: &mut RuleCx<'_>) {
    const METRICS_IDENTS: &[&str] = &["orp_obs", "Recorder", "StatsRecorder", "NoopRecorder"];
    let mut hits = Vec::new();
    for i in 0..cx.n() {
        let t = cx.s(i);
        if t.kind == Kind::Ident
            && METRICS_IDENTS.contains(&t.text.as_str())
            && !cx.in_test_span(t.line)
        {
            hits.push((
                t.line,
                format!(
                    "{} in orp-format — the wire-format crate must not \
                     depend on the observability layer; count with plain \
                     integers (IoStats) and publish from the caller",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("no-metrics-in-decode", line, message);
    }
}

/// `atomic-artifact-writes`: artifacts reach disk only through the
/// durable path.
///
/// A direct `File::create` or `fs::write` truncates the destination
/// before the new bytes are durable, so a crash mid-write leaves a
/// torn artifact where a reader expects old-complete or new-complete.
/// Producers go through `orp_format::AtomicFile` /
/// `write_bytes_atomic` (temp sibling, fsync, rename, directory
/// fsync) — which is why the primitive's own crate is exempt.
fn atomic_artifact_writes(cx: &mut RuleCx<'_>) {
    let mut hits = Vec::new();
    for i in 0..cx.n().saturating_sub(3) {
        let t = cx.s(i);
        if t.kind != Kind::Ident
            || cx.in_test_span(t.line)
            || cx.stext(i + 1) != ":"
            || cx.stext(i + 2) != ":"
        {
            continue;
        }
        let callee = cx.stext(i + 3);
        let torn = match t.text.as_str() {
            "File" => matches!(callee, "create" | "create_new"),
            "fs" => callee == "write",
            _ => false,
        };
        if torn {
            hits.push((
                t.line,
                format!(
                    "{}::{callee} truncates the destination before the new \
                     bytes are durable — write artifacts through \
                     orp_format::AtomicFile / write_bytes_atomic, or mark \
                     `// analyze: allow(atomic-artifact-writes): <why>`",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("atomic-artifact-writes", line, message);
    }
}

/// `no-siphash-in-hot-paths`: grammar crates must not build hash maps
/// with the default hasher.
///
/// `HashMap::new()` / `with_capacity()` are only defined for
/// `RandomState` (SipHash-1-3), which profiling showed dominating the
/// per-symbol cost of grammar construction (DESIGN.md §13). Hot-path
/// maps spell an explicit hasher in the type and construct through
/// `HashMap::default()` — like `sequitur`'s `DigramMap` with
/// `FxBuildHasher` — so the fast hasher cannot silently regress back
/// to SipHash. The same applies to `HashSet`. Test code is exempt:
/// differential tests deliberately build SipHash maps to compare
/// against.
fn no_siphash_in_hot_paths(cx: &mut RuleCx<'_>) {
    let mut hits = Vec::new();
    for i in 0..cx.n().saturating_sub(3) {
        let t = cx.s(i);
        if t.kind != Kind::Ident
            || !matches!(t.text.as_str(), "HashMap" | "HashSet")
            || cx.in_test_span(t.line)
            || cx.stext(i + 1) != ":"
            || cx.stext(i + 2) != ":"
        {
            continue;
        }
        let callee = cx.stext(i + 3);
        if matches!(callee, "new" | "with_capacity") {
            hits.push((
                t.line,
                format!(
                    "{}::{callee} pins the default SipHash hasher in a \
                     grammar hot path — annotate the map type with \
                     FxBuildHasher (see orp_sequitur::FxBuildHasher) and \
                     construct with ::default(), or mark \
                     `// analyze: allow(no-siphash-in-hot-paths): <why>`",
                    t.text
                ),
            ));
        }
    }
    for (line, message) in hits {
        cx.report("no-siphash-in-hot-paths", line, message);
    }
}

/// `forbid-unsafe`: crate roots must declare `#![forbid(unsafe_code)]`.
fn forbid_unsafe(cx: &mut RuleCx<'_>) {
    for i in 0..cx.n().saturating_sub(6) {
        if cx.stext(i) == "#"
            && cx.stext(i + 1) == "!"
            && cx.stext(i + 2) == "["
            && cx.stext(i + 3) == "forbid"
            && cx.stext(i + 4) == "("
            && cx.stext(i + 5) == "unsafe_code"
        {
            return;
        }
    }
    cx.report(
        "forbid-unsafe",
        1,
        "crate root lacks #![forbid(unsafe_code)] — add it, or exempt \
         this root in analyze.allow with a reason"
            .to_owned(),
    );
}

// ---- cross-file rules ----------------------------------------------------

/// Verbs that name the reading half of a codec; a `pub fn` in a decode
/// file starting with one is a decode entry point.
const DECODE_VERBS: &[&str] = &[
    "read", "decode", "parse", "restore", "resume", "load", "open",
];

fn has_decode_verb(name: &str) -> bool {
    DECODE_VERBS
        .iter()
        .any(|v| name == *v || name.starts_with(&format!("{v}_")))
}

/// Runs the five cross-file rules over the linked workspace.
/// `schema_rel` is the vocabulary's own path, used to anchor
/// vocabulary-side diagnostics.
#[must_use]
pub fn check_workspace(
    ws: &WorkspaceFacts,
    allowlist: &Allowlist,
    vocab: &Vocabulary,
    schema_rel: &Path,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    panic_reachability(ws, allowlist, &mut diags);
    untrusted_length(ws, allowlist, &mut diags);
    metric_key(ws, allowlist, vocab, schema_rel, &mut diags);
    codec_pair(ws, allowlist, &mut diags);
    error_type(ws, allowlist, &mut diags);
    diags
}

/// `panic-reachability`: no function transitively reachable from a
/// decode entry point may unwrap/expect/panic.
///
/// The legacy `no-panic` rule polices decode files line by line; this
/// rule closes the gap it cannot see — helpers *outside* the decode
/// tree (math, containers, grammar internals) that a decoder calls
/// into. The call graph is approximate and name-based
/// ([`CallGraph::build`]), so every finding carries the reconstructed
/// call path for review.
fn panic_reachability(ws: &WorkspaceFacts, allowlist: &Allowlist, diags: &mut Vec<Diagnostic>) {
    const BANGS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let cg = CallGraph::build(ws);
    let mut entries: Vec<FnId> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !is_decode_path(&file.rel_s) || is_test_tree(&file.rel_s) {
            continue;
        }
        for (gi, f) in file.syntax.fns.iter().enumerate() {
            if f.is_pub && has_decode_verb(&f.name) && !file.in_test_span(f.line) {
                entries.push((fi, gi));
            }
        }
    }
    let reached = cg.reachable_from(&entries);
    let mut nodes: Vec<FnId> = reached.keys().copied().collect();
    nodes.sort_unstable();
    for node in nodes {
        let (fi, gi) = node;
        let file = &ws.files[fi];
        // Decode files are already policed line-by-line by no-panic.
        if is_decode_path(&file.rel_s) || allowlist.exempts("panic-reachability", &file.rel) {
            continue;
        }
        let f = &file.syntax.fns[gi];
        let Some((lo, hi)) = f.body else { continue };
        // Name-based resolution can thread through many same-named
        // definitions; collapse repeats and elide long middles so the
        // path stays a review aid, not a wall.
        let mut names = cg.path_to(ws, &reached, node);
        names.dedup();
        let path = if names.len() > 8 {
            let head = names[..4].join(" -> ");
            let tail = names[names.len() - 3..].join(" -> ");
            format!("{head} -> … -> {tail}")
        } else {
            names.join(" -> ")
        };
        for i in lo..hi.min(file.sig.len()) {
            let line = file.s(i).line;
            if file.in_test_span(line) || file.line_allowed("panic-reachability", line) {
                continue;
            }
            let site = if file.stext(i) == "."
                && i + 2 < file.sig.len()
                && matches!(file.stext(i + 1), "unwrap" | "expect")
                && file.stext(i + 2) == "("
            {
                Some(format!("{}()", file.stext(i + 1)))
            } else if file.s(i).kind == Kind::Ident
                && BANGS.contains(&file.stext(i))
                && i + 1 < file.sig.len()
                && file.stext(i + 1) == "!"
            {
                Some(format!("{}!", file.stext(i)))
            } else {
                None
            };
            if let Some(site) = site {
                diags.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: "panic-reachability",
                    message: format!(
                        "{site} in `{}` is reachable from a decode entry point \
                         (call path: {path}) — malformed input must not panic; \
                         return a Result, or mark \
                         `// analyze: allow(panic-reachability): <why>`",
                        f.name
                    ),
                });
            }
        }
    }
}

/// Decoded-length taint: the primitive readers whose results an
/// attacker-controlled file determines.
const TAINT_SOURCES: &[&str] = &[
    "read_varint",
    "read_zigzag",
    "read_u16_le",
    "read_u32_le",
    "read_u64_le",
    "read_i64_le",
];

/// How a tainted variable's comparison partner sanitizes (or fails
/// to): comparing against a literal/const/`.len()` bounds the value;
/// comparing against another decoded length proves nothing.
enum Cmp {
    Always,
    Ident(String),
}

enum TaintEv {
    Taint,
    Clear,
    Sanitize(Cmp),
}

/// `untrusted-length`: decoded lengths must be bounded before they
/// size an allocation.
///
/// Intraprocedural and syntactic: a `let` whose right-hand side calls
/// a [`TAINT_SOURCES`] reader taints the binding; a comparison against
/// a trusted bound (literal, `UPPER_CASE` const, `.len()`, any
/// untainted expression) or an inline `.min(…)`/`.clamp(…)` sanitizes
/// it; `with_capacity`/`reserve`/`vec![…; n]` sized by a still-tainted
/// value is a finding. Comparing one decoded length against another
/// decoded length does *not* sanitize — both came from the same
/// untrusted file.
fn untrusted_length(ws: &WorkspaceFacts, allowlist: &Allowlist, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !is_decode_path(&file.rel_s)
            || is_test_tree(&file.rel_s)
            || allowlist.exempts("untrusted-length", &file.rel)
        {
            continue;
        }
        for f in &file.syntax.fns {
            let Some((lo, hi)) = f.body else { continue };
            if file.in_test_span(f.line) {
                continue;
            }
            untrusted_length_in_body(file, lo, hi.min(file.sig.len()), diags);
        }
    }
}

fn untrusted_length_in_body(file: &FileFacts, lo: usize, hi: usize, diags: &mut Vec<Diagnostic>) {
    let is_lower_ident = |i: usize| {
        file.s(i).kind == Kind::Ident
            && file
                .stext(i)
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
    };
    // Pass 1: taint/clear events from `let` statements (`let n = …;`,
    // `let Ok(n)/Some(n) = …`).
    let mut events: Vec<(u32, String, TaintEv)> = Vec::new();
    for i in lo..hi {
        if file.stext(i) != "let" || file.s(i).kind != Kind::Ident {
            continue;
        }
        let mut j = i + 1;
        if j < hi && file.stext(j) == "mut" {
            j += 1;
        }
        let name_at = if j < hi && is_lower_ident(j) {
            Some(j)
        } else if j + 3 < hi
            && matches!(file.stext(j), "Some" | "Ok")
            && file.stext(j + 1) == "("
            && is_lower_ident(j + 2)
            && file.stext(j + 3) == ")"
        {
            Some(j + 2)
        } else {
            None
        };
        let Some(name_at) = name_at else { continue };
        // The `=` introducing the initializer, then its extent to the
        // statement's `;` (or an `else`/`{` for let-else / if-let).
        let mut k = name_at + 1;
        let mut depth = 0i32;
        while k < hi {
            match file.stext(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && file.stext(k + 1) != "=" => break,
                ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if k >= hi || file.stext(k) != "=" {
            continue;
        }
        let mut has_source = false;
        let mut has_clamp = false;
        let mut m = k + 1;
        let mut depth = 0i32;
        while m < hi {
            match file.stext(m) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                "." if m + 2 < hi
                    && matches!(file.stext(m + 1), "min" | "clamp")
                    && file.stext(m + 2) == "(" =>
                {
                    has_clamp = true;
                }
                t if file.s(m).kind == Kind::Ident && TAINT_SOURCES.contains(&t) => {
                    has_source = true;
                }
                _ => {}
            }
            if depth < 0 {
                break;
            }
            m += 1;
        }
        let name = file.stext(name_at).to_owned();
        let line = file.s(name_at).line;
        if has_source && !has_clamp {
            events.push((line, name, TaintEv::Taint));
        } else {
            events.push((line, name, TaintEv::Clear));
        }
    }
    // Pass 2: sanitizing comparisons (`n < LIMIT`, `buf.len() < n`,
    // `n == expected`).
    for k in lo + 1..hi {
        let (left, right) = match file.stext(k) {
            "<" | ">" => {
                let r = if k + 1 < hi && file.stext(k + 1) == "=" {
                    k + 2
                } else {
                    k + 1
                };
                (k - 1, r)
            }
            "=" if k + 2 < hi
                && file.stext(k + 1) == "="
                && !matches!(file.stext(k - 1), "=" | "!" | "<" | ">") =>
            {
                (k - 1, k + 2)
            }
            _ => continue,
        };
        if right >= hi {
            continue;
        }
        for (side, other) in [(left, right), (right, left)] {
            if !is_lower_ident(side) {
                continue;
            }
            let cmp = if is_lower_ident(other)
                && !(other + 2 < hi
                    && file.stext(other + 1) == "."
                    && file.stext(other + 2) == "len")
            {
                Cmp::Ident(file.stext(other).to_owned())
            } else {
                Cmp::Always
            };
            events.push((
                file.s(side).line,
                file.stext(side).to_owned(),
                TaintEv::Sanitize(cmp),
            ));
        }
    }
    // Pass 3: allocation sinks.
    let mut k = lo;
    while k < hi {
        // `Vec::with_capacity(n)` / `.with_capacity(n)` / `.reserve(n)`
        // — the size expression starts right after the `(`.
        let is_cap_call = (file.stext(k) == "with_capacity"
            && k > 0
            && (file.stext(k - 1) == "." || (k >= 2 && file.stext(k - 1) == ":")))
            || (matches!(file.stext(k), "reserve" | "reserve_exact")
                && k > 0
                && file.stext(k - 1) == ".");
        let (args, sink_line) = if is_cap_call && k + 1 < hi && file.stext(k + 1) == "(" {
            let close = close_from(file, k + 1, hi);
            ((k + 2, close), file.s(k).line)
        } else if file.stext(k) == "vec"
            && k + 2 < hi
            && file.stext(k + 1) == "!"
            && matches!(file.stext(k + 2), "[" | "(")
        {
            // `vec![elem; n]` — the length is the part after the
            // top-level `;`.
            let close = close_from(file, k + 2, hi);
            let mut semi = None;
            let mut depth = 0i32;
            for m in k + 3..close {
                match file.stext(m) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => {
                        semi = Some(m);
                        break;
                    }
                    _ => {}
                }
            }
            match semi {
                Some(semi) => ((semi + 1, close), file.s(k).line),
                None => {
                    k += 1;
                    continue;
                }
            }
        } else {
            k += 1;
            continue;
        };
        k = args.1.max(k + 1);
        if file.in_test_span(sink_line) || file.line_allowed("untrusted-length", sink_line) {
            continue;
        }
        // An inline `.min(…)`/`.clamp(…)` in the size expression bounds
        // it regardless of taint.
        let mut clamped = false;
        let mut direct_source = false;
        let mut tainted_var: Option<String> = None;
        for m in args.0..args.1 {
            if file.stext(m) == "."
                && m + 2 < args.1
                && matches!(file.stext(m + 1), "min" | "clamp")
                && file.stext(m + 2) == "("
            {
                clamped = true;
            }
            if file.s(m).kind == Kind::Ident {
                if TAINT_SOURCES.contains(&file.stext(m)) {
                    direct_source = true;
                }
                if tainted_var.is_none()
                    && is_lower_ident(m)
                    && is_tainted_at(&events, file.stext(m), sink_line, 0)
                {
                    tainted_var = Some(file.stext(m).to_owned());
                }
            }
        }
        if clamped {
            continue;
        }
        let message = if let Some(name) = tainted_var {
            format!(
                "allocation sized by decoded length `{name}` with no bound — \
                 clamp (`.min(…)`) or validate against a trusted limit first, \
                 or mark `// analyze: allow(untrusted-length): <why>`"
            )
        } else if direct_source {
            "allocation sized directly by a decoded length with no bound — \
             clamp (`.min(…)`) before allocating, or mark \
             `// analyze: allow(untrusted-length): <why>`"
                .to_owned()
        } else {
            continue;
        };
        diags.push(Diagnostic {
            file: file.rel.clone(),
            line: sink_line,
            rule: "untrusted-length",
            message,
        });
    }
}

/// Whether `name` is tainted at `line` given the body's event list.
/// `depth` caps the recursion when two tainted values are compared
/// against each other (neither bounds the other).
fn is_tainted_at(events: &[(u32, String, TaintEv)], name: &str, line: u32, depth: u8) -> bool {
    let mut tainted = false;
    let mut taint_line = 0u32;
    for (l, n, ev) in events {
        if n != name || *l > line {
            continue;
        }
        match ev {
            TaintEv::Taint => {
                tainted = true;
                taint_line = *l;
            }
            TaintEv::Clear => tainted = false,
            TaintEv::Sanitize(_) => {}
        }
    }
    if !tainted {
        return false;
    }
    for (l, n, ev) in events {
        if n != name || *l < taint_line || *l > line {
            continue;
        }
        if let TaintEv::Sanitize(cmp) = ev {
            let bounds = match cmp {
                Cmp::Always => true,
                Cmp::Ident(other) => depth >= 2 || !is_tainted_at(events, other, *l, depth + 1),
            };
            if bounds {
                return false;
            }
        }
    }
    true
}

/// Finds the sig index of the delimiter matching the one at `open`,
/// bounded by `hi`.
fn close_from(file: &FileFacts, open: usize, hi: usize) -> usize {
    let open_text = file.stext(open).to_owned();
    let want = match open_text.as_str() {
        "(" => ")",
        "[" => "]",
        _ => "}",
    };
    let mut depth = 0i32;
    for j in open..hi {
        let t = file.stext(j);
        if t == open_text {
            depth += 1;
        } else if t == want {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    hi
}

/// Replaces every `{…}` hole in a format!-style key literal with the
/// canonical `{}` so hole contents (named args, format specs) don't
/// affect matching.
fn normalize_holes(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '{' {
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
            }
            out.push_str("{}");
        } else {
            out.push(c);
        }
    }
    out
}

/// Whether a (hole-normalized) string literal plausibly is a metric
/// key: lowercase dotted segments, no spaces, not a file name.
fn looks_like_metric_key(v: &str) -> bool {
    const FILE_EXTS: &[&str] = &[
        "rs", "json", "jsonl", "schema", "toml", "md", "orp", "txt", "lock", "yml", "yaml", "tmp",
    ];
    if !v.contains('.') {
        return false;
    }
    if !v.chars().all(|c| {
        c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_' | '-' | '{' | '}')
    }) {
        return false;
    }
    let segs: Vec<&str> = v.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| !s.is_empty())
        && segs.last().is_some_and(|s| !FILE_EXTS.contains(s))
}

fn kind_name(kind: KeyKind) -> &'static str {
    match kind {
        KeyKind::Counter => "counter",
        KeyKind::Observe => "observe",
        KeyKind::Span => "span",
        KeyKind::Ratio => "ratio",
    }
}

/// Whether a code-side key/template is covered by the vocabulary.
fn metric_key_ok(vocab: &Vocabulary, kind: Option<KeyKind>, template: &str) -> bool {
    if template.contains("{}") {
        vocab.template_matches(kind, template)
    } else {
        match kind {
            Some(k) => vocab.matches(k, template),
            None => [
                KeyKind::Counter,
                KeyKind::Observe,
                KeyKind::Span,
                KeyKind::Ratio,
            ]
            .iter()
            .any(|&k| vocab.matches(k, template)),
        }
    }
}

/// `metric-key`: code labels and the schema vocabulary must agree in
/// both directions.
///
/// Forward: every literal key passed to `Recorder::counter`/
/// `observe`/`span`, and every `opt.*`/`grammar.*`/`io.*` label
/// anywhere in first-party code, must be enumerated in
/// `schemas/run_report.schema`. Backward: every `key` line in the
/// vocabulary must have at least one witnessing label in code —
/// vocabulary entries for metrics nobody emits are dead weight that
/// silently green-lights typos.
fn metric_key(
    ws: &WorkspaceFacts,
    allowlist: &Allowlist,
    vocab: &Vocabulary,
    schema_rel: &Path,
    diags: &mut Vec<Diagnostic>,
) {
    const RECORDER_METHODS: &[(&str, KeyKind)] = &[
        ("counter", KeyKind::Counter),
        ("observe", KeyKind::Observe),
        ("span", KeyKind::Span),
    ];
    const ENFORCED_PREFIXES: &[&str] = &["opt.", "grammar.", "io."];
    // No vocabulary at this root (fixture trees, bootstrap): idle
    // rather than flag every key against an empty set.
    if vocab.keys.is_empty() {
        return;
    }
    let mut witnesses: HashSet<String> = HashSet::new();
    for file in &ws.files {
        if !is_first_party(&file.rel_s)
            || is_test_tree(&file.rel_s)
            || file.rel_s.starts_with("crates/xtask/")
        {
            continue;
        }
        let exempt = allowlist.exempts("metric-key", &file.rel);
        let mut recorder_lits: HashSet<usize> = HashSet::new();
        for call in &file.syntax.calls {
            let Some(&(_, kind)) = RECORDER_METHODS
                .iter()
                .find(|(m, _)| call.is_method && !call.is_macro && call.name == *m)
            else {
                continue;
            };
            if file.in_test_span(call.line) {
                continue;
            }
            // The key is the first argument; take its first string
            // literal (covers both `"k"` and `&format!("k.{}", …)`).
            let first_arg_end = {
                let mut depth = 0i32;
                let mut end = call.args.1;
                for m in call.args.0..call.args.1 {
                    match file.stext(m) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            end = m;
                            break;
                        }
                        _ => {}
                    }
                }
                end
            };
            let Some(lit) = file
                .syntax
                .strings
                .iter()
                .find(|l| l.sig_index >= call.args.0 && l.sig_index < first_arg_end)
            else {
                continue;
            };
            recorder_lits.insert(lit.sig_index);
            let template = normalize_holes(&lit.value);
            witnesses.insert(template.clone());
            if exempt
                || file.line_allowed("metric-key", lit.line)
                || metric_key_ok(vocab, Some(kind), &template)
            {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: lit.line,
                rule: "metric-key",
                message: format!(
                    "{} key \"{template}\" is not in the schemas/run_report.schema \
                     vocabulary — add a `key` line there or fix the label",
                    kind_name(kind)
                ),
            });
        }
        for lit in &file.syntax.strings {
            if recorder_lits.contains(&lit.sig_index) || file.in_test_span(lit.line) {
                continue;
            }
            let template = normalize_holes(&lit.value);
            if !looks_like_metric_key(&template) {
                continue;
            }
            witnesses.insert(template.clone());
            if !ENFORCED_PREFIXES.iter().any(|p| template.starts_with(p)) {
                continue;
            }
            if exempt
                || file.line_allowed("metric-key", lit.line)
                || metric_key_ok(vocab, None, &template)
            {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: lit.line,
                rule: "metric-key",
                message: format!(
                    "label \"{template}\" is not in the schemas/run_report.schema \
                     vocabulary — add a `key` line there or fix the label"
                ),
            });
        }
    }
    if allowlist.exempts("metric-key", schema_rel) {
        return;
    }
    for kp in &vocab.keys {
        if !witnesses.iter().any(|t| vocab.witnesses(&kp.pattern, t)) {
            diags.push(Diagnostic {
                file: schema_rel.to_path_buf(),
                line: kp.line,
                rule: "metric-key",
                message: format!(
                    "vocabulary {} key `{}` has no corresponding label in code — \
                     remove the entry or wire up the metric",
                    kind_name(kp.kind),
                    kp.pattern
                ),
            });
        }
    }
}

/// `codec-pair`: every chunk tag with an encoder must have the full
/// support set — a decoder, an inspect arm in the CLI, and a
/// corruption test.
///
/// Evidence is collected from where each `ChunkTag::NAME` (or a
/// `ProfileKind` variant whose `primary_chunk` is that tag) is
/// referenced: inside a fn whose name carries a write-side verb →
/// encoder; read-side verb → decoder; any reference in `src/bin/**` →
/// inspect; any reference in a test context that also speaks the
/// corruption vocabulary (corrupt/truncate/flip/torn/damage/fault) →
/// corruption test.
fn codec_pair(ws: &WorkspaceFacts, allowlist: &Allowlist, diags: &mut Vec<Diagnostic>) {
    const ENCODE_VERBS: &[&str] = &[
        "write", "encode", "emit", "append", "save", "seal", "finish", "persist",
    ];
    const DECODE_SIDE_VERBS: &[&str] = &[
        "read", "decode", "parse", "restore", "resume", "load", "open", "skip", "inspect", "next",
    ];
    const CORRUPTION_WORDS: &[&str] = &["corrupt", "truncat", "flip", "torn", "damage", "fault"];
    let chunk_rel = Path::new("crates/format/src/chunk.rs");
    if ws.chunk_tags.is_empty() || allowlist.exempts("codec-pair", chunk_rel) {
        return;
    }
    let verb_in = |name: &str, verbs: &[&str]| name.split('_').any(|seg| verbs.contains(&seg));

    #[derive(Default)]
    struct Evidence {
        encoder: bool,
        decoder: bool,
        inspect: bool,
        corruption: bool,
    }
    let mut evidence: HashMap<&str, Evidence> = ws
        .chunk_tags
        .iter()
        .map(|(t, _)| (t.as_str(), Evidence::default()))
        .collect();

    for file in &ws.files {
        let in_bin = file.rel_s.starts_with("src/bin/");
        let codec_scope = is_first_party(&file.rel_s)
            && !is_test_tree(&file.rel_s)
            && !file.rel_s.starts_with("crates/xtask/");
        let test_region = is_test_tree(&file.rel_s) || !file.test_spans.is_empty();
        let speaks_corruption = test_region
            && (CORRUPTION_WORDS
                .iter()
                .any(|w| file.rel_s.to_lowercase().contains(w))
                || file.tokens.iter().any(|t| {
                    let lower = t.text.to_lowercase();
                    CORRUPTION_WORDS.iter().any(|w| lower.contains(w))
                }));
        for r in &file.syntax.path_refs {
            let tags: Vec<&str> = if r.qualifier == "ChunkTag" {
                vec![r.name.as_str()]
            } else {
                ws.primary_tag_of(&r.name).into_iter().collect()
            };
            let fn_name = r
                .enclosing
                .map(|f| file.syntax.fns[f].name.as_str())
                .unwrap_or_default();
            let in_test = file.in_test_span(r.line);
            for tag in tags {
                let Some(ev) = evidence.get_mut(tag) else {
                    continue;
                };
                if codec_scope && !in_test {
                    if verb_in(fn_name, ENCODE_VERBS) {
                        ev.encoder = true;
                    }
                    if verb_in(fn_name, DECODE_SIDE_VERBS) {
                        ev.decoder = true;
                    }
                }
                if in_bin {
                    ev.inspect = true;
                }
                if speaks_corruption {
                    ev.corruption = true;
                }
            }
        }
    }

    let chunk_facts = ws
        .files
        .iter()
        .find(|f| f.rel_s == "crates/format/src/chunk.rs");
    for (tag, line) in &ws.chunk_tags {
        let ev = &evidence[tag.as_str()];
        if !ev.encoder {
            continue;
        }
        if chunk_facts.is_some_and(|f| f.line_allowed("codec-pair", *line)) {
            continue;
        }
        let mut missing = Vec::new();
        if !ev.decoder {
            missing.push("a decoder (fn with a read/decode/parse/… verb referencing it)");
        }
        if !ev.inspect {
            missing.push("an inspect arm (reference under src/bin/)");
        }
        if !ev.corruption {
            missing.push("a corruption test (test code naming corrupt/truncate/flip/torn)");
        }
        if missing.is_empty() {
            continue;
        }
        diags.push(Diagnostic {
            file: chunk_rel.to_path_buf(),
            line: *line,
            rule: "codec-pair",
            message: format!(
                "ChunkTag::{tag} has an encoder but lacks {} — every encoded \
                 chunk needs its full decode/inspect/corruption support, or mark \
                 `// analyze: allow(codec-pair): <why>` at the declaration",
                missing.join(", ")
            ),
        });
    }
}

/// `error-type`: public decode-path functions surface failures as
/// `Result` with a `FormatError`-family error — never `Option`, never
/// nothing.
fn error_type(ws: &WorkspaceFacts, allowlist: &Allowlist, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !is_decode_path(&file.rel_s)
            || is_test_tree(&file.rel_s)
            || allowlist.exempts("error-type", &file.rel)
        {
            continue;
        }
        for f in &file.syntax.fns {
            if !f.is_pub
                || !has_decode_verb(&f.name)
                || file.in_test_span(f.line)
                || file.line_allowed("error-type", f.line)
            {
                continue;
            }
            let Some(problem) = decode_ret_problem(&f.ret) else {
                continue;
            };
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: f.line,
                rule: "error-type",
                message: format!("pub decode-path fn `{}` {problem}", f.name),
            });
        }
    }
}

/// Classifies a decode fn's return-type tokens; `Some` carries the
/// problem description.
fn decode_ret_problem(ret: &[String]) -> Option<String> {
    let Some(rpos) = ret.iter().position(|t| t == "Result") else {
        if ret.iter().any(|t| t == "Option") {
            return Some(
                "returns Option — a caller cannot tell absence from corruption; \
                 return Result with a FormatError-family error"
                    .to_owned(),
            );
        }
        let shown = if ret.is_empty() {
            "()".to_owned()
        } else {
            ret.join(" ")
        };
        return Some(format!(
            "returns `{shown}` — decode failures must surface as a \
             FormatError-family Result"
        ));
    };
    // `io::Result<T>` carries io::Error implicitly — accepted at the
    // I/O boundary.
    if rpos >= 3 && ret[rpos - 1] == ":" && ret[rpos - 2] == ":" && ret[rpos - 3] == "io" {
        return None;
    }
    let rest = &ret[rpos + 1..];
    if rest.first().map(String::as_str) != Some("<") {
        return None; // an aliased Result with a pinned error type
    }
    let mut depth = 0i32;
    let mut args: Vec<Vec<&str>> = vec![Vec::new()];
    for t in rest {
        match t.as_str() {
            "<" => {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            }
            ">" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => {
                args.push(Vec::new());
                continue;
            }
            _ => {}
        }
        if let Some(last) = args.last_mut() {
            last.push(t);
        }
    }
    if args.len() < 2 {
        return None; // single-parameter Result alias
    }
    let err = args.last()?;
    if err
        .iter()
        .any(|t| t.ends_with("Error") || *t == "Infallible")
    {
        return None;
    }
    Some(format!(
        "returns Result with error type `{}` — use a FormatError-family \
         error (or io::Error at the I/O boundary)",
        err.join("")
    ))
}
