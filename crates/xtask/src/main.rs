//! Workspace automation entry point: `cargo xtask <command>`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(args),
        Some("validate-report") => validate_report(args),
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  analyze [--format text|json|sarif] [--check-baseline] [--write-baseline]");
    eprintln!("            run the repo-specific static-verification rules;");
    eprintln!("            --check-baseline fails only on findings missing from");
    eprintln!("            analyze.baseline, --write-baseline regenerates that file");
    eprintln!("  validate-report <report.json> [--schema <path>]");
    eprintln!("            check a --metrics-out document against the RunReport schema");
}

fn analyze(args: impl Iterator<Item = String>) -> ExitCode {
    let mut format = Format::Text;
    let mut check_baseline = false;
    let mut write_baseline = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "--format expects text|json|sarif, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--check-baseline" => check_baseline = true,
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let started = Instant::now();
    let diags = match xtask::analyze(&root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if write_baseline {
        let path = root.join("analyze.baseline");
        if let Err(e) = std::fs::write(&path, xtask::baseline::render(&diags)) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "analyze: wrote {} finding(s) to {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let accepted = if check_baseline {
        let text = std::fs::read_to_string(root.join("analyze.baseline")).unwrap_or_default();
        xtask::baseline::parse(&text)
    } else {
        std::collections::HashSet::new()
    };
    let (new, baselined) = xtask::baseline::split(&diags, &accepted);
    let shown: Vec<xtask::Diagnostic> = new.iter().map(|d| (*d).clone()).collect();
    match format {
        Format::Text => {
            for d in &shown {
                println!("{d}");
            }
            if shown.is_empty() {
                println!("analyze: clean");
            } else {
                println!("analyze: {} violation(s)", shown.len());
            }
        }
        Format::Json => print!("{}", xtask::output::to_json(&shown)),
        Format::Sarif => print!("{}", xtask::output::to_sarif(&shown)),
    }
    // Timing and baseline accounting go to stderr so the stdout
    // document stays machine-readable.
    eprintln!(
        "analyze: {} new finding(s), {} baselined, {:.2}s",
        shown.len(),
        baselined.len(),
        started.elapsed().as_secs_f64()
    );
    if shown.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Text,
    Json,
    Sarif,
}

fn validate_report(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut file = None;
    let mut schema = None;
    while let Some(arg) = args.next() {
        if arg == "--schema" {
            match args.next() {
                Some(path) => schema = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--schema expects a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if file.is_none() {
            file = Some(PathBuf::from(arg));
        } else {
            eprintln!("unexpected argument '{arg}'");
            usage();
            return ExitCode::FAILURE;
        }
    }
    let Some(file) = file else {
        eprintln!("validate-report needs the report file to check");
        usage();
        return ExitCode::FAILURE;
    };
    let schema = schema.unwrap_or_else(|| workspace_root().join("schemas/run_report.schema"));
    match xtask::validate_report(&file, &schema) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("{p}");
            }
            eprintln!("validate-report: {} problem(s)", problems.len());
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
