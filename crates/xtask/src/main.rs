//! Workspace automation entry point: `cargo xtask <command>`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(),
        Some("validate-report") => validate_report(args),
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  analyze   run the repo-specific static-verification rules");
    eprintln!("  validate-report <report.json> [--schema <path>]");
    eprintln!("            check a --metrics-out document against the RunReport schema");
}

fn analyze() -> ExitCode {
    let root = workspace_root();
    let diags = xtask::analyze(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("analyze: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn validate_report(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut file = None;
    let mut schema = None;
    while let Some(arg) = args.next() {
        if arg == "--schema" {
            match args.next() {
                Some(path) => schema = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--schema expects a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if file.is_none() {
            file = Some(PathBuf::from(arg));
        } else {
            eprintln!("unexpected argument '{arg}'");
            usage();
            return ExitCode::FAILURE;
        }
    }
    let Some(file) = file else {
        eprintln!("validate-report needs the report file to check");
        usage();
        return ExitCode::FAILURE;
    };
    let schema = schema.unwrap_or_else(|| workspace_root().join("schemas/run_report.schema"));
    match xtask::validate_report(&file, &schema) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("{p}");
            }
            eprintln!("validate-report: {} problem(s)", problems.len());
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
