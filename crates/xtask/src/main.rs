//! Workspace automation entry point: `cargo xtask <command>`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(),
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask analyze");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  analyze   run the repo-specific static-verification rules");
}

fn analyze() -> ExitCode {
    let root = workspace_root();
    let diags = xtask::analyze(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("analyze: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
