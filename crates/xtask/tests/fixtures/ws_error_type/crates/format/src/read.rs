//! Fixture: decode entry points must surface failures as
//! FormatError-family Results.

pub fn read_header(bytes: &[u8]) -> Option<u32> {
    bytes.first().map(|&b| u32::from(b))
}

pub fn read_version(bytes: &[u8]) -> Result<u32, FormatError> {
    bytes
        .first()
        .map(|&b| u32::from(b))
        .ok_or(FormatError::Truncated)
}

// analyze: allow(error-type): fixture — absence is not corruption here
pub fn read_flags(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}

pub enum FormatError {
    Truncated,
}
