//! Seeded chunk-match violations: a ChunkTag match with no catch-all
//! and one whose catch-all silently drops. Checked under the pretend
//! path `crates/report/src/seeded.rs`.

pub fn no_catch_all(tag: ChunkTag) -> &'static str {
    match tag {
        // line 6: match over ChunkTag without a catch-all
        ChunkTag::META => "meta",
        ChunkTag::TRACE => "trace",
    }
}

pub fn empty_catch_all(tag: ChunkTag) {
    match tag {
        ChunkTag::META => handle_meta(),
        _ => {} // line 16: silent drop
    }
}

pub fn good(tag: ChunkTag) -> &'static str {
    match tag {
        ChunkTag::META => "meta",
        other => report_unknown(other),
    }
}

pub fn unrelated(kind: ProfileKind) -> ChunkTag {
    // A match that merely *produces* tags is not a match over tags.
    match kind {
        ProfileKind::Trace => ChunkTag::TRACE,
        ProfileKind::Grammar => ChunkTag::GRAMMAR,
    }
}
