//! Seeded chunk-registry violation: a declared tag missing from the
//! KNOWN registry (PLAN is registered, ORPHAN is not). Checked under
//! the pretend path `crates/format/src/chunk.rs`.

pub struct ChunkTag(pub u32);

impl ChunkTag {
    pub const META: ChunkTag = ChunkTag(1);
    pub const PLAN: ChunkTag = ChunkTag(9);
    pub const ORPHAN: ChunkTag = ChunkTag(3); // line 10: not registered

    pub const KNOWN: &'static [ChunkTag] = &[ChunkTag::META, ChunkTag::PLAN];
}
