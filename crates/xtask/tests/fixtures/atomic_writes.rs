//! Seeded violations for the atomic-artifact-writes rule.
use std::fs::File;

fn seeded(json: &str) -> std::io::Result<()> {
    let _f = File::create("results/out.json")?;
    std::fs::write("BENCH_seeded.json", json)?;
    // A comment mentioning File::create or fs::write must not match.
    let _g = std::fs::File::create_new("profile.orp")?;
    // analyze: allow(atomic-artifact-writes): probe file removed before exit
    let _h = File::create("probe.tmp")?;
    let _input = std::fs::read_to_string("in.json")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_writes_in_tests_are_out_of_scope() {
        std::fs::write("scratch.json", "{}").unwrap();
    }
}
