//! Fixture: allocations sized by decoded lengths.

pub fn read_block(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let n = read_varint(r)?;
    let mut buf = Vec::with_capacity(n as usize);
    buf.clear();
    Ok(buf)
}

pub fn read_block_clamped(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let n = read_varint(r)?;
    let mut buf = Vec::with_capacity((n as usize).min(4096));
    buf.clear();
    Ok(buf)
}

pub fn read_block_waived(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let n = read_varint(r)?;
    // analyze: allow(untrusted-length): fixture — the caller bounds n
    let mut buf = Vec::with_capacity(n as usize);
    buf.clear();
    Ok(buf)
}

fn read_varint(_r: &mut impl std::io::Read) -> std::io::Result<u64> {
    Ok(0)
}
