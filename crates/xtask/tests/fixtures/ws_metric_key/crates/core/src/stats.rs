//! Fixture: recorder keys checked against the vocabulary.

pub fn publish(rec: &mut Recorder) {
    rec.counter("stats.good", 1);
    rec.counter("stats.bad", 2);
    // analyze: allow(metric-key): fixture — key validated elsewhere
    rec.counter("stats.waived", 3);
}
