//! Seeded le-bytes violations: hand-rolled byte-order framing outside
//! `orp-format`. Checked under the pretend path
//! `crates/leap/src/seeded.rs`.

pub fn frame(v: u64) -> [u8; 8] {
    v.to_le_bytes() // line 6: to_le_bytes outside orp-format
}

pub fn unframe(b: [u8; 8]) -> u64 {
    u64::from_le_bytes(b) // line 10: from_le_bytes outside orp-format
}

// A comment mentioning from_le_bytes must not count, nor must the
// string below.
pub const DOC: &str = "call from_le_bytes here";
