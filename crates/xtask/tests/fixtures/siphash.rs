//! Seeded no-siphash-in-hot-paths violations: default-hasher map
//! construction in a grammar hot path, plus the exemptions the rule
//! must honor. Checked by `tests/analyze_detects.rs` under the pretend
//! path `crates/sequitur/src/seeded_siphash.rs`.

use std::collections::{HashMap, HashSet};

pub fn digram_index() -> HashMap<(u64, u64), u32> {
    HashMap::new() // line 9: HashMap::new
}

pub fn preallocated(n: usize) -> HashMap<(u64, u64), u32> {
    HashMap::with_capacity(n) // line 13: HashMap::with_capacity
}

pub fn symbol_set() -> HashSet<u64> {
    HashSet::new() // line 17: HashSet::new
}

pub fn explicit_hasher_is_fine() -> HashMap<(u64, u64), u32, crate::FxBuildHasher> {
    // `default()` works with any hasher annotation, so it can't pin
    // SipHash; HashMap::new in a comment must not be flagged either.
    HashMap::default()
}

pub fn exempted_cold_path() -> HashMap<String, u64> {
    // analyze: allow(no-siphash-in-hot-paths): one-shot report table, not per-symbol
    HashMap::new() // exempted by the marker above
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_build_siphash_maps() {
        // Differential tests compare against the default hasher.
        let _: HashMap<u64, u64> = HashMap::new();
    }
}
