//! Fixture: encoders and decoders referencing the chunk tags.

use crate::chunk::ChunkTag;

pub fn write_full(out: &mut Vec<u32>) {
    out.push(ChunkTag::FULL.0);
}

pub fn read_full(data: &[u32]) -> bool {
    data.first() == Some(&ChunkTag::FULL.0)
}

pub fn write_bare(out: &mut Vec<u32>) {
    out.push(ChunkTag::BARE.0);
}

pub fn write_waiv(out: &mut Vec<u32>) {
    out.push(ChunkTag::WAIV.0);
}
