//! Fixture: chunk tags with varying levels of codec support.

pub struct ChunkTag(pub u32);

impl ChunkTag {
    /// Full support: encoder, decoder, inspect arm, corruption test.
    pub const FULL: ChunkTag = ChunkTag(1);
    /// Encoder only — the codec-pair violation.
    pub const BARE: ChunkTag = ChunkTag(2);
    /// Encoder only, but waived with a reasoned marker.
    // analyze: allow(codec-pair): fixture — consumed inline by the reader
    pub const WAIV: ChunkTag = ChunkTag(3);

    pub const KNOWN: &'static [ChunkTag] = &[ChunkTag::FULL, ChunkTag::BARE, ChunkTag::WAIV];
}
