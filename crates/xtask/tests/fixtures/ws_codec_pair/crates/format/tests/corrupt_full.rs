//! Fixture corruption test: truncated FULL chunks must be rejected.

#[test]
fn corrupt_full_chunk_is_rejected() {
    let data = [ChunkTag::FULL.0];
    assert!(!data.is_empty(), "truncated chunk fixture");
}
