#![forbid(unsafe_code)]
//! Fixture inspect arm: the CLI names the fully-supported tag.

fn main() {
    println!("{}", ChunkTag::FULL.0);
}
