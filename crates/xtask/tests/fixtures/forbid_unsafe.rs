//! Seeded forbid-unsafe violation: a crate root with no
//! `#![forbid(unsafe_code)]`. Checked under the pretend path
//! `crates/report/src/lib.rs`.

pub fn nothing() {}
