//! Fixture: a decode entry point whose helper chain (outside the
//! decode tree) reaches a panic.

pub fn read_profile(bytes: &[u8]) -> std::io::Result<u64> {
    Ok(total_len(bytes))
}
