//! Fixture helpers outside the decode tree.

pub fn total_len(bytes: &[u8]) -> u64 {
    checked_sum(bytes) + capped(bytes)
}

fn checked_sum(bytes: &[u8]) -> u64 {
    let mut total = 0u64;
    for &b in bytes {
        total = total.checked_add(u64::from(b)).expect("sum fits u64");
    }
    total
}

fn capped(bytes: &[u8]) -> u64 {
    // analyze: allow(panic-reachability): fixture — bounded by construction
    u64::try_from(bytes.len()).expect("len fits u64")
}

pub fn orphan(bytes: &[u8]) -> u64 {
    u64::try_from(bytes.len()).expect("never called from a decode entry")
}
