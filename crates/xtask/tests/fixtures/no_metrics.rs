//! Seeded no-metrics-in-decode violations: recorder idents leaking
//! into the wire-format crate, plus the exemptions the rule must
//! honor. Checked by `tests/analyze_detects.rs` under the pretend
//! path `crates/format/src/seeded_metrics.rs`.

use orp_obs::Recorder; // line 6: orp_obs + Recorder

pub fn publish(rec: &mut dyn Recorder, chunks: u64) { // line 8: Recorder
    rec.counter("format.chunks", chunks);
}

pub fn plain_integers_are_fine(chunks: u64) -> u64 {
    // A StatsRecorder mention in a comment must not be flagged.
    chunks
}

pub fn exempted_bridge() {
    // analyze: allow(no-metrics-in-decode): migration shim removed with the v2 container
    let _ = NoopRecorder; // exempted by the marker above
}

pub fn leaked_recorder() {
    let _ = StatsRecorder::new(); // line 23: StatsRecorder
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_name_recorders() {
        // Idents in test spans are out of scope.
        let _ = orp_obs::StatsRecorder::new();
    }
}
