//! Seeded no-panic violations: every construct the rule must catch in
//! a decode path, plus marker and test-span behavior it must honor.
//! Checked by `tests/analyze_detects.rs` under the pretend path
//! `crates/format/src/seeded.rs`.

pub fn decode(buf: &[u8]) -> u32 {
    let first = buf.first().copied().unwrap(); // line 7: unwrap
    let second = buf.get(1).copied().expect("has a second byte"); // line 8: expect
    if first > 9 {
        panic!("bad input"); // line 10: panic!
    }
    let third = buf[2]; // line 12: indexing
    u32::from(first) + u32::from(second) + u32::from(third)
}

pub fn checked_decode(buf: &[u8]) -> u8 {
    // analyze: allow(no-panic): length validated by the caller's header check
    buf[0]
}

pub fn marker_without_reason(buf: &[u8]) -> u8 {
    // analyze: allow(no-panic)
    buf[1] // line 23: the bare marker grants nothing
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u8, 2];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
