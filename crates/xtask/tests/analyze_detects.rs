//! The analyze pass must fail loudly — file:line — on seeded
//! violations, honor its exemption mechanisms, and run clean on this
//! workspace.

use std::path::{Path, PathBuf};

use xtask::rules::{check_file, Allowlist};
use xtask::Diagnostic;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// Runs the rules on a fixture as if it lived at `pretend_path`, with
/// an empty allowlist.
fn run(pretend_path: &str, name: &str) -> Vec<Diagnostic> {
    let empty = Allowlist::load(Path::new("/nonexistent-allow-root"));
    assert!(empty.problems.is_empty());
    check_file(Path::new(pretend_path), &fixture(name), &empty)
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn no_panic_violations_are_reported_with_file_and_line() {
    let diags = run("crates/format/src/seeded.rs", "no_panic.rs");
    assert_eq!(
        lines_of(&diags, "no-panic"),
        vec![7, 8, 10, 12, 23],
        "unwrap, expect, panic!, indexing, and the unreasoned-marker line: {diags:#?}"
    );
    // The bare marker itself is flagged.
    assert_eq!(lines_of(&diags, "allow-marker"), vec![22]);
    // Diagnostics render as file:line so CI output is clickable.
    let first = diags
        .iter()
        .find(|d| d.rule == "no-panic")
        .expect("at least one no-panic diagnostic");
    assert!(
        first
            .to_string()
            .starts_with("crates/format/src/seeded.rs:7: [no-panic]"),
        "got {first}"
    );
}

#[test]
fn reasoned_marker_and_test_spans_are_exempt() {
    let diags = run("crates/format/src/seeded.rs", "no_panic.rs");
    assert!(
        !lines_of(&diags, "no-panic").contains(&18),
        "line 18 carries a reasoned allow marker: {diags:#?}"
    );
    assert!(
        lines_of(&diags, "no-panic").iter().all(|&l| l < 26),
        "nothing inside #[cfg(test)] may be flagged: {diags:#?}"
    );
}

#[test]
fn le_bytes_violations_are_reported() {
    let diags = run("crates/leap/src/seeded.rs", "le_bytes.rs");
    assert_eq!(
        lines_of(&diags, "le-bytes"),
        vec![6, 10],
        "framing calls only — not comments or strings: {diags:#?}"
    );
}

#[test]
fn le_bytes_does_not_apply_inside_orp_format() {
    let diags = run("crates/format/src/seeded_codec.rs", "le_bytes.rs");
    assert!(lines_of(&diags, "le-bytes").is_empty(), "{diags:#?}");
}

#[test]
fn chunk_match_flags_missing_and_empty_catch_alls() {
    let diags = run("crates/report/src/seeded.rs", "chunk_match.rs");
    assert_eq!(
        lines_of(&diags, "chunk-match"),
        vec![6, 16],
        "missing catch-all at 6, silent drop at 16, nothing else: {diags:#?}"
    );
}

#[test]
fn chunk_registry_flags_unregistered_tags() {
    let diags = run("crates/format/src/chunk.rs", "chunk_registry.rs");
    assert_eq!(lines_of(&diags, "chunk-registry"), vec![10], "{diags:#?}");
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "chunk-registry" && d.message.contains("ORPHAN")),
        "{diags:#?}"
    );
}

#[test]
fn forbid_unsafe_flags_bare_crate_roots_and_honors_the_allowlist() {
    let diags = run("crates/report/src/lib.rs", "forbid_unsafe.rs");
    assert_eq!(lines_of(&diags, "forbid-unsafe"), vec![1], "{diags:#?}");

    // Non-roots are out of scope.
    let diags = run("crates/report/src/helpers.rs", "forbid_unsafe.rs");
    assert!(lines_of(&diags, "forbid-unsafe").is_empty(), "{diags:#?}");

    // A reasoned allowlist entry exempts the root...
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/allow_root");
    let allow = Allowlist::load(&root);
    let diags = check_file(
        Path::new("crates/report/src/lib.rs"),
        &fixture("forbid_unsafe.rs"),
        &allow,
    );
    assert!(lines_of(&diags, "forbid-unsafe").is_empty(), "{diags:#?}");

    // ...while malformed allowlist lines are themselves violations.
    let problems: Vec<u32> = allow.problems.iter().map(|d| d.line).collect();
    assert_eq!(
        problems,
        vec![3, 4],
        "unknown rule and missing reason must be flagged: {:#?}",
        allow.problems
    );
    // The reasonless le-bytes line must not act as an exemption.
    let diags = check_file(
        Path::new("crates/leap/src/seeded.rs"),
        &fixture("le_bytes.rs"),
        &allow,
    );
    assert_eq!(lines_of(&diags, "le-bytes"), vec![6, 10]);
}

#[test]
fn no_metrics_in_decode_flags_recorder_idents_in_orp_format() {
    let diags = run("crates/format/src/seeded_metrics.rs", "no_metrics.rs");
    assert_eq!(
        lines_of(&diags, "no-metrics-in-decode"),
        vec![6, 6, 8, 23],
        "the use line (two idents), the signature, and the leaked \
         StatsRecorder — not comments, the exempted line, or test \
         spans: {diags:#?}"
    );
}

#[test]
fn no_metrics_in_decode_only_polices_orp_format() {
    // The same source anywhere else (here: the CLI crate, which
    // legitimately drives recorders) is out of scope.
    let diags = run("src/bin/orprof-cli.rs", "no_metrics.rs");
    assert!(
        lines_of(&diags, "no-metrics-in-decode").is_empty(),
        "{diags:#?}"
    );
}

#[test]
fn atomic_artifact_writes_flags_direct_truncating_writes() {
    let diags = run("crates/report/src/seeded.rs", "atomic_writes.rs");
    assert_eq!(
        lines_of(&diags, "atomic-artifact-writes"),
        vec![5, 6, 8],
        "File::create, fs::write, and File::create_new — not comments, \
         reads, the exempted probe, or test spans: {diags:#?}"
    );
}

#[test]
fn atomic_artifact_writes_exempts_the_durable_primitive_and_tooling() {
    // orp-format hosts AtomicFile itself; xtask is build tooling.
    for pretend in ["crates/format/src/durable.rs", "crates/xtask/src/main.rs"] {
        let diags = run(pretend, "atomic_writes.rs");
        assert!(
            lines_of(&diags, "atomic-artifact-writes").is_empty(),
            "{pretend}: {diags:#?}"
        );
    }
}

#[test]
fn no_siphash_flags_default_hasher_maps_in_grammar_crates() {
    for pretend in [
        "crates/sequitur/src/seeded_siphash.rs",
        "crates/whomp/src/seeded_siphash.rs",
    ] {
        let diags = run(pretend, "siphash.rs");
        assert_eq!(
            lines_of(&diags, "no-siphash-in-hot-paths"),
            vec![9, 13, 17],
            "HashMap::new, HashMap::with_capacity, and HashSet::new — \
             not ::default(), comments, the exempted line, or test \
             spans ({pretend}): {diags:#?}"
        );
    }
}

#[test]
fn no_siphash_only_polices_grammar_hot_paths() {
    // The same source elsewhere (the CLI builds plenty of SipHash maps
    // off the hot path) is out of scope; so are the grammar crates'
    // own integration tests.
    for pretend in [
        "src/bin/orprof-cli.rs",
        "crates/core/src/omc.rs",
        "crates/sequitur/tests/seeded_siphash.rs",
    ] {
        let diags = run(pretend, "siphash.rs");
        assert!(
            lines_of(&diags, "no-siphash-in-hot-paths").is_empty(),
            "{pretend}: {diags:#?}"
        );
    }
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let diags = xtask::analyze(root).expect("workspace root is walkable");
    assert!(
        diags.is_empty(),
        "the workspace must satisfy its own rules:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unwalkable_root_is_a_typed_error_not_a_panic() {
    let missing =
        std::env::temp_dir().join(format!("xtask-analyze-no-such-root-{}", std::process::id()));
    let err = xtask::analyze(&missing).expect_err("missing root must error");
    assert!(
        err.to_string().contains("cannot walk"),
        "unexpected message: {err}"
    );
    assert!(
        std::error::Error::source(&err).is_some(),
        "the io::Error cause must be preserved"
    );
}
