//! `cargo xtask validate-report` must accept a well-formed RunReport
//! and reject documents that drift from the checked-in schema.

use std::path::{Path, PathBuf};

fn repo_schema() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("schemas/run_report.schema")
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("xtask-vr-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writable");
    path
}

const GOOD: &str = concat!(
    "{\n",
    "  \"schema_version\": 1,\n",
    "  \"command\": \"run\",\n",
    "  \"workload\": \"micro.matrix\",\n",
    "  \"profiler\": null,\n",
    "  \"shards\": 1,\n",
    "  \"wall_nanos\": 123456,\n",
    "  \"events\": 42,\n",
    "  \"counters\": {\n    \"omc.memo_hits\": 40\n  },\n",
    "  \"ratios\": {\n    \"omc.memo_hit_rate\": 0.952381\n  },\n",
    "  \"spans\": {\n    \"pipeline.merge\": {\"count\": 1, \"total_nanos\": 10, \"max_nanos\": 10}\n  },\n",
    "  \"shard_counts\": []\n",
    "}\n"
);

#[test]
fn well_formed_report_validates() {
    let file = temp_file("good.json", GOOD);
    let summary = xtask::validate_report(&file, &repo_schema()).expect("valid report");
    assert!(summary.contains("ok"), "{summary}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn schema_drift_is_reported_per_field() {
    // Drop a required field and mistype another.
    let bad = GOOD
        .replace("  \"events\": 42,\n", "")
        .replace("\"shards\": 1", "\"shards\": \"one\"");
    let file = temp_file("drift.json", &bad);
    let problems = xtask::validate_report(&file, &repo_schema()).expect_err("must fail");
    assert!(
        problems
            .iter()
            .any(|p| p.contains("missing required field \"events\"")),
        "{problems:#?}"
    );
    assert!(
        problems.iter().any(|p| p.contains("\"shards\"")),
        "{problems:#?}"
    );
    let _ = std::fs::remove_file(file);
}

#[test]
fn hostile_workload_labels_validate_after_escaping() {
    // A workload label carrying quotes, backslashes, and control
    // characters — escaped exactly the way orp_obs::json_string emits
    // them — must round-trip through the validator as an ordinary
    // string, not break the parse or leak into adjacent fields.
    let hostile = GOOD.replace(
        "\"workload\": \"micro.matrix\"",
        "\"workload\": \"quote\\\" back\\\\ tab\\t nl\\n ctl\\u0001 del\\u007f\"",
    );
    let file = temp_file("hostile.json", &hostile);
    let summary = xtask::validate_report(&file, &repo_schema()).expect("hostile label validates");
    assert!(summary.contains("ok"), "{summary}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn wrong_schema_version_and_garbage_are_rejected() {
    let file = temp_file(
        "v2.json",
        &GOOD.replace("\"schema_version\": 1", "\"schema_version\": 2"),
    );
    let problems = xtask::validate_report(&file, &repo_schema()).expect_err("must fail");
    assert!(
        problems.iter().any(|p| p.contains("\"schema_version\"")),
        "{problems:#?}"
    );
    let _ = std::fs::remove_file(file);

    let file = temp_file("garbage.json", "not json at all");
    let problems = xtask::validate_report(&file, &repo_schema()).expect_err("must fail");
    assert!(problems[0].contains("not valid JSON"), "{problems:#?}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn grammar_counters_in_known_families_validate() {
    let good = GOOD.replace(
        "    \"omc.memo_hits\": 40\n",
        concat!(
            "    \"grammar.workers\": 4,\n",
            "    \"grammar.rules.offset\": 5,\n",
            "    \"grammar.symbols.records\": 120,\n",
            "    \"grammar.batches.instruction\": 9,\n",
            "    \"grammar.stalls.instructions\": 0,\n",
            "    \"omc.memo_hits\": 40\n"
        ),
    );
    let with_span = good.replace(
        "    \"pipeline.merge\": {\"count\": 1, \"total_nanos\": 10, \"max_nanos\": 10}\n",
        concat!(
            "    \"grammar.worker_busy_ns.group\": ",
            "{\"count\": 1, \"total_nanos\": 10, \"max_nanos\": 10}\n"
        ),
    );
    let file = temp_file("grammar-good.json", &with_span);
    let summary = xtask::validate_report(&file, &repo_schema()).expect("valid report");
    assert!(summary.contains("ok"), "{summary}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn opt_ratios_in_known_shapes_validate() {
    let good = GOOD.replace(
        "    \"omc.memo_hit_rate\": 0.952381\n",
        concat!(
            "    \"opt.baseline.l1_miss_rate\": 0.034,\n",
            "    \"opt.planned.l1_delta\": 0.012,\n",
            "    \"opt.colocate.l1_miss_rate\": 0.022,\n",
            "    \"opt.colocate.g2.l1_delta\": 0.011,\n",
            "    \"opt.hot-cold-split.g1.2.l1_delta\": 0.001,\n",
            "    \"omc.memo_hit_rate\": 0.952381\n"
        ),
    );
    let file = temp_file("opt-good.json", &good);
    let summary = xtask::validate_report(&file, &repo_schema()).expect("valid report");
    assert!(summary.contains("ok"), "{summary}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn unknown_opt_ratio_names_are_rejected() {
    // A typo'd transform family and an unknown measurement must both
    // fail — dashboards key on these exact shapes.
    let bad = GOOD.replace(
        "    \"omc.memo_hit_rate\": 0.952381\n",
        concat!(
            "    \"opt.cołocate.l1_miss_rate\": 0.022,\n",
            "    \"opt.planned.miss_rate\": 0.01,\n",
            "    \"opt.pooled.g1.l1_delta\": 0.0\n"
        ),
    );
    let file = temp_file("opt-bad.json", &bad);
    let problems = xtask::validate_report(&file, &repo_schema()).expect_err("must fail");
    for key in [
        "opt.cołocate.l1_miss_rate",
        "opt.planned.miss_rate",
        "opt.pooled.g1.l1_delta",
    ] {
        assert!(
            problems.iter().any(|p| p.contains(key)),
            "{key}: {problems:#?}"
        );
    }
    let _ = std::fs::remove_file(file);
}

#[test]
fn unknown_grammar_metric_names_are_rejected() {
    // A typo'd stream and an unknown family must both fail — these keys
    // feed dashboards by exact name.
    let bad_counter = GOOD.replace(
        "    \"omc.memo_hits\": 40\n",
        "    \"grammar.rules.offsets\": 5,\n    \"grammar.latency.group\": 1\n",
    );
    let file = temp_file("grammar-bad-counter.json", &bad_counter);
    let problems = xtask::validate_report(&file, &repo_schema()).expect_err("must fail");
    assert!(
        problems
            .iter()
            .any(|p| p.contains("\"grammar.rules.offsets\"")),
        "{problems:#?}"
    );
    assert!(
        problems
            .iter()
            .any(|p| p.contains("\"grammar.latency.group\"")),
        "{problems:#?}"
    );
    let _ = std::fs::remove_file(file);

    let bad_span = GOOD.replace(
        "    \"pipeline.merge\": {\"count\": 1, \"total_nanos\": 10, \"max_nanos\": 10}\n",
        concat!(
            "    \"grammar.worker_busy_ns.threads\": ",
            "{\"count\": 1, \"total_nanos\": 10, \"max_nanos\": 10}\n"
        ),
    );
    let file = temp_file("grammar-bad-span.json", &bad_span);
    let problems = xtask::validate_report(&file, &repo_schema()).expect_err("must fail");
    assert!(
        problems
            .iter()
            .any(|p| p.contains("\"grammar.worker_busy_ns.threads\"")),
        "{problems:#?}"
    );
    let _ = std::fs::remove_file(file);
}
