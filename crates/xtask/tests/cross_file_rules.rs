//! The cross-file rules must fire on seeded mini-workspace fixtures,
//! stay quiet on their negative cases, honor reasoned allow markers,
//! and agree with the committed baseline.

use std::path::{Path, PathBuf};

use xtask::Diagnostic;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Vec<Diagnostic> {
    xtask::analyze(&fixture_root(name)).expect("fixture root is walkable")
}

fn by_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

#[test]
fn panic_reachability_reports_the_call_path() {
    let diags = analyze("ws_panic_reach");
    let hits = by_rule(&diags, "panic-reachability");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    let d = hits[0];
    assert_eq!(d.file, Path::new("crates/util/src/math.rs"));
    assert!(
        d.message
            .contains("call path: read_profile -> total_len -> checked_sum"),
        "{d}"
    );
    // The marker-waived helper and the unreachable `orphan` stay quiet.
    assert!(!d.message.contains("capped"), "{d}");
    assert!(
        diags.iter().all(|d| !d.message.contains("orphan")),
        "{diags:#?}"
    );
}

#[test]
fn untrusted_length_flags_only_the_unclamped_allocation() {
    let diags = analyze("ws_untrusted_len");
    let hits = by_rule(&diags, "untrusted-length");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    let d = hits[0];
    assert_eq!(d.file, Path::new("crates/format/src/read.rs"));
    assert_eq!(d.line, 5, "the sink in `read_block`: {d}");
    assert!(d.message.contains("decoded length `n`"), "{d}");
}

#[test]
fn metric_key_checks_both_directions() {
    let diags = analyze("ws_metric_key");
    let hits = by_rule(&diags, "metric-key");
    assert_eq!(hits.len(), 2, "{diags:#?}");
    // Forward: a code label missing from the vocabulary.
    assert!(
        hits.iter().any(|d| {
            d.file == Path::new("crates/core/src/stats.rs") && d.message.contains("\"stats.bad\"")
        }),
        "{diags:#?}"
    );
    // Backward: a vocabulary entry nobody emits, anchored at its line.
    assert!(
        hits.iter().any(|d| {
            d.file == Path::new("schemas/run_report.schema")
                && d.line == 3
                && d.message.contains("`stats.dead`")
        }),
        "{diags:#?}"
    );
    // The in-vocabulary and marker-waived keys stay quiet.
    assert!(
        hits.iter()
            .all(|d| !d.message.contains("stats.good") && !d.message.contains("stats.waived")),
        "{diags:#?}"
    );
}

#[test]
fn codec_pair_demands_decoder_inspect_and_corruption_support() {
    let diags = analyze("ws_codec_pair");
    let hits = by_rule(&diags, "codec-pair");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    let d = hits[0];
    assert_eq!(d.file, Path::new("crates/format/src/chunk.rs"));
    assert!(d.message.contains("ChunkTag::BARE"), "{d}");
    for missing in ["a decoder", "an inspect arm", "a corruption test"] {
        assert!(d.message.contains(missing), "{d}");
    }
}

#[test]
fn error_type_flags_option_returning_decode_fns() {
    let diags = analyze("ws_error_type");
    let hits = by_rule(&diags, "error-type");
    assert_eq!(hits.len(), 1, "{diags:#?}");
    let d = hits[0];
    assert_eq!(d.file, Path::new("crates/format/src/read.rs"));
    assert!(d.message.contains("`read_header`"), "{d}");
    assert!(d.message.contains("returns Option"), "{d}");
}

#[test]
fn committed_baseline_has_no_stale_entries() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let diags = xtask::analyze(root).expect("workspace root is walkable");
    let text =
        std::fs::read_to_string(root.join("analyze.baseline")).expect("analyze.baseline exists");
    let accepted = xtask::baseline::parse(&text);
    let (new, baselined) = xtask::baseline::split(&diags, &accepted);
    assert!(
        new.is_empty(),
        "new findings missing from the baseline:\n{}",
        new.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        baselined.len(),
        accepted.len(),
        "baseline entries no current finding matches — regenerate with \
         `cargo xtask analyze --write-baseline`"
    );
}
