//! Binary serialization for phase-signature profiles.
//!
//! A detector's findings — interval length, threshold, phase
//! representative signatures and the interval-by-interval history —
//! live in a `.orp` container ([`orp_format`]) of kind
//! `PhaseSignatures`. Signature frequencies are `f64` bit patterns
//! (little-endian), sparse entries sorted by instruction id so the
//! payload is deterministic.
//!
//! The partial-interval accumulator is *not* part of the payload: a
//! phase profile is an end-of-run artifact, and a reloaded detector
//! starts at an interval boundary.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use orp_format::{
    read_single_chunk, read_u64_le, read_varint, write_single_chunk, write_u64_le, write_varint,
    FormatError, ProfileKind,
};

use crate::{PhaseDetector, PhaseId, Signature};

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl PhaseDetector {
    /// Serializes the detector's phase signatures and history (no
    /// container framing — [`PhaseDetector::write_to`] adds that).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.interval as u64)?;
        write_u64_le(w, self.threshold.to_bits())?;
        write_varint(w, self.representatives.len() as u64)?;
        for rep in &self.representatives {
            let mut entries: Vec<(u32, f64)> = rep.counts.iter().map(|(&i, &v)| (i, v)).collect();
            entries.sort_unstable_by_key(|&(i, _)| i);
            write_varint(w, entries.len() as u64)?;
            for (instr, freq) in entries {
                write_varint(w, u64::from(instr))?;
                write_u64_le(w, freq.to_bits())?;
            }
        }
        write_varint(w, self.history.len() as u64)?;
        for &phase in &self.history {
            write_varint(w, u64::from(phase.0))?;
        }
        Ok(())
    }

    /// Deserializes a payload written by
    /// [`PhaseDetector::write_payload`]. The restored detector starts
    /// at an interval boundary (no partial accumulator).
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects invalid parameters,
    /// non-finite or negative frequencies, unsorted signature entries
    /// and history entries referencing unknown phases.
    pub fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let interval = usize::try_from(read_varint(r)?)
            .map_err(|_| bad_data("interval does not fit usize"))?;
        if interval == 0 {
            return Err(bad_data("interval must be positive"));
        }
        let threshold = f64::from_bits(read_u64_le(r)?);
        if !(threshold > 0.0 && threshold <= 2.0) {
            return Err(bad_data("threshold must be in (0, 2]"));
        }
        let rep_count = read_varint(r)?;
        let mut representatives = Vec::new();
        for _ in 0..rep_count {
            let entry_count = read_varint(r)?;
            let mut counts = HashMap::new();
            let mut prev: Option<u32> = None;
            for _ in 0..entry_count {
                let instr = u32::try_from(read_varint(r)?)
                    .map_err(|_| bad_data("instruction id does not fit u32"))?;
                if prev.is_some_and(|p| p >= instr) {
                    return Err(bad_data("signature entries not strictly sorted"));
                }
                prev = Some(instr);
                let freq = f64::from_bits(read_u64_le(r)?);
                if !freq.is_finite() || freq < 0.0 {
                    return Err(bad_data(
                        "signature frequency must be finite and non-negative",
                    ));
                }
                counts.insert(instr, freq);
            }
            representatives.push(Signature { counts });
        }
        let history_len = read_varint(r)?;
        let mut history = Vec::new();
        for _ in 0..history_len {
            let phase = read_varint(r)?;
            if phase >= rep_count {
                return Err(bad_data("history references unknown phase"));
            }
            let phase = u32::try_from(phase).map_err(|_| bad_data("phase id exceeds u32 range"))?;
            history.push(PhaseId(phase));
        }
        Ok(PhaseDetector {
            interval,
            threshold,
            current: HashMap::new(),
            filled: 0,
            representatives,
            history,
        })
    }

    /// Writes the detector as a `.orp` container of kind
    /// `PhaseSignatures`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::PhaseSignatures, &payload)
    }

    /// Reads a container written by [`PhaseDetector::write_to`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage (wrong kind, bad
    /// checksum, truncation); payload validation errors from
    /// [`PhaseDetector::read_payload`].
    pub fn read_from(r: &mut impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::PhaseSignatures)?;
        let mut cursor = payload.as_slice();
        let detector = PhaseDetector::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed(
                "trailing bytes after phase-signature payload",
            ));
        }
        Ok(detector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_trace::InstrId;

    fn trained_detector() -> PhaseDetector {
        let mut det = PhaseDetector::new(10, 0.5);
        for block in 0..8 {
            let instr = if block % 2 == 0 { 1 } else { 2 };
            for k in 0..10u32 {
                det.observe(InstrId(if k % 5 == 4 { 7 } else { instr }));
            }
        }
        det
    }

    #[test]
    fn roundtrip_preserves_phases_and_classification() {
        let det = trained_detector();
        let mut buf = Vec::new();
        det.write_to(&mut buf).unwrap();
        let mut back = PhaseDetector::read_from(&mut buf.as_slice()).unwrap();

        assert_eq!(back.interval(), det.interval());
        assert_eq!(back.phase_count(), det.phase_count());
        assert_eq!(back.history(), det.history());

        // The restored representatives classify exactly as the
        // originals: a known mix joins its phase, not a new one.
        let mut original = det.clone();
        for k in 0..10u32 {
            let instr = if k % 5 == 4 { 7 } else { 1 };
            assert_eq!(
                back.observe(InstrId(instr)),
                original.observe(InstrId(instr))
            );
        }
        assert_eq!(back.phase_count(), original.phase_count());
    }

    #[test]
    fn serialization_is_deterministic() {
        let det = trained_detector();
        let mut a = Vec::new();
        let mut b = Vec::new();
        det.write_to(&mut a).unwrap();
        det.write_to(&mut b).unwrap();
        assert_eq!(a, b);
        // And stable across a roundtrip.
        let back = PhaseDetector::read_from(&mut a.as_slice()).unwrap();
        let mut c = Vec::new();
        back.write_to(&mut c).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let mut buf = Vec::new();
        trained_detector().write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                PhaseDetector::read_from(&mut &buf[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        let mid = buf.len() / 2;
        buf[mid] ^= 0x20;
        assert!(PhaseDetector::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut buf = Vec::new();
        orp_format::write_single_chunk(&mut buf, ProfileKind::Trace, &[]).unwrap();
        assert!(matches!(
            PhaseDetector::read_from(&mut buf.as_slice()),
            Err(FormatError::WrongKind { .. })
        ));
    }

    #[test]
    fn forged_history_phase_is_rejected() {
        let det = trained_detector();
        let mut payload = Vec::new();
        det.write_payload(&mut payload).unwrap();
        // Append an extra history entry pointing past the phase table
        // (and bump the count varint in place: history is the trailer).
        let mut forged = PhaseDetector::read_payload(&mut payload.as_slice()).unwrap();
        forged.history.push(PhaseId(99));
        let mut bad = Vec::new();
        forged.write_payload(&mut bad).unwrap();
        assert!(PhaseDetector::read_payload(&mut bad.as_slice()).is_err());
    }
}
