//! Phase detection and phase-cognizant profiling.
//!
//! The paper's future work: "make use of recent results on phase
//! detection and prediction to profile references in a phase cognizant
//! manner". This crate implements that extension:
//!
//! * [`PhaseDetector`] — Sherwood-style interval signatures: execution
//!   is cut into fixed-length intervals, each summarized by its
//!   instruction-frequency vector; an interval whose normalized
//!   Manhattan distance to every known phase exceeds a threshold opens
//!   a new phase, otherwise it joins the nearest one;
//! * [`PhasedProfiler`] — an [`OrSink`] adapter that buffers one
//!   interval of object-relative tuples, classifies it, and forwards it
//!   to a per-phase downstream profiler. Wrapping LEAP this way yields
//!   per-phase LMAD profiles: a program whose phases have different
//!   linear behavior gets a clean profile per phase instead of one
//!   muddled whole-run profile.
//!
//! # Examples
//!
//! ```
//! use orp_phase::PhaseDetector;
//!
//! let mut det = PhaseDetector::new(4, 0.5);
//! // Two intervals of instruction 1, then two of instruction 2.
//! for instr in [1u32, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2] {
//!     det.observe(orp_trace::InstrId(instr));
//! }
//! assert_eq!(det.phase_count(), 2);
//! assert_eq!(det.history(), &[orp_phase::PhaseId(0), orp_phase::PhaseId(0),
//!                             orp_phase::PhaseId(1), orp_phase::PhaseId(1)]);
//! ```

#![forbid(unsafe_code)]

mod io;

use std::collections::{BTreeMap, HashMap};

use orp_core::{OrSink, OrTuple};
use orp_trace::InstrId;

/// Identifier of a detected phase, in order of first appearance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(pub u32);

impl std::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A sparse, normalized instruction-frequency signature of one
/// interval.
#[derive(Debug, Clone, Default, PartialEq)]
struct Signature {
    counts: HashMap<u32, f64>,
}

impl Signature {
    fn from_counts(counts: &HashMap<u32, u64>) -> Self {
        let total: u64 = counts.values().sum();
        let total = total.max(1) as f64;
        Signature {
            counts: counts
                .iter()
                .map(|(&i, &c)| (i, c as f64 / total))
                .collect(),
        }
    }

    /// Normalized Manhattan distance in [0, 2].
    fn distance(&self, other: &Signature) -> f64 {
        let mut d = 0.0;
        for (i, &a) in &self.counts {
            d += (a - other.counts.get(i).copied().unwrap_or(0.0)).abs();
        }
        for (i, &b) in &other.counts {
            if !self.counts.contains_key(i) {
                d += b;
            }
        }
        d
    }

    /// Exponentially blends another signature in (keeps representatives
    /// stable but adaptive).
    fn blend(&mut self, other: &Signature) {
        const ALPHA: f64 = 0.25;
        for v in self.counts.values_mut() {
            *v *= 1.0 - ALPHA;
        }
        for (&i, &b) in &other.counts {
            *self.counts.entry(i).or_insert(0.0) += ALPHA * b;
        }
    }
}

/// Online interval-signature phase detector.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    interval: usize,
    threshold: f64,
    current: HashMap<u32, u64>,
    filled: usize,
    representatives: Vec<Signature>,
    history: Vec<PhaseId>,
}

impl PhaseDetector {
    /// Creates a detector cutting execution into intervals of
    /// `interval` accesses, opening a new phase when the nearest known
    /// phase is farther than `threshold` (normalized Manhattan
    /// distance, 0..=2; ~0.5 works well).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `threshold` is not in `(0, 2]`.
    #[must_use]
    pub fn new(interval: usize, threshold: f64) -> Self {
        assert!(interval > 0, "interval must be positive");
        assert!(
            threshold > 0.0 && threshold <= 2.0,
            "threshold must be in (0, 2]"
        );
        PhaseDetector {
            interval,
            threshold,
            current: HashMap::new(),
            filled: 0,
            representatives: Vec::new(),
            history: Vec::new(),
        }
    }

    /// The configured interval length (accesses per interval).
    #[must_use]
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Feeds one access; returns the classified phase when this access
    /// completes an interval.
    pub fn observe(&mut self, instr: InstrId) -> Option<PhaseId> {
        *self.current.entry(instr.0).or_default() += 1;
        self.filled += 1;
        if self.filled < self.interval {
            return None;
        }
        let sig = Signature::from_counts(&self.current);
        self.current.clear();
        self.filled = 0;
        let phase = self.classify(&sig);
        self.history.push(phase);
        Some(phase)
    }

    /// Classifies a completed-interval signature, creating a new phase
    /// if nothing known is close enough.
    fn classify(&mut self, sig: &Signature) -> PhaseId {
        let nearest = self
            .representatives
            .iter()
            .enumerate()
            .map(|(i, rep)| (i, rep.distance(sig)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match nearest {
            Some((i, d)) if d <= self.threshold => {
                self.representatives[i].blend(sig);
                PhaseId(i as u32)
            }
            _ => {
                self.representatives.push(sig.clone());
                PhaseId((self.representatives.len() - 1) as u32)
            }
        }
    }

    /// Classifies the current partial interval without consuming it
    /// (used at end of program for the tail).
    #[must_use]
    pub fn classify_partial(&mut self) -> Option<PhaseId> {
        if self.filled == 0 {
            return None;
        }
        let sig = Signature::from_counts(&self.current);
        Some(self.classify(&sig))
    }

    /// Number of distinct phases seen so far.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.representatives.len()
    }

    /// The phase of every completed interval, in order.
    #[must_use]
    pub fn history(&self) -> &[PhaseId] {
        &self.history
    }
}

/// A phase-cognizant profiler adapter: buffers one interval of tuples,
/// classifies it with the embedded [`PhaseDetector`], and forwards the
/// whole interval to that phase's downstream profiler (created on
/// demand by the factory).
pub struct PhasedProfiler<S, F> {
    detector: PhaseDetector,
    factory: F,
    buffer: Vec<OrTuple>,
    sinks: BTreeMap<PhaseId, S>,
}

impl<S: OrSink, F: FnMut(PhaseId) -> S> PhasedProfiler<S, F> {
    /// Creates a phased profiler; `factory` builds the per-phase
    /// downstream profiler.
    #[must_use]
    pub fn new(detector: PhaseDetector, factory: F) -> Self {
        PhasedProfiler {
            detector,
            factory,
            buffer: Vec::new(),
            sinks: BTreeMap::new(),
        }
    }

    /// The embedded detector (phase history, counts).
    #[must_use]
    pub fn detector(&self) -> &PhaseDetector {
        &self.detector
    }

    /// The per-phase profilers accumulated so far.
    #[must_use]
    pub fn phases(&self) -> &BTreeMap<PhaseId, S> {
        &self.sinks
    }

    /// Finalizes: flushes any partial interval and returns the
    /// per-phase profilers plus the detector.
    #[must_use]
    pub fn into_parts(mut self) -> (BTreeMap<PhaseId, S>, PhaseDetector) {
        if let Some(phase) = self.detector.classify_partial() {
            Self::flush_to(&mut self.sinks, &mut self.factory, phase, &self.buffer);
        }
        for sink in self.sinks.values_mut() {
            sink.finish();
        }
        (self.sinks, self.detector)
    }

    fn flush_to(
        sinks: &mut BTreeMap<PhaseId, S>,
        factory: &mut F,
        phase: PhaseId,
        tuples: &[OrTuple],
    ) {
        let sink = sinks.entry(phase).or_insert_with(|| factory(phase));
        for t in tuples {
            sink.tuple(t);
        }
    }
}

impl<S: OrSink, F: FnMut(PhaseId) -> S> OrSink for PhasedProfiler<S, F> {
    fn tuple(&mut self, t: &OrTuple) {
        self.buffer.push(*t);
        if let Some(phase) = self.detector.observe(t.instr) {
            Self::flush_to(&mut self.sinks, &mut self.factory, phase, &self.buffer);
            self.buffer.clear();
        }
    }
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for PhasedProfiler<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedProfiler")
            .field("detector", &self.detector)
            .field("buffered", &self.buffer.len())
            .field("phases", &self.sinks)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{GroupId, ObjectSerial, Timestamp, VecOrSink};
    use orp_trace::AccessKind;

    fn tuple(instr: u32, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(instr),
            kind: AccessKind::Load,
            group: GroupId(0),
            object: ObjectSerial(0),
            offset: 0,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn two_disjoint_behaviors_form_two_phases() {
        let mut det = PhaseDetector::new(10, 0.5);
        for t in 0..100 {
            det.observe(InstrId(if t < 50 { 1 } else { 2 }));
        }
        assert_eq!(det.phase_count(), 2);
        assert_eq!(det.history().len(), 10);
        assert!(det.history()[..5].iter().all(|&p| p == PhaseId(0)));
        assert!(det.history()[5..].iter().all(|&p| p == PhaseId(1)));
    }

    #[test]
    fn recurring_phase_is_recognized_not_duplicated() {
        let mut det = PhaseDetector::new(10, 0.5);
        // A B A B pattern of intervals.
        for block in 0..4 {
            let instr = if block % 2 == 0 { 1 } else { 2 };
            for _ in 0..10 {
                det.observe(InstrId(instr));
            }
        }
        assert_eq!(det.phase_count(), 2, "phases recur, they do not multiply");
        assert_eq!(
            det.history(),
            &[PhaseId(0), PhaseId(1), PhaseId(0), PhaseId(1)]
        );
    }

    #[test]
    fn similar_intervals_stay_in_one_phase() {
        let mut det = PhaseDetector::new(100, 0.5);
        // Minor jitter in the mix must not open new phases.
        for t in 0..1000u32 {
            det.observe(InstrId(if t % 10 < 7 { 1 } else { 2 + (t % 3) }));
        }
        assert_eq!(det.phase_count(), 1);
    }

    #[test]
    fn phased_profiler_routes_intervals() {
        let detector = PhaseDetector::new(10, 0.5);
        let mut prof = PhasedProfiler::new(detector, |_| VecOrSink::new());
        for t in 0..60 {
            prof.tuple(&tuple(if t < 30 { 1 } else { 2 }, t));
        }
        let (phases, det) = prof.into_parts();
        assert_eq!(det.phase_count(), 2);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[&PhaseId(0)].len(), 30);
        assert_eq!(phases[&PhaseId(1)].len(), 30);
        assert!(phases[&PhaseId(0)]
            .tuples()
            .iter()
            .all(|t| t.instr == InstrId(1)));
    }

    #[test]
    fn partial_tail_interval_is_flushed() {
        let detector = PhaseDetector::new(10, 0.5);
        let mut prof = PhasedProfiler::new(detector, |_| VecOrSink::new());
        for t in 0..25 {
            prof.tuple(&tuple(1, t));
        }
        let (phases, _) = prof.into_parts();
        let total: usize = phases.values().map(VecOrSink::len).sum();
        assert_eq!(total, 25, "no tuple may be lost at program end");
    }

    #[test]
    fn signature_distance_is_symmetric_and_bounded() {
        let a = Signature::from_counts(&HashMap::from([(1, 10u64)]));
        let b = Signature::from_counts(&HashMap::from([(2, 10u64)]));
        assert!(
            (a.distance(&b) - 2.0).abs() < 1e-9,
            "disjoint mixes are maximally far"
        );
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&a) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = PhaseDetector::new(0, 0.5);
    }
}

/// A Markov next-phase predictor trained on the detector's interval
/// history (the "prediction" half of the phase work the paper cites).
///
/// # Examples
///
/// ```
/// use orp_phase::{PhaseId, PhasePredictor};
///
/// let mut pred = PhasePredictor::new();
/// // Alternating history: after P0 comes P1 and vice versa.
/// for w in [0u32, 1, 0, 1, 0, 1].windows(2) {
///     pred.train(PhaseId(w[0]), PhaseId(w[1]));
/// }
/// assert_eq!(pred.predict(PhaseId(0)), Some(PhaseId(1)));
/// assert_eq!(pred.predict(PhaseId(1)), Some(PhaseId(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhasePredictor {
    /// (from, to) → observed transitions.
    transitions: BTreeMap<(PhaseId, PhaseId), u64>,
}

impl PhasePredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trains the predictor from a full phase history.
    #[must_use]
    pub fn from_history(history: &[PhaseId]) -> Self {
        let mut p = Self::new();
        for w in history.windows(2) {
            p.train(w[0], w[1]);
        }
        p
    }

    /// Records one observed transition.
    pub fn train(&mut self, from: PhaseId, to: PhaseId) {
        *self.transitions.entry((from, to)).or_default() += 1;
    }

    /// The most likely next phase after `from`, or `None` when `from`
    /// was never seen.
    #[must_use]
    pub fn predict(&self, from: PhaseId) -> Option<PhaseId> {
        self.transitions
            .range((from, PhaseId(0))..=(from, PhaseId(u32::MAX)))
            .max_by_key(|(&(_, to), &c)| (c, std::cmp::Reverse(to.0)))
            .map(|(&(_, to), _)| to)
    }

    /// Fraction of transitions in `history` this predictor gets right
    /// when predicting each step from the previous one (self-scoring on
    /// training data measures how phase-regular the program is).
    #[must_use]
    pub fn accuracy_on(&self, history: &[PhaseId]) -> f64 {
        if history.len() < 2 {
            return 0.0;
        }
        let hits = history
            .windows(2)
            .filter(|w| self.predict(w[0]) == Some(w[1]))
            .count();
        hits as f64 / (history.len() - 1) as f64
    }
}

#[cfg(test)]
mod predictor_tests {
    use super::*;

    #[test]
    fn predicts_the_majority_successor() {
        let mut p = PhasePredictor::new();
        p.train(PhaseId(0), PhaseId(1));
        p.train(PhaseId(0), PhaseId(1));
        p.train(PhaseId(0), PhaseId(2));
        assert_eq!(p.predict(PhaseId(0)), Some(PhaseId(1)));
        assert_eq!(p.predict(PhaseId(9)), None);
    }

    #[test]
    fn periodic_history_scores_perfectly() {
        let history: Vec<PhaseId> = (0..40).map(|i| PhaseId(i % 4)).collect();
        let p = PhasePredictor::from_history(&history);
        assert!((p.accuracy_on(&history) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_history_scores_below_one() {
        let history = [0u32, 1, 0, 2, 0, 1, 0, 2, 0, 1].map(PhaseId).to_vec();
        let p = PhasePredictor::from_history(&history);
        let acc = p.accuracy_on(&history);
        assert!(acc > 0.0 && acc < 1.0, "got {acc}");
    }

    #[test]
    fn short_histories_are_safe() {
        let p = PhasePredictor::from_history(&[]);
        assert_eq!(p.accuracy_on(&[]), 0.0);
        assert_eq!(p.accuracy_on(&[PhaseId(0)]), 0.0);
    }
}
