//! Applying a [`LayoutPlan`]: typed transforms to concrete addresses.
//!
//! The applier is the "apply" stage of the optimize pipeline: it takes
//! the profiled object inventory (one [`ObjectExtent`] per object) and
//! a plan, and drives [`SimHeap`] / [`LinkerLayout`] so that
//!
//! * every `Colocate` chain occupies a dense region in member order,
//! * every `PoolGroup`'s objects share a dedicated pool,
//! * every `HotColdSplit` places its hot set in one dense region and
//!   the group's remaining objects in a separate cold region,
//! * everything not claimed by any transform flows through the
//!   baseline placement paths unchanged.
//!
//! Transforms claim objects in plan order (descending expected
//! benefit); the first claim wins, so a high-benefit co-location chain
//! cannot be broken up by a lower-benefit pool over the same group.
//! `FieldReorder` transforms do not move objects — they remap offsets
//! inside them, which the cache-side evaluator applies at replay time.
//!
//! Placement is total and non-overlapping by construction: pools are
//! carved from the heap arena through the placement strategy (disjoint
//! from ordinary blocks), members are bump-placed densely inside them,
//! and the static segment advances a monotone cursor.

use std::collections::BTreeMap;

use orp_core::{GroupId, ObjectSerial};
use orp_opt::{LayoutPlan, ObjectKey, TransformKind};

use crate::{align_up, AllocError, LinkerLayout, SimHeap, PAGE_ALIGN};

/// Which simulated segment an object lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Statically allocated (linker-placed).
    Static,
    /// Heap allocated.
    Heap,
}

/// One profiled object, as the applier needs to see it.
#[derive(Debug, Clone)]
pub struct ObjectExtent {
    /// Allocation-site group.
    pub group: GroupId,
    /// Per-group serial.
    pub serial: ObjectSerial,
    /// Object size in bytes (pre-alignment).
    pub size: u64,
    /// Segment the object originally lived in.
    pub segment: Segment,
}

impl ObjectExtent {
    fn key(&self) -> ObjectKey {
        (self.group, self.serial)
    }
}

/// One contiguous region a transform produced, for reporting.
#[derive(Debug, Clone)]
pub struct PlannedRegion {
    /// Metric-safe label (`colocate.g3`, `hot-cold-split.g1.hot`, …).
    pub label: String,
    /// Region base address.
    pub base: u64,
    /// Region extent in bytes (aligned member sizes summed).
    pub bytes: u64,
    /// Objects placed inside.
    pub members: usize,
}

/// The applied layout: every object's planned base address.
#[derive(Debug, Clone, Default)]
pub struct PlannedPlacement {
    bases: BTreeMap<ObjectKey, u64>,
    /// Regions the plan's transforms produced, in application order.
    pub regions: Vec<PlannedRegion>,
}

impl PlannedPlacement {
    /// The planned base address of one object.
    #[must_use]
    pub fn address_of(&self, key: ObjectKey) -> Option<u64> {
        self.bases.get(&key).copied()
    }

    /// All placements, keyed by object.
    pub fn bases(&self) -> impl Iterator<Item = (ObjectKey, u64)> + '_ {
        self.bases.iter().map(|(&k, &b)| (k, b))
    }

    /// Number of placed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True when nothing was placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }
}

/// A run of objects one transform claimed, to be placed contiguously.
struct Directive {
    label: String,
    members: Vec<usize>, // indices into `objects`
}

/// Applies `plan` to the profiled `objects`, placing planned regions
/// and unclaimed objects through `heap` (heap segment) and `layout`
/// (static segment).
///
/// Objects must be unique by `(group, serial)`; duplicates beyond the
/// first are ignored. Every object ends up with exactly one address.
///
/// # Errors
///
/// Returns [`AllocError::OutOfMemory`] when the heap arena cannot hold
/// the planned regions plus the unclaimed objects.
pub fn apply_plan(
    plan: &LayoutPlan,
    objects: &[ObjectExtent],
    heap: &mut SimHeap,
    layout: &mut LinkerLayout,
) -> Result<PlannedPlacement, AllocError> {
    // First-seen extent per key, preserving input order.
    let mut index: BTreeMap<ObjectKey, usize> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::with_capacity(objects.len());
    for (i, o) in objects.iter().enumerate() {
        if let std::collections::btree_map::Entry::Vacant(e) = index.entry(o.key()) {
            e.insert(i);
            order.push(i);
        }
    }
    // Objects of one group in input order, for group-scoped claims.
    let mut by_group: BTreeMap<GroupId, Vec<usize>> = BTreeMap::new();
    for &i in &order {
        by_group.entry(objects[i].group).or_default().push(i);
    }

    let mut claimed = vec![false; objects.len()];
    let claim = |idxs: &[usize], claimed: &mut Vec<bool>| -> Vec<usize> {
        idxs.iter()
            .copied()
            .filter(|&i| !std::mem::replace(&mut claimed[i], true))
            .collect()
    };

    let labels = plan.labels();
    let mut directives: Vec<Directive> = Vec::new();
    for (t, label) in plan.transforms().iter().zip(labels) {
        match &t.kind {
            TransformKind::FieldReorder { .. } => {}
            TransformKind::Colocate { objects: members } => {
                let idxs: Vec<usize> = members
                    .iter()
                    .filter_map(|k| index.get(k).copied())
                    .collect();
                let taken = claim(&idxs, &mut claimed);
                if !taken.is_empty() {
                    directives.push(Directive {
                        label,
                        members: taken,
                    });
                }
            }
            TransformKind::PoolGroup { group } => {
                let idxs = by_group.get(group).cloned().unwrap_or_default();
                let taken = claim(&idxs, &mut claimed);
                if !taken.is_empty() {
                    directives.push(Directive {
                        label,
                        members: taken,
                    });
                }
            }
            TransformKind::HotColdSplit { group, hot } => {
                let hot_idxs: Vec<usize> = hot
                    .iter()
                    .filter_map(|&s| index.get(&(*group, s)).copied())
                    .collect();
                let taken_hot = claim(&hot_idxs, &mut claimed);
                let rest = by_group.get(group).cloned().unwrap_or_default();
                let taken_cold = claim(&rest, &mut claimed);
                if !taken_hot.is_empty() {
                    directives.push(Directive {
                        label: format!("{label}.hot"),
                        members: taken_hot,
                    });
                }
                if !taken_cold.is_empty() {
                    directives.push(Directive {
                        label: format!("{label}.cold"),
                        members: taken_cold,
                    });
                }
            }
        }
    }

    let mut placement = PlannedPlacement::default();

    // Planned regions first: they get the dense, low addresses.
    for d in &directives {
        // A directive can span segments (a cross-group colocate from
        // the remap adviser may mix statics and heap objects); each
        // segment gets its own contiguous run.
        for segment in [Segment::Heap, Segment::Static] {
            let members: Vec<usize> = d
                .members
                .iter()
                .copied()
                .filter(|&i| objects[i].segment == segment)
                .collect();
            if members.is_empty() {
                continue;
            }
            let bytes: u64 = members.iter().map(|&i| align_up(objects[i].size)).sum();
            let base = match segment {
                Segment::Heap => {
                    let pool = heap.reserve_pool(bytes)?;
                    for &i in &members {
                        let addr = heap.alloc_pooled(pool, objects[i].size)?;
                        placement.bases.insert(objects[i].key(), addr);
                    }
                    heap.pool_extent(pool).map_or(0, |(b, _)| b)
                }
                Segment::Static => {
                    layout.align_cursor(PAGE_ALIGN);
                    let mut first = None;
                    for &i in &members {
                        let name = format!("g{}.s{}", objects[i].group.0, objects[i].serial.0);
                        let obj = layout.place(&name, objects[i].size);
                        first.get_or_insert(obj.base);
                        placement.bases.insert(objects[i].key(), obj.base);
                    }
                    first.unwrap_or(0)
                }
            };
            placement.regions.push(PlannedRegion {
                label: d.label.clone(),
                base,
                bytes,
                members: members.len(),
            });
        }
    }

    // Everything unclaimed flows through the baseline paths in input
    // order, exactly as an unplanned run would place it.
    for &i in &order {
        if claimed[i] {
            continue;
        }
        let o = &objects[i];
        let addr = match o.segment {
            Segment::Heap => heap.alloc(o.size)?,
            Segment::Static => {
                let name = format!("g{}.s{}", o.group.0, o.serial.0);
                layout.place(&name, o.size).base
            }
        };
        placement.bases.insert(o.key(), addr);
    }

    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;
    use orp_opt::Transform;

    fn heap_obj(group: u32, serial: u64, size: u64) -> ObjectExtent {
        ObjectExtent {
            group: GroupId(group),
            serial: ObjectSerial(serial),
            size,
            segment: Segment::Heap,
        }
    }

    fn static_obj(group: u32, serial: u64, size: u64) -> ObjectExtent {
        ObjectExtent {
            group: GroupId(group),
            serial: ObjectSerial(serial),
            size,
            segment: Segment::Static,
        }
    }

    fn apply(plan: &LayoutPlan, objects: &[ObjectExtent]) -> PlannedPlacement {
        let mut heap = SimHeap::new(AllocatorKind::FreeList, 1);
        let mut layout = LinkerLayout::new(0);
        apply_plan(plan, objects, &mut heap, &mut layout).unwrap()
    }

    #[test]
    fn colocated_objects_are_contiguous_in_chain_order() {
        let objects: Vec<ObjectExtent> = (0..6).map(|s| heap_obj(0, s, 32)).collect();
        let plan = LayoutPlan::from_transforms(vec![Transform {
            kind: TransformKind::Colocate {
                objects: vec![
                    (GroupId(0), ObjectSerial(4)),
                    (GroupId(0), ObjectSerial(1)),
                    (GroupId(0), ObjectSerial(5)),
                ],
            },
            advisor: "cluster".to_string(),
            benefit: 10,
        }]);
        let placed = apply(&plan, &objects);
        let a = placed.address_of((GroupId(0), ObjectSerial(4))).unwrap();
        let b = placed.address_of((GroupId(0), ObjectSerial(1))).unwrap();
        let c = placed.address_of((GroupId(0), ObjectSerial(5))).unwrap();
        assert_eq!(b, a + 32, "chain order, dense");
        assert_eq!(c, b + 32);
        assert_eq!(placed.len(), 6, "unclaimed objects placed too");
        assert_eq!(placed.regions.len(), 1);
        assert_eq!(placed.regions[0].members, 3);
    }

    #[test]
    fn hot_cold_split_separates_tiers() {
        let objects: Vec<ObjectExtent> = (0..8).map(|s| heap_obj(2, s, 64)).collect();
        let plan = LayoutPlan::from_transforms(vec![Transform {
            kind: TransformKind::HotColdSplit {
                group: GroupId(2),
                hot: vec![ObjectSerial(1), ObjectSerial(3)],
            },
            advisor: "tier".to_string(),
            benefit: 5,
        }]);
        let placed = apply(&plan, &objects);
        assert_eq!(placed.regions.len(), 2);
        let hot = &placed.regions[0];
        let cold = &placed.regions[1];
        assert!(hot.label.ends_with(".hot"));
        assert!(cold.label.ends_with(".cold"));
        assert_eq!(hot.members, 2);
        assert_eq!(cold.members, 6);
        // The two tiers do not interleave.
        assert!(
            hot.base + hot.bytes <= cold.base || cold.base + cold.bytes <= hot.base,
            "tier regions overlap"
        );
    }

    #[test]
    fn higher_benefit_transform_claims_first() {
        let objects: Vec<ObjectExtent> = (0..4).map(|s| heap_obj(1, s, 16)).collect();
        let plan = LayoutPlan::from_transforms(vec![
            Transform {
                kind: TransformKind::PoolGroup { group: GroupId(1) },
                advisor: "cluster".to_string(),
                benefit: 1,
            },
            Transform {
                kind: TransformKind::Colocate {
                    objects: vec![(GroupId(1), ObjectSerial(2)), (GroupId(1), ObjectSerial(0))],
                },
                advisor: "cluster".to_string(),
                benefit: 100,
            },
        ]);
        let placed = apply(&plan, &objects);
        // The colocate (benefit 100) runs first and owns serials 2 and
        // 0; the pool gets the rest.
        assert_eq!(placed.regions[0].members, 2);
        assert!(placed.regions[0].label.starts_with("colocate"));
        assert_eq!(placed.regions[1].members, 2);
        assert!(placed.regions[1].label.starts_with("pool-group"));
    }

    #[test]
    fn static_objects_go_through_the_linker() {
        let objects = vec![static_obj(10, 0, 100), static_obj(11, 0, 100)];
        let plan = LayoutPlan::from_transforms(vec![Transform {
            kind: TransformKind::Colocate {
                objects: vec![
                    (GroupId(11), ObjectSerial(0)),
                    (GroupId(10), ObjectSerial(0)),
                ],
            },
            advisor: "remap".to_string(),
            benefit: 3,
        }]);
        let mut heap = SimHeap::new(AllocatorKind::Bump, 0);
        let mut layout = LinkerLayout::new(0);
        let placed = apply_plan(&plan, &objects, &mut heap, &mut layout).unwrap();
        let a = placed.address_of((GroupId(11), ObjectSerial(0))).unwrap();
        let b = placed.address_of((GroupId(10), ObjectSerial(0))).unwrap();
        assert_eq!(b, a + align_up(100), "remap order, dense");
        assert_eq!(heap.stats().allocs, 0, "no heap traffic for statics");
        assert_eq!(layout.objects().len(), 2);
    }

    #[test]
    fn empty_plan_degenerates_to_baseline_placement() {
        let objects: Vec<ObjectExtent> = (0..5).map(|s| heap_obj(0, s, 48)).collect();
        let placed = apply(&LayoutPlan::default(), &objects);
        assert_eq!(placed.len(), 5);
        assert!(placed.regions.is_empty());
        // Baseline = the heap's own strategy, in input order.
        let mut heap = SimHeap::new(AllocatorKind::FreeList, 1);
        for o in &objects {
            let expect = heap.alloc(o.size).unwrap();
            assert_eq!(placed.address_of(o.key()), Some(expect));
        }
    }
}
