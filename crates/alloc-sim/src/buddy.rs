//! Binary buddy allocator.

use std::collections::BTreeSet;

use crate::{AllocError, PlacementStrategy};

/// A binary buddy allocator.
///
/// Blocks are powers of two; a request is rounded up to the next power of
/// two, larger free blocks are split recursively, and on free a block is
/// merged with its *buddy* (the sibling block at `base ^ size`) whenever
/// the buddy is also free. Buddy systems produce yet another distinct
/// raw-address layout for the same allocation sequence — rounder
/// addresses, different reuse order — which is exactly the run-to-run
/// variability the object-relative representation is designed to factor
/// out.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    /// log2 of the arena size.
    max_order: u32,
    /// log2 of the smallest block handed out.
    min_order: u32,
    /// Free blocks per order, stored as offsets from `base`.
    free: Vec<BTreeSet<u64>>,
}

impl BuddyAllocator {
    /// Creates a buddy allocator over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or is smaller than the
    /// minimum block size (16 bytes).
    #[must_use]
    pub fn new(base: u64, size: u64) -> Self {
        assert!(
            size.is_power_of_two(),
            "buddy arena size must be a power of two"
        );
        let max_order = size.trailing_zeros();
        let min_order = 4; // 16-byte minimum block
        assert!(max_order >= min_order, "buddy arena too small");
        let mut free = vec![BTreeSet::new(); (max_order + 1) as usize];
        free[max_order as usize].insert(0);
        BuddyAllocator {
            base,
            max_order,
            min_order,
            free,
        }
    }

    fn order_for(&self, size: u64) -> u32 {
        size.next_power_of_two()
            .trailing_zeros()
            .max(self.min_order)
    }

    /// Total free bytes (may be fragmented across orders).
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(o, s)| (s.len() as u64) << o)
            .sum()
    }
}

impl PlacementStrategy for BuddyAllocator {
    fn place(&mut self, size: u64) -> Result<u64, AllocError> {
        let want = self.order_for(size);
        if want > self.max_order {
            return Err(AllocError::OutOfMemory { requested: size });
        }
        // Find the smallest order >= want with a free block.
        let from = (want..=self.max_order)
            .find(|&o| !self.free[o as usize].is_empty())
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        let mut offset = *self.free[from as usize]
            .iter()
            .next()
            .expect("non-empty order");
        self.free[from as usize].remove(&offset);
        // Split down to the wanted order, freeing the upper halves.
        let mut order = from;
        while order > want {
            order -= 1;
            let buddy = offset + (1u64 << order);
            self.free[order as usize].insert(buddy);
        }
        let _ = &mut offset;
        Ok(self.base + offset)
    }

    fn unplace(&mut self, base: u64, size: u64) {
        let mut order = self.order_for(size);
        let mut offset = base - self.base;
        // Merge with the buddy while it is free.
        while order < self.max_order {
            let buddy = offset ^ (1u64 << order);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            offset = offset.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_round_to_powers_of_two() {
        let mut a = BuddyAllocator::new(0, 1 << 12);
        let b0 = a.place(24).unwrap(); // rounds to 32
        let b1 = a.place(24).unwrap();
        assert_eq!(b1 - b0, 32);
    }

    #[test]
    fn split_and_merge_restores_full_arena() {
        let mut a = BuddyAllocator::new(0x8000, 1 << 10);
        let blocks: Vec<u64> = (0..8).map(|_| a.place(64).unwrap()).collect();
        assert_eq!(a.free_bytes(), (1 << 10) - 8 * 64);
        for b in blocks {
            a.unplace(b, 64);
        }
        assert_eq!(a.free_bytes(), 1 << 10);
        // After full merge a max-size allocation succeeds.
        assert_eq!(a.place(1 << 10).unwrap(), 0x8000);
    }

    #[test]
    fn buddies_merge_only_with_their_sibling() {
        let mut a = BuddyAllocator::new(0, 1 << 8);
        let b0 = a.place(16).unwrap(); // offset 0
        let b1 = a.place(16).unwrap(); // offset 16 (buddy of b0)
        let b2 = a.place(16).unwrap(); // offset 32
        a.unplace(b1, 16);
        a.unplace(b2, 16);
        // b1 and b2 are not buddies, so no 32-byte block at offset 16 forms.
        let b = a.place(32).unwrap();
        assert_ne!(b, 16);
        a.unplace(b0, 16);
        a.unplace(b, 32);
    }

    #[test]
    fn minimum_block_is_sixteen_bytes() {
        let mut a = BuddyAllocator::new(0, 1 << 8);
        let b0 = a.place(1).unwrap();
        let b1 = a.place(1).unwrap();
        assert_eq!(b1 - b0, 16);
    }

    #[test]
    fn oversize_request_errors() {
        let mut a = BuddyAllocator::new(0, 1 << 8);
        assert!(a.place(1 << 9).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_arena_panics() {
        let _ = BuddyAllocator::new(0, 1000);
    }
}
