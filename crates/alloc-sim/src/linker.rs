//! Linker layout simulation for statically allocated objects.

use crate::{align_up, STATIC_BASE};

/// One statically allocated object as placed by the simulated linker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticObject {
    /// Symbol name (the paper reads these from gcc's exported symbol
    /// table).
    pub name: String,
    /// Placed base address.
    pub base: u64,
    /// Object size in bytes.
    pub size: u64,
}

/// A simulated linker data layout.
///
/// Static objects are laid out sequentially from the static segment base
/// plus a `shift`. The shift models the paper's third artifact: inserting
/// probes grows the code segment, which moves the data segment and with
/// it every static object's address — between an instrumented and an
/// uninstrumented build, or between two instrumentation schemes, all
/// static raw addresses change while the objects themselves do not.
///
/// # Examples
///
/// ```
/// use orp_allocsim::LinkerLayout;
///
/// let mut plain = LinkerLayout::new(0);
/// let mut probed = LinkerLayout::new(0x2400); // probes grew .text
/// let a = plain.place("table", 4096);
/// let b = probed.place("table", 4096);
/// assert_eq!(b.base - a.base, 0x2400);
/// ```
#[derive(Debug, Clone)]
pub struct LinkerLayout {
    next: u64,
    objects: Vec<StaticObject>,
}

impl LinkerLayout {
    /// Creates a layout whose data segment starts `shift` bytes beyond
    /// the nominal static base.
    #[must_use]
    pub fn new(shift: u64) -> Self {
        LinkerLayout {
            next: STATIC_BASE + shift,
            objects: Vec::new(),
        }
    }

    /// Places a static object of `size` bytes and returns its record.
    ///
    /// Objects are placed in call order; both the base (real linkers
    /// align every symbol, whatever the segment start) and the size
    /// are rounded to the minimum alignment — the deterministic-but-
    /// arbitrary behavior of a real linker processing symbols in
    /// definition order.
    pub fn place(&mut self, name: &str, size: u64) -> StaticObject {
        self.next = crate::align_up_to(self.next, crate::MIN_ALIGN);
        let size = align_up(size);
        let obj = StaticObject {
            name: name.to_owned(),
            base: self.next,
            size,
        };
        self.next += size;
        self.objects.push(obj.clone());
        obj
    }

    /// Advances the placement cursor to the next multiple of `align` —
    /// how a layout plan starts a fresh region (e.g. a page-aligned
    /// hot tier) inside the static segment. Uses the same
    /// [`align_up_to`](crate::align_up_to) primitive as the heap's
    /// pool carving, so the two segments can never round differently.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub fn align_cursor(&mut self, align: u64) {
        self.next = crate::align_up_to(self.next, align);
    }

    /// All placed objects, in placement order.
    #[must_use]
    pub fn objects(&self) -> &[StaticObject] {
        &self.objects
    }

    /// Finds a placed object by symbol name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&StaticObject> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Total bytes of static data placed.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.next - self.objects.first().map_or(self.next, |o| o.base)
    }
}

impl Default for LinkerLayout {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_are_sequential_and_aligned() {
        let mut layout = LinkerLayout::new(0);
        let a = layout.place("a", 10);
        let b = layout.place("b", 20);
        assert_eq!(a.base, STATIC_BASE);
        assert_eq!(a.size, 16);
        assert_eq!(b.base, STATIC_BASE + 16);
        assert_eq!(layout.total_bytes(), 48);
    }

    #[test]
    fn shift_moves_every_object_uniformly() {
        let mut plain = LinkerLayout::new(0);
        let mut shifted = LinkerLayout::new(0x1000);
        for name in ["x", "y", "z"] {
            let p = plain.place(name, 100);
            let s = shifted.place(name, 100);
            assert_eq!(s.base - p.base, 0x1000);
            assert_eq!(s.size, p.size);
        }
    }

    #[test]
    fn lookup_by_name() {
        let mut layout = LinkerLayout::default();
        layout.place("heap_meta", 64);
        let found = layout.lookup("heap_meta").unwrap();
        assert_eq!(found.size, 64);
        assert!(layout.lookup("missing").is_none());
    }
}
