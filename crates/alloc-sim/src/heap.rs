//! The simulated heap façade over the placement strategies.

use std::collections::HashMap;

use crate::{
    align_up, AllocError, BuddyAllocator, BumpAllocator, FreeListAllocator, PlacementStrategy,
    RandomizingAllocator, HEAP_BASE, HEAP_SIZE,
};

/// Which placement strategy a [`SimHeap`] uses.
///
/// Running the *same* workload under different kinds (and different
/// seeds) produces different raw-address traces but identical
/// object-relative profiles — the paper's central claim, and this
/// repository's most important integration test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// Monotone bump allocation, no reuse.
    Bump,
    /// First-fit free list with coalescing (default `malloc`-like).
    FreeList,
    /// Binary buddy system.
    Buddy,
    /// Seeded random placement (address-space-randomization-like).
    Randomizing,
}

impl AllocatorKind {
    /// All strategies, for sweeps in tests and benches.
    pub const ALL: [AllocatorKind; 4] = [
        AllocatorKind::Bump,
        AllocatorKind::FreeList,
        AllocatorKind::Buddy,
        AllocatorKind::Randomizing,
    ];
}

impl std::fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AllocatorKind::Bump => "bump",
            AllocatorKind::FreeList => "free-list",
            AllocatorKind::Buddy => "buddy",
            AllocatorKind::Randomizing => "randomizing",
        };
        f.write_str(name)
    }
}

/// Usage statistics for a [`SimHeap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Allocations performed.
    pub allocs: u64,
    /// Deallocations performed.
    pub frees: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// Maximum of `live_bytes` over the run.
    pub peak_live_bytes: u64,
}

/// Handle to a pool reserved with [`SimHeap::reserve_pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(usize);

/// A carved-out arena region serving one co-location group, pool, or
/// tier. Blocks inside it are bump-placed (arena semantics): freeing a
/// pooled block releases no bytes until the whole pool would be.
#[derive(Debug, Clone, Copy)]
struct Pool {
    base: u64,
    capacity: u64,
    cursor: u64,
}

/// A simulated heap: a placement strategy plus live-block bookkeeping.
///
/// The heap validates frees (detecting double frees and wild pointers)
/// and remembers each live block's size so workloads only have to carry
/// base addresses around, like real programs do.
///
/// Layout plans are honored through *pools*: [`SimHeap::reserve_pool`]
/// carves a contiguous region out of the arena via the underlying
/// placement strategy, and [`SimHeap::alloc_pooled`] places blocks
/// densely inside it in call order — which is how co-location groups,
/// site pools, and hot/cold tier regions all get their contiguity
/// while unplanned allocations keep flowing through the baseline
/// strategy.
#[derive(Debug)]
pub struct SimHeap {
    kind: AllocatorKind,
    strategy: Box<dyn PlacementStrategy + Send>,
    live: HashMap<u64, u64>,
    /// Bases of live blocks that came from a pool (their bytes belong
    /// to the pool, not the strategy).
    pooled: std::collections::HashSet<u64>,
    pools: Vec<Pool>,
    stats: HeapStats,
}

impl SimHeap {
    /// Creates a heap over the standard simulated heap segment.
    ///
    /// `seed` only affects [`AllocatorKind::Randomizing`]; deterministic
    /// strategies ignore it, so a `(kind, seed)` pair fully determines
    /// the layout a workload observes.
    #[must_use]
    pub fn new(kind: AllocatorKind, seed: u64) -> Self {
        Self::with_arena(kind, seed, HEAP_BASE, HEAP_SIZE)
    }

    /// Creates a heap over a caller-chosen arena `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two (required by the buddy
    /// strategy; the other strategies accept any size, but a uniform
    /// requirement keeps `(kind, seed)` sweeps comparable).
    #[must_use]
    pub fn with_arena(kind: AllocatorKind, seed: u64, base: u64, size: u64) -> Self {
        let strategy: Box<dyn PlacementStrategy + Send> = match kind {
            AllocatorKind::Bump => Box::new(BumpAllocator::new(base, size)),
            AllocatorKind::FreeList => Box::new(FreeListAllocator::new(base, size)),
            AllocatorKind::Buddy => Box::new(BuddyAllocator::new(base, size)),
            AllocatorKind::Randomizing => Box::new(RandomizingAllocator::new(base, size, seed)),
        };
        SimHeap {
            kind,
            strategy,
            live: HashMap::new(),
            pooled: std::collections::HashSet::new(),
            pools: Vec::new(),
            stats: HeapStats::default(),
        }
    }

    /// The strategy this heap was built with.
    #[must_use]
    pub fn kind(&self) -> AllocatorKind {
        self.kind
    }

    /// Allocates `size` bytes (rounded up to the minimum alignment) and
    /// returns the block's base address.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the arena is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        let size = align_up(size);
        let base = self.strategy.place(size)?;
        debug_assert!(
            !self.live.contains_key(&base),
            "strategy returned a live base"
        );
        self.live.insert(base, size);
        self.stats.allocs += 1;
        self.stats.live_bytes += size;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        Ok(base)
    }

    /// Carves a dedicated pool of at least `capacity` bytes out of the
    /// arena. The region comes from the placement strategy (so it can
    /// never overlap ordinary allocations) and subsequent
    /// [`SimHeap::alloc_pooled`] calls fill it densely in call order.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the arena cannot fit
    /// the pool.
    pub fn reserve_pool(&mut self, capacity: u64) -> Result<PoolId, AllocError> {
        let capacity = align_up(capacity);
        let base = self.strategy.place(capacity)?;
        let id = PoolId(self.pools.len());
        self.pools.push(Pool {
            base,
            capacity,
            cursor: base,
        });
        Ok(id)
    }

    /// Allocates `size` bytes (rounded up to the minimum alignment)
    /// inside a reserved pool, at the pool's next free offset.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidPool`] for an unknown pool id;
    /// [`AllocError::OutOfMemory`] when the pool is full.
    pub fn alloc_pooled(&mut self, pool: PoolId, size: u64) -> Result<u64, AllocError> {
        let size = align_up(size);
        let p = self
            .pools
            .get_mut(pool.0)
            .ok_or(AllocError::InvalidPool { pool: pool.0 })?;
        if p.cursor + size > p.base + p.capacity {
            return Err(AllocError::OutOfMemory { requested: size });
        }
        let base = p.cursor;
        p.cursor += size;
        debug_assert!(
            !self.live.contains_key(&base),
            "pool cursor hit a live base"
        );
        self.live.insert(base, size);
        self.pooled.insert(base);
        self.stats.allocs += 1;
        self.stats.live_bytes += size;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        Ok(base)
    }

    /// Base address and capacity of a reserved pool.
    #[must_use]
    pub fn pool_extent(&self, pool: PoolId) -> Option<(u64, u64)> {
        self.pools.get(pool.0).map(|p| (p.base, p.capacity))
    }

    /// Frees the block based at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidFree`] when `base` is not the base
    /// address of a live block.
    pub fn free(&mut self, base: u64) -> Result<(), AllocError> {
        let size = self
            .live
            .remove(&base)
            .ok_or(AllocError::InvalidFree { addr: base })?;
        if !self.pooled.remove(&base) {
            // Pooled bytes stay with their pool (arena semantics); only
            // strategy-placed blocks return to the strategy.
            self.strategy.unplace(base, size);
        }
        self.stats.frees += 1;
        self.stats.live_bytes -= size;
        Ok(())
    }

    /// Size of the live block based at `base`, if any.
    #[must_use]
    pub fn block_size(&self, base: u64) -> Option<u64> {
        self.live.get(&base).copied()
    }

    /// Number of live blocks.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Usage statistics so far.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_allocate_and_free() {
        for kind in AllocatorKind::ALL {
            let mut heap = SimHeap::new(kind, 11);
            let a = heap.alloc(40).unwrap();
            let b = heap.alloc(40).unwrap();
            assert_ne!(a, b, "{kind}");
            assert_eq!(heap.block_size(a), Some(48), "{kind}: 40 aligns to 48");
            heap.free(a).unwrap();
            heap.free(b).unwrap();
            assert_eq!(heap.live_blocks(), 0, "{kind}");
        }
    }

    #[test]
    fn double_free_is_detected() {
        let mut heap = SimHeap::new(AllocatorKind::FreeList, 0);
        let a = heap.alloc(16).unwrap();
        heap.free(a).unwrap();
        assert_eq!(heap.free(a), Err(AllocError::InvalidFree { addr: a }));
    }

    #[test]
    fn wild_free_is_detected() {
        let mut heap = SimHeap::new(AllocatorKind::Bump, 0);
        assert!(matches!(
            heap.free(0xdead_beef),
            Err(AllocError::InvalidFree { .. })
        ));
    }

    #[test]
    fn stats_track_peak() {
        let mut heap = SimHeap::new(AllocatorKind::FreeList, 0);
        let a = heap.alloc(16).unwrap();
        let b = heap.alloc(16).unwrap();
        heap.free(a).unwrap();
        let stats = heap.stats();
        assert_eq!(stats.allocs, 2);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.live_bytes, 16);
        assert_eq!(stats.peak_live_bytes, 32);
        heap.free(b).unwrap();
    }

    #[test]
    fn layouts_differ_across_kinds_for_reuse_history() {
        // Allocate three blocks, free the middle one, allocate a smaller
        // block: strategies disagree on where it lands.
        let place = |kind| {
            let mut heap = SimHeap::with_arena(kind, 5, 0x10000, 1 << 16);
            let blocks: Vec<u64> = (0..3).map(|_| heap.alloc(64).unwrap()).collect();
            heap.free(blocks[1]).unwrap();
            heap.alloc(32).unwrap()
        };
        let bump = place(AllocatorKind::Bump);
        let freelist = place(AllocatorKind::FreeList);
        assert_ne!(bump, freelist, "bump never reuses, free-list does");
    }

    #[test]
    fn pooled_blocks_are_dense_and_disjoint_from_the_arena() {
        for kind in AllocatorKind::ALL {
            let mut heap = SimHeap::new(kind, 3);
            let outside = heap.alloc(64).unwrap();
            let pool = heap.reserve_pool(256).unwrap();
            let a = heap.alloc_pooled(pool, 16).unwrap();
            let b = heap.alloc_pooled(pool, 16).unwrap();
            assert_eq!(b, a + 16, "{kind}: pool placement is dense");
            let (base, cap) = heap.pool_extent(pool).unwrap();
            assert!(a >= base && b + 16 <= base + cap, "{kind}");
            assert!(
                outside + 64 <= base || base + cap <= outside,
                "{kind}: pool overlaps an ordinary block"
            );
        }
    }

    #[test]
    fn pool_exhaustion_is_oom() {
        let mut heap = SimHeap::new(AllocatorKind::FreeList, 0);
        let pool = heap.reserve_pool(32).unwrap();
        heap.alloc_pooled(pool, 32).unwrap();
        assert!(matches!(
            heap.alloc_pooled(pool, 16),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn unknown_pool_is_rejected() {
        let mut heap = SimHeap::new(AllocatorKind::Bump, 0);
        assert_eq!(
            heap.alloc_pooled(PoolId(7), 16),
            Err(AllocError::InvalidPool { pool: 7 })
        );
    }

    #[test]
    fn freeing_a_pooled_block_keeps_the_pool_region() {
        // Free a pooled block, then allocate normally: the strategy must
        // not hand the pool's bytes back out.
        let mut heap = SimHeap::new(AllocatorKind::FreeList, 0);
        let pool = heap.reserve_pool(64).unwrap();
        let a = heap.alloc_pooled(pool, 64).unwrap();
        heap.free(a).unwrap();
        let (base, cap) = heap.pool_extent(pool).unwrap();
        let fresh = heap.alloc(64).unwrap();
        assert!(
            fresh + 64 <= base || base + cap <= fresh,
            "strategy reused pooled bytes"
        );
        assert_eq!(heap.stats().frees, 1);
    }

    #[test]
    fn heap_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimHeap>();
    }
}
