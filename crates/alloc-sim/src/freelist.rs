//! First-fit free-list allocator with coalescing.

use std::collections::BTreeMap;

use crate::{AllocError, PlacementStrategy};

/// A classic first-fit free-list allocator.
///
/// Free space is kept as a sorted map of `base -> length`; allocation
/// scans from the lowest address and carves the first hole large enough,
/// and deallocation coalesces with both neighbors. This mimics the
/// placement behavior of simple `malloc` implementations: reuse of freed
/// addresses is immediate, which is what makes raw addresses *alias*
/// across object lifetimes (one of the artifacts object-relativity
/// removes).
#[derive(Debug, Clone)]
pub struct FreeListAllocator {
    /// Free holes, keyed by base address.
    holes: BTreeMap<u64, u64>,
}

impl FreeListAllocator {
    /// Creates a free-list allocator over `[base, base + size)`.
    #[must_use]
    pub fn new(base: u64, size: u64) -> Self {
        let mut holes = BTreeMap::new();
        holes.insert(base, size);
        FreeListAllocator { holes }
    }

    /// Number of distinct free holes (a fragmentation indicator).
    #[must_use]
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// Total free bytes.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.holes.values().sum()
    }
}

impl PlacementStrategy for FreeListAllocator {
    fn place(&mut self, size: u64) -> Result<u64, AllocError> {
        let hole = self
            .holes
            .iter()
            .find(|&(_, &len)| len >= size)
            .map(|(&base, &len)| (base, len))
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        let (base, len) = hole;
        self.holes.remove(&base);
        if len > size {
            self.holes.insert(base + size, len - size);
        }
        Ok(base)
    }

    fn unplace(&mut self, base: u64, size: u64) {
        let mut new_base = base;
        let mut new_len = size;
        // Coalesce with the predecessor hole if adjacent.
        if let Some((&prev_base, &prev_len)) = self.holes.range(..base).next_back() {
            if prev_base + prev_len == base {
                self.holes.remove(&prev_base);
                new_base = prev_base;
                new_len += prev_len;
            }
        }
        // Coalesce with the successor hole if adjacent.
        if let Some(&next_len) = self.holes.get(&(base + size)) {
            self.holes.remove(&(base + size));
            new_len += next_len;
        }
        self.holes.insert(new_base, new_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_prefers_lowest_address() {
        let mut a = FreeListAllocator::new(0x1000, 0x1000);
        let b0 = a.place(0x100).unwrap();
        let b1 = a.place(0x100).unwrap();
        assert_eq!(b0, 0x1000);
        assert_eq!(b1, 0x1100);
        a.unplace(b0, 0x100);
        // The freed low block is reused first.
        assert_eq!(a.place(0x80).unwrap(), 0x1000);
    }

    #[test]
    fn coalesces_with_both_neighbors() {
        let mut a = FreeListAllocator::new(0, 0x300);
        let b0 = a.place(0x100).unwrap();
        let b1 = a.place(0x100).unwrap();
        let b2 = a.place(0x100).unwrap();
        assert_eq!(a.hole_count(), 0);
        a.unplace(b0, 0x100);
        a.unplace(b2, 0x100);
        assert_eq!(a.hole_count(), 2);
        a.unplace(b1, 0x100);
        assert_eq!(
            a.hole_count(),
            1,
            "freeing the middle block merges all three"
        );
        assert_eq!(a.free_bytes(), 0x300);
    }

    #[test]
    fn splitting_leaves_remainder_hole() {
        let mut a = FreeListAllocator::new(0, 0x100);
        a.place(0x40).unwrap();
        assert_eq!(a.free_bytes(), 0xC0);
        assert_eq!(a.hole_count(), 1);
    }

    #[test]
    fn exhaustion_errors_but_state_survives() {
        let mut a = FreeListAllocator::new(0, 0x40);
        a.place(0x40).unwrap();
        assert!(a.place(0x10).is_err());
        a.unplace(0, 0x40);
        assert_eq!(a.place(0x40).unwrap(), 0);
    }

    #[test]
    fn fragmentation_prevents_large_allocation() {
        let mut a = FreeListAllocator::new(0, 0x300);
        let b0 = a.place(0x100).unwrap();
        let _b1 = a.place(0x100).unwrap();
        let b2 = a.place(0x100).unwrap();
        a.unplace(b0, 0x100);
        a.unplace(b2, 0x100);
        // 0x200 bytes free but split in two 0x100 holes.
        assert_eq!(a.free_bytes(), 0x200);
        assert!(a.place(0x180).is_err());
    }
}
