//! Simulated address space, heap allocators and linker layout.
//!
//! The CGO 2004 paper's whole motivation is that raw-address profiles are
//! polluted by *confounding artifacts* from three sources:
//!
//! 1. the heap allocator's placement decisions (which differ between
//!    allocator libraries and depend on the allocation history),
//! 2. the linker's layout of statically allocated data (which shifts when
//!    probes change the code segment size),
//! 3. OS memory management (base addresses differing run to run, e.g.
//!    address space randomization).
//!
//! This crate reproduces all three artifact sources in a deterministic,
//! seedable simulation so the rest of the workspace can demonstrate —
//! and test — that object-relative profiles are *invariant* under them
//! while raw-address profiles are not.
//!
//! * [`SimHeap`] is a simulated heap with four interchangeable placement
//!   strategies ([`AllocatorKind`]): a bump allocator, a first-fit free
//!   list with coalescing, a binary buddy allocator, and a placement-
//!   randomizing allocator (artifact source 1 and, via the seed, 3).
//! * [`LinkerLayout`] lays out static objects sequentially from a base
//!   address that can be shifted to model probe-induced code-segment
//!   growth (artifact source 2).
//!
//! # Examples
//!
//! ```
//! use orp_allocsim::{AllocatorKind, SimHeap};
//!
//! # fn main() -> Result<(), orp_allocsim::AllocError> {
//! let mut heap = SimHeap::new(AllocatorKind::FreeList, 1);
//! let a = heap.alloc(24)?;
//! let b = heap.alloc(24)?;
//! assert_ne!(a, b);
//! heap.free(a)?;
//! // First-fit reuses the freed block for an equal-size request.
//! assert_eq!(heap.alloc(24)?, a);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod buddy;
mod bump;
mod error;
mod freelist;
mod heap;
mod linker;
mod plan;
mod random;

pub use buddy::BuddyAllocator;
pub use bump::BumpAllocator;
pub use error::AllocError;
pub use freelist::FreeListAllocator;
pub use heap::{AllocatorKind, HeapStats, PoolId, SimHeap};
pub use linker::{LinkerLayout, StaticObject};
pub use plan::{apply_plan, ObjectExtent, PlannedPlacement, PlannedRegion, Segment};
pub use random::RandomizingAllocator;

/// Base virtual address of the simulated heap segment.
pub const HEAP_BASE: u64 = 0x6000_0000_0000;

/// Size in bytes of the simulated heap segment.
pub const HEAP_SIZE: u64 = 1 << 32;

/// Base virtual address of the simulated static-data segment.
pub const STATIC_BASE: u64 = 0x1000_0000;

/// Minimum alignment (in bytes) of every simulated allocation.
pub const MIN_ALIGN: u64 = 16;

/// Simulated cache-line size, the natural alignment for co-location
/// regions.
pub const LINE_ALIGN: u64 = 64;

/// Simulated page size, the natural alignment for pools and tier
/// regions.
pub const PAGE_ALIGN: u64 = 4096;

/// Rounds `value` up to the next multiple of `align`.
///
/// The single alignment primitive every placement path — heap blocks,
/// pool carving, and linker cursors — goes through, so heap and static
/// layouts can never disagree about rounding.
///
/// ```
/// use orp_allocsim::align_up_to;
/// assert_eq!(align_up_to(17, 16), 32);
/// assert_eq!(align_up_to(4096, 4096), 4096);
/// assert_eq!(align_up_to(0, 64), 0);
/// ```
///
/// # Panics
///
/// Panics if `align` is zero.
#[must_use]
pub fn align_up_to(value: u64, align: u64) -> u64 {
    assert!(align > 0, "alignment must be nonzero");
    value.div_ceil(align) * align
}

/// Rounds `size` up to the allocator's minimum alignment.
///
/// A zero-size request still occupies one aligned unit, matching the
/// behavior of real `malloc` implementations where `malloc(0)` returns a
/// unique pointer.
///
/// ```
/// use orp_allocsim::{align_up, MIN_ALIGN};
/// assert_eq!(align_up(1), MIN_ALIGN);
/// assert_eq!(align_up(16), 16);
/// assert_eq!(align_up(17), 32);
/// ```
#[must_use]
pub fn align_up(size: u64) -> u64 {
    align_up_to(size.max(1), MIN_ALIGN)
}

/// The placement-strategy interface shared by all simulated allocators.
///
/// Implementations only decide *where* blocks go; the surrounding
/// [`SimHeap`] tracks live blocks, sizes and statistics.
pub trait PlacementStrategy: std::fmt::Debug {
    /// Chooses a base address for a block of `size` bytes
    /// (already aligned by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the strategy cannot place
    /// the block.
    fn place(&mut self, size: u64) -> Result<u64, AllocError>;

    /// Returns a block previously handed out by [`PlacementStrategy::place`].
    ///
    /// `base` and `size` are guaranteed by the caller to describe a live
    /// block.
    fn unplace(&mut self, base: u64, size: u64);
}
