//! Allocation error type.

/// Errors produced by the simulated heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The allocator could not place a block of the requested size.
    OutOfMemory {
        /// The (aligned) size that could not be placed.
        requested: u64,
    },
    /// `free` was called on an address that is not the base of a live
    /// block (double free or wild pointer).
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
    /// A pooled allocation referenced a pool id this heap never
    /// reserved.
    InvalidPool {
        /// The offending pool id.
        pool: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "simulated heap exhausted placing {requested} bytes")
            }
            AllocError::InvalidFree { addr } => {
                write!(f, "free of {addr:#x} which is not a live block base")
            }
            AllocError::InvalidPool { pool } => {
                write!(f, "pool id {pool} was never reserved on this heap")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let oom = AllocError::OutOfMemory { requested: 64 };
        assert!(oom.to_string().contains("64"));
        let bad = AllocError::InvalidFree { addr: 0x40 };
        assert!(bad.to_string().contains("0x40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AllocError>();
    }
}
