//! Placement-randomizing allocator.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{AllocError, PlacementStrategy};

/// An allocator that scatters blocks pseudo-randomly across the arena.
///
/// This is the adversarial end of the artifact spectrum: with a different
/// seed every run — modelling address-space randomization plus a
/// hardening allocator — raw addresses carry *no* run-to-run structure at
/// all, while the object-relative profile is untouched. Placement is
/// rejection-sampled against the live-block map, falling back to
/// first-fit when the arena gets crowded.
#[derive(Debug, Clone)]
pub struct RandomizingAllocator {
    base: u64,
    size: u64,
    rng: StdRng,
    /// Live blocks, keyed by base offset, value = length.
    live: BTreeMap<u64, u64>,
    /// Rejection-sampling attempts before falling back to first-fit.
    attempts: u32,
}

impl RandomizingAllocator {
    /// Creates a randomizing allocator over `[base, base + size)` seeded
    /// with `seed`.
    #[must_use]
    pub fn new(base: u64, size: u64, seed: u64) -> Self {
        RandomizingAllocator {
            base,
            size,
            rng: StdRng::seed_from_u64(seed),
            live: BTreeMap::new(),
            attempts: 64,
        }
    }

    /// `true` when `[off, off+len)` overlaps no live block.
    fn fits(&self, off: u64, len: u64) -> bool {
        if off + len > self.size {
            return false;
        }
        // Predecessor block must end at or before `off`.
        if let Some((&b, &l)) = self.live.range(..=off).next_back() {
            if b + l > off {
                return false;
            }
        }
        // Successor block must start at or after `off + len`.
        if let Some((&b, _)) = self.live.range(off..).next() {
            if b < off + len {
                return false;
            }
        }
        true
    }

    /// First-fit fallback scan over the gaps between live blocks.
    fn first_fit(&self, len: u64) -> Option<u64> {
        let mut cursor = 0u64;
        for (&b, &l) in &self.live {
            if b >= cursor && b - cursor >= len {
                return Some(cursor);
            }
            cursor = cursor.max(b + l);
        }
        if self.size >= cursor && self.size - cursor >= len {
            return Some(cursor);
        }
        None
    }
}

impl PlacementStrategy for RandomizingAllocator {
    fn place(&mut self, size: u64) -> Result<u64, AllocError> {
        let span = self.size.saturating_sub(size);
        for _ in 0..self.attempts {
            // Sample a 16-byte-aligned offset.
            let off = (self.rng.random_range(0..=span) / 16) * 16;
            if self.fits(off, size) {
                self.live.insert(off, size);
                return Ok(self.base + off);
            }
        }
        let off = self
            .first_fit(size)
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        self.live.insert(off, size);
        Ok(self.base + off)
    }

    fn unplace(&mut self, base: u64, _size: u64) {
        self.live.remove(&(base - self.base));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_never_overlap() {
        let mut a = RandomizingAllocator::new(0, 1 << 16, 42);
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for i in 0..200 {
            let len = 16 * (1 + (i % 7));
            let b = a.place(len).unwrap();
            for &(ob, ol) in &blocks {
                assert!(b + len <= ob || ob + ol <= b, "overlap at {b:#x}");
            }
            blocks.push((b, len));
        }
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut a = RandomizingAllocator::new(0, 1 << 20, 1);
        let mut b = RandomizingAllocator::new(0, 1 << 20, 2);
        let pa: Vec<u64> = (0..32).map(|_| a.place(64).unwrap()).collect();
        let pb: Vec<u64> = (0..32).map(|_| b.place(64).unwrap()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = RandomizingAllocator::new(0, 1 << 20, 7);
        let mut b = RandomizingAllocator::new(0, 1 << 20, 7);
        for _ in 0..32 {
            assert_eq!(a.place(48).unwrap(), b.place(48).unwrap());
        }
    }

    #[test]
    fn falls_back_to_first_fit_when_crowded() {
        // Arena of exactly 4 blocks: random placement will collide often,
        // but every allocation must still succeed until truly full.
        let mut a = RandomizingAllocator::new(0, 64, 3);
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(a.place(16).unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 16, 32, 48]);
        assert!(a.place(16).is_err());
    }

    #[test]
    fn free_makes_space_reusable() {
        let mut a = RandomizingAllocator::new(0, 64, 9);
        let blocks: Vec<u64> = (0..4).map(|_| a.place(16).unwrap()).collect();
        a.unplace(blocks[2], 16);
        assert_eq!(a.place(16).unwrap(), blocks[2]);
    }
}
