//! Bump allocator: monotonically increasing placement, no reuse.

use crate::{AllocError, PlacementStrategy};

/// The simplest placement strategy: hand out consecutive addresses and
/// never reuse freed space.
///
/// Bump allocation makes raw addresses *look* maximally regular for
/// allocation-ordered traversals — which is exactly the fragile regularity
/// the paper warns about, since it evaporates under any other allocator.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    base: u64,
    limit: u64,
    next: u64,
}

impl BumpAllocator {
    /// Creates a bump allocator over `[base, base + size)`.
    #[must_use]
    pub fn new(base: u64, size: u64) -> Self {
        BumpAllocator {
            base,
            limit: base + size,
            next: base,
        }
    }

    /// Bytes handed out so far (freed space is never reclaimed).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.next - self.base
    }
}

impl PlacementStrategy for BumpAllocator {
    fn place(&mut self, size: u64) -> Result<u64, AllocError> {
        if self.next + size > self.limit {
            return Err(AllocError::OutOfMemory { requested: size });
        }
        let addr = self.next;
        self.next += size;
        Ok(addr)
    }

    fn unplace(&mut self, _base: u64, _size: u64) {
        // Bump allocators never reuse space.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_are_consecutive() {
        let mut a = BumpAllocator::new(0x1000, 0x1000);
        assert_eq!(a.place(16).unwrap(), 0x1000);
        assert_eq!(a.place(32).unwrap(), 0x1010);
        assert_eq!(a.place(16).unwrap(), 0x1030);
        assert_eq!(a.used(), 0x40);
    }

    #[test]
    fn free_does_not_enable_reuse() {
        let mut a = BumpAllocator::new(0, 0x100);
        let b0 = a.place(16).unwrap();
        a.unplace(b0, 16);
        assert_ne!(a.place(16).unwrap(), b0);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = BumpAllocator::new(0, 32);
        a.place(32).unwrap();
        assert_eq!(a.place(1), Err(AllocError::OutOfMemory { requested: 1 }));
    }
}
