//! Property test for plan application: whatever the plan and object
//! inventory, the applied layout places every object exactly once, at
//! a minimum-aligned base, with no two extents overlapping — across
//! every allocator strategy.

use proptest::collection::vec;
use proptest::prelude::*;

use orp_allocsim::{
    align_up, apply_plan, AllocatorKind, LinkerLayout, ObjectExtent, Segment, SimHeap, MIN_ALIGN,
};
use orp_core::{GroupId, ObjectSerial};
use orp_opt::{LayoutPlan, Transform, TransformKind};

fn arb_objects() -> impl Strategy<Value = Vec<ObjectExtent>> {
    vec((0u32..6, 0u64..40, 1u64..256, 0u8..4), 1..60).prop_map(|raw| {
        raw.into_iter()
            .map(|(g, s, size, seg)| ObjectExtent {
                group: GroupId(g),
                serial: ObjectSerial(s),
                size,
                // Static objects are rarer, like real programs.
                segment: if seg == 0 {
                    Segment::Static
                } else {
                    Segment::Heap
                },
            })
            .collect()
    })
}

/// Transforms referencing the same (group, serial) space as the
/// objects — some members will exist, some will not, both must be
/// handled.
fn arb_transform() -> impl Strategy<Value = Transform> {
    let colocate = vec((0u32..6, 0u64..40), 2..10).prop_map(|objs| {
        let mut seen = std::collections::BTreeSet::new();
        let mut members: Vec<(GroupId, ObjectSerial)> = objs
            .into_iter()
            .filter(|o| seen.insert(*o))
            .map(|(g, s)| (GroupId(g), ObjectSerial(s)))
            .collect();
        if members.len() < 2 {
            members.push((GroupId(63), ObjectSerial(u64::MAX)));
        }
        TransformKind::Colocate { objects: members }
    });
    let pool = (0u32..6).prop_map(|g| TransformKind::PoolGroup { group: GroupId(g) });
    let split = (0u32..6, vec(0u64..40, 1..12)).prop_map(|(g, hot)| {
        let hot: std::collections::BTreeSet<u64> = hot.into_iter().collect();
        TransformKind::HotColdSplit {
            group: GroupId(g),
            hot: hot.into_iter().map(ObjectSerial).collect(),
        }
    });
    let reorder = (0u32..6).prop_map(|g| TransformKind::FieldReorder {
        group: GroupId(g),
        order: vec![0, 16, 8],
    });
    (prop_oneof![colocate, pool, split, reorder], 0u64..10_000).prop_map(|(kind, benefit)| {
        Transform {
            kind,
            advisor: "prop".to_string(),
            benefit,
        }
    })
}

proptest! {
    #[test]
    fn planned_layouts_never_overlap_or_misalign(
        objects in arb_objects(),
        transforms in vec(arb_transform(), 0..8),
        kind_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let plan = LayoutPlan::from_transforms(transforms);
        let kind = AllocatorKind::ALL[kind_idx];
        let mut heap = SimHeap::new(kind, seed);
        let mut layout = LinkerLayout::new(seed % 0x1000);
        let placed = apply_plan(&plan, &objects, &mut heap, &mut layout).unwrap();

        // Exactly one address per distinct object.
        let mut distinct = std::collections::BTreeSet::new();
        for o in &objects {
            distinct.insert((o.group, o.serial));
        }
        prop_assert_eq!(placed.len(), distinct.len());

        // Sizes by key (first occurrence wins, as documented).
        let mut sizes = std::collections::BTreeMap::new();
        for o in &objects {
            sizes.entry((o.group, o.serial)).or_insert(o.size);
        }

        // Every base aligned; every extent disjoint.
        let mut extents: Vec<(u64, u64)> = Vec::new();
        for (key, base) in placed.bases() {
            prop_assert_eq!(base % MIN_ALIGN, 0, "misaligned base {:#x}", base);
            let len = align_up(sizes[&key]);
            extents.push((base, len));
        }
        extents.sort_unstable();
        for w in extents.windows(2) {
            let (a_base, a_len) = w[0];
            let (b_base, _) = w[1];
            prop_assert!(
                a_base + a_len <= b_base,
                "extents overlap: [{:#x};{}) and [{:#x};..)",
                a_base, a_len, b_base
            );
        }
    }
}
