//! Property tests: every allocator strategy hands out disjoint blocks,
//! survives arbitrary alloc/free interleavings, and reclaims memory
//! (except bump, which by design does not).

use orp_allocsim::{AllocatorKind, SimHeap};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Alloc {
        size: u64,
    },
    /// Frees the `idx % live`-th live block, when any.
    Free {
        idx: usize,
    },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..512).prop_map(|size| Action::Alloc { size }),
        (0usize..64).prop_map(|idx| Action::Free { idx }),
    ]
}

fn check_kind(kind: AllocatorKind, seed: u64, script: &[Action]) {
    let mut heap = SimHeap::with_arena(kind, seed, 0x10000, 1 << 20);
    // (base, size) of live blocks per the model.
    let mut live: Vec<(u64, u64)> = Vec::new();
    for action in script {
        match action {
            Action::Alloc { size } => {
                if let Ok(base) = heap.alloc(*size) {
                    let len = heap.block_size(base).expect("just allocated");
                    assert!(len >= *size, "{kind}: block smaller than requested");
                    for &(ob, ol) in &live {
                        assert!(
                            base + len <= ob || ob + ol <= base,
                            "{kind}: block [{base:#x};{len}) overlaps [{ob:#x};{ol})"
                        );
                    }
                    live.push((base, len));
                }
            }
            Action::Free { idx } => {
                if !live.is_empty() {
                    let (base, _) = live.swap_remove(idx % live.len());
                    heap.free(base).expect("live block frees cleanly");
                }
            }
        }
    }
    assert_eq!(heap.live_blocks(), live.len());
    let stats = heap.stats();
    assert_eq!(stats.allocs - stats.frees, live.len() as u64);
    assert_eq!(stats.live_bytes, live.iter().map(|&(_, l)| l).sum::<u64>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_strategies_maintain_disjointness(
        script in proptest::collection::vec(arb_action(), 0..300),
        seed in 0u64..8,
    ) {
        for kind in AllocatorKind::ALL {
            check_kind(kind, seed, &script);
        }
    }

    #[test]
    fn reusing_strategies_survive_full_churn(
        sizes in proptest::collection::vec(1u64..256, 1..64),
    ) {
        // Allocate everything, free everything, repeat: reusing
        // allocators must never run out in a 1 MiB arena for < 16 KiB
        // of live data.
        for kind in [AllocatorKind::FreeList, AllocatorKind::Buddy, AllocatorKind::Randomizing] {
            let mut heap = SimHeap::with_arena(kind, 3, 0, 1 << 20);
            for _round in 0..4 {
                let blocks: Vec<u64> =
                    sizes.iter().map(|&s| heap.alloc(s).expect("fits")).collect();
                for b in blocks {
                    heap.free(b).expect("free succeeds");
                }
                assert_eq!(heap.live_blocks(), 0, "{kind}");
            }
        }
    }
}
