//! Container envelope: magic + version header, checksummed chunks.

use std::io::{self, Read, Write};

use crate::chunk::{ChunkTag, ProfileKind};
use crate::crc::Crc32;
use crate::error::FormatError;
use crate::varint::{read_varint, varint_len, write_varint};

/// Eight-byte file magic, PNG-style: a high bit to catch 7-bit
/// transport, `ORP`, a CR-LF and a lone LF to catch line-ending
/// translation, and a DOS EOF to stop accidental `type`-style dumps.
pub const MAGIC: [u8; 8] = *b"\x89ORP\r\n\x1a\n";

/// Container format version this crate reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound on a single chunk's payload length.
///
/// A corrupted length field must not drive allocation: readers reject
/// anything larger with [`FormatError::Oversize`] before touching the
/// payload. Producers batch large streams (traces) into many chunks,
/// so the bound is generous but finite.
pub const MAX_CHUNK_LEN: u64 = 1 << 30;

/// Initial payload-buffer allocation cap: a lying length field should
/// cost at most this much memory before EOF surfaces as `Truncated`.
const PREALLOC_CAP: usize = 1 << 20;

/// On-wire totals for one container reader or writer: plain integers
/// bumped inline (observability layers read them at phase boundaries;
/// decode/encode loops themselves never call out).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Chunks processed, including `META` and the `END ` terminator.
    pub chunks: u64,
    /// Bytes on the wire: header, tags, length varints, payloads, CRCs.
    pub bytes: u64,
}

/// One decoded chunk: its tag and verified payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The four-byte tag.
    pub tag: ChunkTag,
    /// Payload bytes, already CRC-verified.
    pub payload: Vec<u8>,
}

/// Writes a container: header on construction, chunks on demand,
/// `END ` on [`ContainerWriter::finish`].
#[derive(Debug)]
pub struct ContainerWriter<W: Write> {
    writer: W,
    stats: IoStats,
}

impl<W: Write> ContainerWriter<W> {
    /// Writes the magic + version header.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn new(mut writer: W) -> io::Result<Self> {
        writer.write_all(&MAGIC)?;
        writer.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(ContainerWriter {
            writer,
            stats: IoStats {
                chunks: 0,
                bytes: (MAGIC.len() + 4) as u64,
            },
        })
    }

    /// Writes one chunk: tag, varint length, payload, CRC-32 over
    /// tag + payload.
    ///
    /// # Errors
    ///
    /// Rejects payloads over [`MAX_CHUNK_LEN`]; propagates writer
    /// errors.
    pub fn chunk(&mut self, tag: ChunkTag, payload: &[u8]) -> io::Result<()> {
        if payload.len() as u64 > MAX_CHUNK_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "chunk payload exceeds MAX_CHUNK_LEN",
            ));
        }
        self.writer.write_all(&tag.0)?;
        write_varint(&mut self.writer, payload.len() as u64)?;
        self.writer.write_all(payload)?;
        let mut crc = Crc32::new();
        crc.update(&tag.0);
        crc.update(payload);
        self.writer.write_all(&crc.finalize().to_le_bytes())?;
        self.stats.chunks += 1;
        self.stats.bytes += 4 + varint_len(payload.len() as u64) + payload.len() as u64 + 4;
        Ok(())
    }

    /// Writes the `META` chunk describing the profile kind.
    ///
    /// Payload: `varint(kind code)`, then `varint(attribute count)`
    /// (zero today; the hook for future self-description).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn meta(&mut self, kind: ProfileKind) -> io::Result<()> {
        let mut payload = Vec::with_capacity(2);
        write_varint(&mut payload, kind.code())?;
        write_varint(&mut payload, 0)?; // attribute count
        self.chunk(ChunkTag::META, &payload)
    }

    /// Writes the `END ` terminator, flushes, and returns the inner
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.chunk(ChunkTag::END, &[])?;
        self.writer.flush()?;
        Ok(self.writer)
    }

    /// The inner writer, for interleaved non-chunk bookkeeping.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }

    /// Chunks and on-wire bytes written so far (header included;
    /// non-chunk bytes written through [`ContainerWriter::get_mut`]
    /// are not counted).
    #[must_use]
    pub fn io_stats(&self) -> IoStats {
        self.stats
    }
}

/// Reads a container: validates the header up front, then yields
/// CRC-verified chunks until the `END ` terminator.
#[derive(Debug)]
pub struct ContainerReader<R: Read> {
    reader: R,
    version: u32,
    done: bool,
    stats: IoStats,
}

impl<R: Read> ContainerReader<R> {
    /// Validates the magic and version.
    ///
    /// # Errors
    ///
    /// [`FormatError::BadMagic`] / [`FormatError::UnsupportedVersion`]
    /// on header mismatch, [`FormatError::Truncated`] when the stream
    /// ends inside the header.
    pub fn new(mut reader: R) -> Result<Self, FormatError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let mut version = [0u8; 4];
        reader.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        if version == 0 || version > FORMAT_VERSION {
            return Err(FormatError::UnsupportedVersion(version));
        }
        Ok(ContainerReader {
            reader,
            version,
            done: false,
            stats: IoStats {
                chunks: 0,
                bytes: (MAGIC.len() + 4) as u64,
            },
        })
    }

    /// The container's format version.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// True once the `END ` terminator has been consumed.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.done
    }

    /// Reads the next chunk; `Ok(None)` once `END ` is reached.
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for truncation, oversize lengths, and
    /// checksum mismatches. Never panics and never loops: every path
    /// either consumes input or returns.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, FormatError> {
        if self.done {
            return Ok(None);
        }
        let mut tag = [0u8; 4];
        self.reader.read_exact(&mut tag)?;
        let tag = ChunkTag(tag);
        let len = read_varint(&mut self.reader)?;
        if len > MAX_CHUNK_LEN {
            return Err(FormatError::Oversize { len });
        }
        // Cap the speculative allocation: a corrupt length field costs
        // at most PREALLOC_CAP before EOF surfaces as Truncated.
        let len_usize = usize::try_from(len).map_err(|_| FormatError::Oversize { len })?;
        let mut payload = Vec::with_capacity(len_usize.min(PREALLOC_CAP));
        let read = (&mut self.reader)
            .take(len)
            .read_to_end(&mut payload)
            .map_err(FormatError::from)?;
        if read as u64 != len {
            return Err(FormatError::Truncated);
        }
        let mut stored = [0u8; 4];
        self.reader.read_exact(&mut stored)?;
        let mut crc = Crc32::new();
        crc.update(&tag.0);
        crc.update(&payload);
        if crc.finalize() != u32::from_le_bytes(stored) {
            return Err(FormatError::ChecksumMismatch { tag });
        }
        self.stats.chunks += 1;
        self.stats.bytes += 4 + varint_len(len) + len + 4;
        if tag == ChunkTag::END {
            if !payload.is_empty() {
                return Err(FormatError::Malformed("END chunk carries a payload"));
            }
            self.done = true;
            return Ok(None);
        }
        Ok(Some(Chunk { tag, payload }))
    }

    /// Reads the next chunk and requires it to carry `tag`.
    ///
    /// # Errors
    ///
    /// [`FormatError::MissingChunk`] at the terminator,
    /// [`FormatError::UnexpectedChunk`] on a tag mismatch, plus
    /// everything [`ContainerReader::next_chunk`] returns.
    pub fn expect_chunk(&mut self, tag: ChunkTag) -> Result<Vec<u8>, FormatError> {
        match self.next_chunk()? {
            Some(chunk) if chunk.tag == tag => Ok(chunk.payload),
            Some(chunk) => Err(FormatError::UnexpectedChunk {
                expected: tag,
                found: chunk.tag,
            }),
            None => Err(FormatError::MissingChunk(tag)),
        }
    }

    /// Reads the `META` chunk (which must come first) and returns the
    /// profile kind.
    ///
    /// # Errors
    ///
    /// Everything [`ContainerReader::expect_chunk`] returns, plus
    /// [`FormatError::Malformed`] / [`FormatError::WrongKind`] for a
    /// bad `META` payload.
    pub fn read_meta(&mut self) -> Result<ProfileKind, FormatError> {
        let payload = self.expect_chunk(ChunkTag::META)?;
        let mut cursor = payload.as_slice();
        let kind = ProfileKind::from_code(read_varint(&mut cursor)?)?;
        let attrs = read_varint(&mut cursor)?;
        if attrs != 0 {
            return Err(FormatError::Malformed("unsupported META attributes"));
        }
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes in META chunk"));
        }
        Ok(kind)
    }

    /// Drains the remaining chunks through the terminator, verifying
    /// every checksum, and returns the inner reader.
    ///
    /// # Errors
    ///
    /// Everything [`ContainerReader::next_chunk`] returns.
    pub fn drain(mut self) -> Result<R, FormatError> {
        while self.next_chunk()?.is_some() {}
        Ok(self.reader)
    }

    /// The inner reader (positioned after the last consumed chunk).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.reader
    }

    /// Chunks and on-wire bytes consumed so far (header included; only
    /// fully CRC-verified chunks count).
    #[must_use]
    pub fn io_stats(&self) -> IoStats {
        self.stats
    }
}

/// Writes a complete single-payload container: header, `META`, one
/// chunk, `END `.
///
/// This is the shape of every non-streaming profile file (OMSG, RASG,
/// LEAP, LMAD set, phase signatures, standalone grammars).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_single_chunk(w: impl Write, kind: ProfileKind, payload: &[u8]) -> io::Result<()> {
    let mut writer = ContainerWriter::new(w)?;
    writer.meta(kind)?;
    writer.chunk(kind.primary_chunk(), payload)?;
    writer.finish()?;
    Ok(())
}

/// Reads a single-payload container written by [`write_single_chunk`],
/// checking the kind, and returns the primary chunk's payload.
///
/// # Errors
///
/// [`FormatError::WrongKind`] when the container holds a different
/// profile kind; otherwise everything the chunk reader returns.
pub fn read_single_chunk(r: impl Read, kind: ProfileKind) -> Result<Vec<u8>, FormatError> {
    let mut reader = ContainerReader::new(r)?;
    let found = reader.read_meta()?;
    if found != kind {
        return Err(FormatError::WrongKind {
            found: found.code(),
        });
    }
    let payload = reader.expect_chunk(kind.primary_chunk())?;
    // Auxiliary metadata (an embedded MREP run report) may trail the
    // primary payload; any other extra chunk stays malformed.
    while let Some(chunk) = reader.next_chunk()? {
        if chunk.tag != ChunkTag::METRICS {
            return Err(FormatError::Malformed("unexpected extra chunk"));
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_container() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = ContainerWriter::new(&mut buf).unwrap();
        w.meta(ProfileKind::Grammar).unwrap();
        w.chunk(ChunkTag::GRAMMAR, b"grammar bytes").unwrap();
        w.finish().unwrap();
        buf
    }

    #[test]
    fn roundtrip_yields_chunks_in_order() {
        let buf = sample_container();
        let mut r = ContainerReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.version(), FORMAT_VERSION);
        assert_eq!(r.read_meta().unwrap(), ProfileKind::Grammar);
        let chunk = r.next_chunk().unwrap().unwrap();
        assert_eq!(chunk.tag, ChunkTag::GRAMMAR);
        assert_eq!(chunk.payload, b"grammar bytes");
        assert!(r.next_chunk().unwrap().is_none());
        assert!(r.at_end());
    }

    #[test]
    fn io_stats_agree_between_writer_and_reader() {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.meta(ProfileKind::Grammar).unwrap();
        w.chunk(ChunkTag::GRAMMAR, b"grammar bytes").unwrap();
        // Snapshot before finish(); the terminator adds one more chunk.
        let written = w.io_stats();
        let buf = w.finish().unwrap();
        let mut r = ContainerReader::new(buf.as_slice()).unwrap();
        while r.next_chunk().unwrap().is_some() {}
        let read = r.io_stats();
        assert_eq!(read.chunks, written.chunks + 1, "META + GRMR + END");
        assert_eq!(read.bytes, buf.len() as u64, "every wire byte counted");
    }

    #[test]
    fn single_chunk_reader_tolerates_a_trailing_metrics_chunk() {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.meta(ProfileKind::Leap).unwrap();
        w.chunk(ChunkTag::LEAP, b"leap payload").unwrap();
        w.chunk(ChunkTag::METRICS, b"{}").unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(
            read_single_chunk(buf.as_slice(), ProfileKind::Leap).unwrap(),
            b"leap payload"
        );
        // Any other trailing tag stays malformed.
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.meta(ProfileKind::Leap).unwrap();
        w.chunk(ChunkTag::LEAP, b"leap payload").unwrap();
        w.chunk(ChunkTag::TRACE, b"stray").unwrap();
        let buf = w.finish().unwrap();
        assert!(matches!(
            read_single_chunk(buf.as_slice(), ProfileKind::Leap),
            Err(FormatError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut buf = sample_container();
        buf[0] ^= 0xFF;
        assert!(matches!(
            ContainerReader::new(buf.as_slice()),
            Err(FormatError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_typed() {
        let mut buf = sample_container();
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ContainerReader::new(buf.as_slice()),
            Err(FormatError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let mut buf = sample_container();
        // Flip a bit somewhere inside the GRAMMAR payload (after the
        // 12-byte header and the ~7-byte META chunk).
        let idx = buf.len() - 10;
        buf[idx] ^= 0x01;
        let mut r = ContainerReader::new(buf.as_slice()).unwrap();
        let mut result = Ok(None);
        for _ in 0..4 {
            result = r.next_chunk();
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(FormatError::ChecksumMismatch { .. })));
    }

    #[test]
    fn truncation_is_typed_everywhere() {
        // Every strict prefix must surface Truncated: the terminator's
        // own CRC is the last thing in the file, so a clean END can
        // never be read from a cut container.
        let buf = sample_container();
        for cut in 0..buf.len() {
            let slice = &buf[..cut];
            let mut r = match ContainerReader::new(slice) {
                Ok(r) => r,
                Err(e) => {
                    assert!(
                        matches!(e, FormatError::Truncated),
                        "header cut at {cut}: {e:?}"
                    );
                    continue;
                }
            };
            let outcome = loop {
                match r.next_chunk() {
                    Ok(Some(_)) => {}
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            assert!(
                matches!(outcome, Err(FormatError::Truncated)),
                "chunk cut at {cut}: {outcome:?}"
            );
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(b"HUGE");
        write_varint(&mut buf, MAX_CHUNK_LEN + 1).unwrap();
        let mut r = ContainerReader::new(buf.as_slice()).unwrap();
        assert!(matches!(r.next_chunk(), Err(FormatError::Oversize { .. })));
    }

    #[test]
    fn single_chunk_helpers_roundtrip_and_check_kind() {
        let mut buf = Vec::new();
        write_single_chunk(&mut buf, ProfileKind::Leap, b"leap payload").unwrap();
        assert_eq!(
            read_single_chunk(buf.as_slice(), ProfileKind::Leap).unwrap(),
            b"leap payload"
        );
        assert!(matches!(
            read_single_chunk(buf.as_slice(), ProfileKind::Omsg),
            Err(FormatError::WrongKind { .. })
        ));
    }
}
