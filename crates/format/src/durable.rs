//! Crash-safe durable writes and deterministic fault injection.
//!
//! Profiles are reproducible artifacts; a crash or full disk mid-write
//! must never destroy the only copy. This module is the durability
//! contract every `.orp`/report producer writes through:
//!
//! * [`AtomicFile`] — write to a sibling temp file, flush, fsync,
//!   atomically rename over the destination, fsync the parent
//!   directory. A reader always sees the old-complete or new-complete
//!   file, never a torn one.
//! * [`FaultPlan`] — a deterministic injection spec
//!   (`io-error@n=37`, `short-write@n=12`, `interrupt@n=5`,
//!   `would-block@n=5`, `crash@byte=4096`) taken from the
//!   `ORP_FAULT_PLAN` environment variable or a CLI flag, honored by
//!   [`FailingWrite`]/[`FailingRead`] and by [`AtomicFile`] itself, so
//!   every I/O failure mode is reproducible on demand.
//! * [`RetryWrite`]/[`RetryRead`] — bounded retry with capped
//!   exponential backoff for the transient error kinds
//!   (`Interrupted`, `WouldBlock`); retries are counted so callers can
//!   surface them as `io.retries` observability counters.
//!
//! The fault plan counts *I/O operations* (each underlying
//! write/read/sync/rename call is one op) and *bytes* independently:
//! `…@n=K` arms on the K-th op, `crash@byte=B` cuts the stream after
//! exactly `B` bytes have reached the wrapped writer — modeling a
//! power cut mid-file. Once a persistent fault (an injected I/O error
//! or a crash) trips, every later operation on the same plan fails
//! too: a dead disk does not come back between two writes.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable consulted by [`FaultPlan::from_env`].
pub const FAULT_PLAN_ENV: &str = "ORP_FAULT_PLAN";

/// Marker substring present in every injected failure's message, so
/// harnesses can tell an injected fault from a real one.
pub const INJECTED_MARKER: &str = "injected";

/// The failure mode a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The `op`-th I/O operation fails persistently with an I/O error.
    IoError { op: u64 },
    /// The `op`-th write delivers only half its buffer (at least one
    /// byte); a correct `write_all` caller absorbs it.
    ShortWrite { op: u64 },
    /// Operations `op .. op + times` fail with `ErrorKind::Interrupted`
    /// (transient; a bounded retry loop absorbs them).
    Interrupt { op: u64, times: u64 },
    /// Operations `op .. op + times` fail with `ErrorKind::WouldBlock`.
    WouldBlock { op: u64, times: u64 },
    /// After exactly `byte` bytes have been written through the plan,
    /// every further operation fails persistently — a power cut.
    Crash { byte: u64 },
}

#[derive(Debug)]
struct PlanState {
    fault: Fault,
    /// I/O operations gated so far (shared by every wrapper cloned
    /// from the same plan, so one spec addresses a whole command).
    ops: AtomicU64,
    /// Bytes successfully written through the plan.
    bytes: AtomicU64,
    /// A persistent fault has tripped; everything fails from here on.
    dead: AtomicBool,
    /// The fault fired at least once (even if absorbed by a retry).
    triggered: AtomicBool,
}

/// A deterministic, shareable fault-injection plan.
///
/// Cloning shares the op/byte counters: every wrapper constructed from
/// clones of one plan draws op indices from the same sequence, so a
/// spec like `io-error@n=37` addresses the 37th I/O operation of the
/// whole command, wherever it lands.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: Arc<PlanState>,
}

/// What a gated write is allowed to do.
enum WriteGate {
    /// Write up to this many bytes (short writes truncate it).
    Allow(usize),
    /// Fail with this error.
    Fail(io::Error),
}

impl FaultPlan {
    /// Parses a spec: `io-error@n=K`, `short-write@n=K`,
    /// `interrupt@n=K` / `interrupt@n=KxT`, `would-block@n=K` /
    /// `would-block@n=KxT`, or `crash@byte=B`.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] naming the malformed spec.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let bad = |reason: &'static str| FaultSpecError {
            spec: spec.to_owned(),
            reason,
        };
        let (kind, param) = spec
            .split_once('@')
            .ok_or_else(|| bad("expected '<kind>@<param>=<value>'"))?;
        let (param_name, value) = param
            .split_once('=')
            .ok_or_else(|| bad("expected '<param>=<value>' after '@'"))?;
        let parse_n = |value: &str| -> Result<(u64, u64), FaultSpecError> {
            let (n, times) = match value.split_once('x') {
                Some((n, t)) => (
                    n.parse().map_err(|_| bad("op index is not a number"))?,
                    t.parse().map_err(|_| bad("repeat count is not a number"))?,
                ),
                None => (
                    value.parse().map_err(|_| bad("op index is not a number"))?,
                    1,
                ),
            };
            if n == 0 {
                return Err(bad("op indices are 1-based; n=0 never fires"));
            }
            Ok((n, times))
        };
        let fault = match (kind, param_name) {
            ("io-error", "n") => {
                let (op, _) = parse_n(value)?;
                Fault::IoError { op }
            }
            ("short-write", "n") => {
                let (op, _) = parse_n(value)?;
                Fault::ShortWrite { op }
            }
            ("interrupt", "n") => {
                let (op, times) = parse_n(value)?;
                Fault::Interrupt { op, times }
            }
            ("would-block", "n") => {
                let (op, times) = parse_n(value)?;
                Fault::WouldBlock { op, times }
            }
            ("crash", "byte") => Fault::Crash {
                byte: value
                    .parse()
                    .map_err(|_| bad("byte offset is not a number"))?,
            },
            _ => {
                return Err(bad(
                    "unknown fault (know: io-error@n, short-write@n, interrupt@n, \
                     would-block@n, crash@byte)",
                ))
            }
        };
        Ok(FaultPlan {
            state: Arc::new(PlanState {
                fault,
                ops: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                dead: AtomicBool::new(false),
                triggered: AtomicBool::new(false),
            }),
        })
    }

    /// Reads [`FAULT_PLAN_ENV`]; `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] when the variable is set but malformed — a
    /// typo must not silently disable the torture run.
    pub fn from_env() -> Result<Option<FaultPlan>, FaultSpecError> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(spec.trim()).map(Some),
            _ => Ok(None),
        }
    }

    /// True once the fault has fired at least once (even when the
    /// caller absorbed it via retry or `write_all`).
    #[must_use]
    pub fn triggered(&self) -> bool {
        self.state.triggered.load(Ordering::Relaxed)
    }

    /// I/O operations gated so far across every wrapper of this plan.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::Relaxed)
    }

    fn injected(&self, kind: io::ErrorKind, what: &str, op: u64) -> io::Error {
        self.state.triggered.store(true, Ordering::Relaxed);
        io::Error::new(kind, format!("{INJECTED_MARKER} {what} (op {op})"))
    }

    /// Gates one write of `len` bytes.
    fn gate_write(&self, len: usize) -> WriteGate {
        let op = self.state.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if self.state.dead.load(Ordering::Relaxed) {
            return WriteGate::Fail(self.injected(io::ErrorKind::Other, "fault is sticky", op));
        }
        match self.state.fault {
            Fault::IoError { op: at } if op == at => {
                self.state.dead.store(true, Ordering::Relaxed);
                WriteGate::Fail(self.injected(io::ErrorKind::Other, "i/o error", op))
            }
            Fault::ShortWrite { op: at } if op == at && len > 1 => {
                self.state.triggered.store(true, Ordering::Relaxed);
                WriteGate::Allow((len / 2).max(1))
            }
            Fault::Interrupt { op: at, times } if op >= at && op < at + times => {
                WriteGate::Fail(self.injected(io::ErrorKind::Interrupted, "interrupt", op))
            }
            Fault::WouldBlock { op: at, times } if op >= at && op < at + times => {
                WriteGate::Fail(self.injected(io::ErrorKind::WouldBlock, "would-block", op))
            }
            Fault::Crash { byte } => {
                let written = self.state.bytes.load(Ordering::Relaxed);
                let room = byte.saturating_sub(written);
                if room == 0 {
                    self.state.dead.store(true, Ordering::Relaxed);
                    WriteGate::Fail(self.injected(io::ErrorKind::Other, "crash", op))
                } else {
                    WriteGate::Allow(usize::try_from(room.min(len as u64)).unwrap_or(len))
                }
            }
            _ => WriteGate::Allow(len),
        }
    }

    /// Records `n` bytes as successfully written.
    fn wrote(&self, n: usize) {
        self.state.bytes.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Gates one non-write operation (read, flush, sync, rename).
    fn gate_op(&self, what: &str) -> io::Result<()> {
        let op = self.state.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(self.injected(io::ErrorKind::Other, "fault is sticky", op));
        }
        match self.state.fault {
            Fault::IoError { op: at } if op == at => {
                self.state.dead.store(true, Ordering::Relaxed);
                Err(self.injected(io::ErrorKind::Other, "i/o error", op))
            }
            Fault::Interrupt { op: at, times } if op >= at && op < at + times => {
                Err(self.injected(io::ErrorKind::Interrupted, "interrupt", op))
            }
            Fault::WouldBlock { op: at, times } if op >= at && op < at + times => {
                Err(self.injected(io::ErrorKind::WouldBlock, "would-block", op))
            }
            Fault::Crash { byte } => {
                if self.state.bytes.load(Ordering::Relaxed) >= byte {
                    self.state.dead.store(true, Ordering::Relaxed);
                    Err(self.injected(
                        io::ErrorKind::Other,
                        format!("crash at {what}").as_str(),
                        op,
                    ))
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }

    /// True when the plan's persistent fault has tripped (the crash or
    /// sticky I/O error fired).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.state.dead.load(Ordering::Relaxed)
    }
}

/// A malformed fault-plan spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending spec text.
    pub spec: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan '{}': {}", self.spec, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// A [`Write`] that injects the plan's faults into every operation.
#[derive(Debug)]
pub struct FailingWrite<W: Write> {
    inner: W,
    plan: FaultPlan,
}

impl<W: Write> FailingWrite<W> {
    /// Wraps `inner`, gating every write/flush through `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FailingWrite { inner, plan }
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.plan.gate_write(buf.len()) {
            WriteGate::Fail(e) => Err(e),
            WriteGate::Allow(len) => {
                let len = len.min(buf.len());
                let take = buf.get(..len).unwrap_or(buf);
                let n = self.inner.write(take)?;
                self.plan.wrote(n);
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.plan.gate_op("flush")?;
        self.inner.flush()
    }
}

/// A [`Read`] that injects the plan's faults into every read.
#[derive(Debug)]
pub struct FailingRead<R: Read> {
    inner: R,
    plan: FaultPlan,
}

impl<R: Read> FailingRead<R> {
    /// Wraps `inner`, gating every read through `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FailingRead { inner, plan }
    }

    /// The wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FailingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.plan.gate_op("read")?;
        self.inner.read(buf)
    }
}

/// Retry attempts allowed per operation before the transient error
/// surfaces. Bounded: an endlessly `Interrupted` descriptor must not
/// hang the collector.
const MAX_RETRIES: u32 = 16;
/// First backoff delay; doubles per retry up to [`MAX_BACKOFF`].
const BASE_BACKOFF: Duration = Duration::from_micros(50);
/// Backoff ceiling.
const MAX_BACKOFF: Duration = Duration::from_millis(5);

fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

fn backoff(attempt: u32) -> Duration {
    let exp = BASE_BACKOFF.saturating_mul(1u32 << attempt.min(16));
    exp.min(MAX_BACKOFF)
}

/// Runs `op`, retrying transient failures with capped exponential
/// backoff; bumps `retries` once per retried attempt.
fn with_retry<T>(retries: &mut u64, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(e.kind()) && attempt < MAX_RETRIES => {
                *retries += 1;
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A [`Write`] with bounded retry on transient errors
/// (`Interrupted`/`WouldBlock`), counting retries for observability.
#[derive(Debug)]
pub struct RetryWrite<W: Write> {
    inner: W,
    retries: u64,
}

impl<W: Write> RetryWrite<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        RetryWrite { inner, retries: 0 }
    }

    /// Retried attempts so far (surface as the `io.retries` counter).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for RetryWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let inner = &mut self.inner;
        with_retry(&mut self.retries, || inner.write(buf))
    }

    fn flush(&mut self) -> io::Result<()> {
        let inner = &mut self.inner;
        with_retry(&mut self.retries, || inner.flush())
    }
}

/// A [`Read`] with bounded retry on transient errors, counting
/// retries for observability.
#[derive(Debug)]
pub struct RetryRead<R: Read> {
    inner: R,
    retries: u64,
}

impl<R: Read> RetryRead<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        RetryRead { inner, retries: 0 }
    }

    /// Retried attempts so far (surface as the `io.retries` counter).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for RetryRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let inner = &mut self.inner;
        with_retry(&mut self.retries, || inner.read(buf))
    }
}

/// A durably, atomically written file.
///
/// Bytes go to a sibling temp file; [`AtomicFile::commit`] flushes,
/// fsyncs, renames over the destination, and fsyncs the parent
/// directory. Until the rename lands, the destination is untouched —
/// a crash at any point leaves it absent or old-complete, and after
/// commit returns the new contents are on disk, not just in a cache.
///
/// An [`AtomicFile`] dropped without commit removes its temp file —
/// unless its fault plan's crash tripped, in which case the temp file
/// is deliberately left behind, exactly as a killed process would
/// leave it.
///
/// # Examples
///
/// ```no_run
/// use std::io::Write;
/// use orp_format::AtomicFile;
///
/// let mut f = AtomicFile::create("profile.orp")?;
/// f.write_all(b"bytes")?;
/// f.commit()?; // old-complete before this line, new-complete after
/// # std::io::Result::Ok(())
/// ```
#[derive(Debug)]
pub struct AtomicFile {
    file: Option<File>,
    tmp: PathBuf,
    dest: PathBuf,
    plan: Option<FaultPlan>,
    committed: bool,
}

impl AtomicFile {
    /// Opens a temp file next to `dest` for writing.
    ///
    /// # Errors
    ///
    /// Propagates the open failure (missing parent directory,
    /// permissions).
    pub fn create(dest: impl AsRef<Path>) -> io::Result<AtomicFile> {
        Self::create_with_plan(dest, None)
    }

    /// [`AtomicFile::create`] with a fault-injection plan gating every
    /// write, sync and rename.
    ///
    /// # Errors
    ///
    /// As [`AtomicFile::create`].
    pub fn create_with_plan(
        dest: impl AsRef<Path>,
        plan: Option<FaultPlan>,
    ) -> io::Result<AtomicFile> {
        let dest = dest.as_ref().to_path_buf();
        let name = dest
            .file_name()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{} has no file name to write next to", dest.display()),
                )
            })?
            .to_owned();
        let mut tmp_name = std::ffi::OsString::from(".");
        tmp_name.push(&name);
        tmp_name.push(format!(".tmp-{}", std::process::id()));
        let tmp = dest.with_file_name(tmp_name);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        Ok(AtomicFile {
            file: Some(file),
            tmp,
            dest,
            plan,
            committed: false,
        })
    }

    /// The destination this file will atomically replace on commit.
    #[must_use]
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    fn file(&mut self) -> io::Result<&mut File> {
        self.file
            .as_mut()
            .ok_or_else(|| io::Error::other("atomic file was already committed"))
    }

    /// Makes the written bytes durable and visible: flush, fsync the
    /// temp file, rename it over the destination, fsync the parent
    /// directory (so the rename itself survives a power cut).
    ///
    /// Transient failures (`Interrupted`/`WouldBlock` — fsync can hit
    /// `EINTR` too) are retried with the same bounded backoff as the
    /// read/write wrappers.
    ///
    /// # Errors
    ///
    /// Propagates any step's failure. On failure before the rename the
    /// destination is untouched; a failure after the rename (the
    /// directory fsync) leaves the new file visible, so the
    /// old-complete-or-new-complete invariant holds on every path.
    pub fn commit(mut self) -> io::Result<()> {
        let file = self
            .file
            .take()
            .ok_or_else(|| io::Error::other("atomic file was already committed"))?;
        let plan = self.plan.clone();
        let gate = |what: &str| match &plan {
            Some(p) => p.gate_op(what),
            None => Ok(()),
        };
        let mut retries = 0u64;
        with_retry(&mut retries, || {
            gate("fsync")?;
            file.sync_all()
        })?;
        drop(file);
        with_retry(&mut retries, || {
            gate("rename")?;
            fs::rename(&self.tmp, &self.dest)
        })?;
        self.committed = true;
        // Failure to fsync the directory is reported (the rename may
        // not be durable yet) but the new file is already visible.
        with_retry(&mut retries, || {
            gate("dir-fsync")?;
            sync_parent_dir(&self.dest)
        })
    }
}

/// Fsyncs `path`'s parent directory so a just-renamed entry survives
/// power loss. Platforms that cannot open directories for syncing
/// (non-Unix) skip silently — the rename is still atomic there.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        // Directories are not openable on every platform/filesystem;
        // the write itself already succeeded.
        Err(_) => Ok(()),
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let gate = match &self.plan {
            Some(plan) => plan.gate_write(buf.len()),
            None => WriteGate::Allow(buf.len()),
        };
        match gate {
            WriteGate::Fail(e) => Err(e),
            WriteGate::Allow(len) => {
                let len = len.min(buf.len());
                let take = buf.get(..len).unwrap_or(buf);
                let n = self.file()?.write(take)?;
                if let Some(plan) = &self.plan {
                    plan.wrote(n);
                }
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(plan) = &self.plan {
            plan.gate_op("flush")?;
        }
        self.file()?.flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // A tripped crash plan models a killed process: it would not
        // have cleaned up, so neither do we — torture harnesses can
        // then inspect the torn temp file. Every other abandon path
        // tidies up like a well-behaved program.
        let crashed = self.plan.as_ref().is_some_and(FaultPlan::is_dead);
        drop(self.file.take());
        if !crashed {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Writes `bytes` to `dest` through the full durable path: temp file,
/// fsync, rename, directory fsync.
///
/// # Errors
///
/// Propagates any step's failure; the destination is old-complete or
/// new-complete regardless.
pub fn write_bytes_atomic(
    dest: impl AsRef<Path>,
    bytes: &[u8],
    plan: Option<FaultPlan>,
) -> io::Result<()> {
    let mut file = AtomicFile::create_with_plan(dest, plan)?;
    file.write_all(bytes)?;
    file.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("orp-durable-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    #[cfg_attr(miri, ignore = "exercises the real filesystem (fsync/rename)")]
    fn atomic_write_replaces_old_contents_and_cleans_temp() {
        let dir = tmp_dir("replace");
        let dest = dir.join("out.orp");
        fs::write(&dest, b"old").unwrap();
        write_bytes_atomic(&dest, b"new contents", None).unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"new contents");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.file_name()))
            .filter(|n| n.to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "exercises the real filesystem (fsync/rename)")]
    fn abandoned_atomic_file_leaves_destination_untouched() {
        let dir = tmp_dir("abandon");
        let dest = dir.join("out.orp");
        fs::write(&dest, b"old").unwrap();
        {
            let mut f = AtomicFile::create(&dest).unwrap();
            f.write_all(b"half a new fi").unwrap();
            // dropped without commit
        }
        assert_eq!(fs::read(&dest).unwrap(), b"old");
    }

    #[test]
    #[cfg_attr(miri, ignore = "exercises the real filesystem (fsync/rename)")]
    fn io_error_sweep_preserves_old_or_new() {
        let dir = tmp_dir("sweep");
        let dest = dir.join("out.orp");
        let payload = vec![0xABu8; 300];
        // Find the op count on a clean run, then fail each op in turn.
        let probe = FaultPlan::parse("io-error@n=1000000").unwrap();
        write_bytes_atomic(&dest, &payload, Some(probe.clone())).unwrap();
        let total_ops = probe.ops();
        assert!(total_ops >= 3, "write + fsync + rename at minimum");
        for k in 1..=total_ops {
            fs::write(&dest, b"old").unwrap();
            let plan = FaultPlan::parse(&format!("io-error@n={k}")).unwrap();
            let result = write_bytes_atomic(&dest, &payload, Some(plan.clone()));
            assert!(plan.triggered(), "op {k} never fired");
            let on_disk = fs::read(&dest).unwrap();
            assert!(
                on_disk == b"old" || on_disk == payload,
                "op {k}: torn file ({} bytes)",
                on_disk.len()
            );
            // Anything failing before the rename leaves the old file.
            if on_disk == b"old" {
                assert!(result.is_err(), "op {k}: old file but reported success");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "exercises the real filesystem (fsync/rename)")]
    fn crash_sweep_never_tears_the_destination() {
        let dir = tmp_dir("crash");
        let dest = dir.join("out.orp");
        let payload: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        for byte in (0..payload.len() as u64 + 2).step_by(13) {
            fs::write(&dest, b"old").unwrap();
            let plan = FaultPlan::parse(&format!("crash@byte={byte}")).unwrap();
            let result = write_bytes_atomic(&dest, &payload, Some(plan));
            let on_disk = fs::read(&dest).unwrap();
            assert!(
                on_disk == b"old" || on_disk == payload,
                "crash at byte {byte}: torn file"
            );
            if byte < payload.len() as u64 {
                assert!(result.is_err(), "crash at byte {byte} reported success");
                assert_eq!(on_disk, b"old");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "exercises the real filesystem (fsync/rename)")]
    fn crash_leaves_the_torn_temp_file_behind() {
        let dir = tmp_dir("crash-temp");
        let dest = dir.join("out.orp");
        let plan = FaultPlan::parse("crash@byte=5").unwrap();
        let mut f = AtomicFile::create_with_plan(&dest, Some(plan)).unwrap();
        let err = f.write_all(&[1u8; 64]).unwrap_err();
        assert!(err.to_string().contains(INJECTED_MARKER));
        drop(f);
        let torn: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert_eq!(torn.len(), 1, "killed process leaves its temp file");
        assert_eq!(fs::metadata(torn[0].path()).unwrap().len(), 5);
        assert!(!dest.exists());
    }

    #[test]
    #[cfg_attr(miri, ignore = "exercises the real filesystem (fsync/rename)")]
    fn short_write_is_absorbed_by_write_all() {
        let dir = tmp_dir("short");
        let dest = dir.join("out.orp");
        let payload = vec![7u8; 128];
        let plan = FaultPlan::parse("short-write@n=1").unwrap();
        write_bytes_atomic(&dest, &payload, Some(plan.clone())).unwrap();
        assert!(plan.triggered());
        assert_eq!(fs::read(&dest).unwrap(), payload);
    }

    #[test]
    fn interrupts_are_retried_and_counted() {
        let plan = FaultPlan::parse("interrupt@n=1x3").unwrap();
        let mut w = RetryWrite::new(FailingWrite::new(Vec::new(), plan));
        w.write_all(b"payload").unwrap();
        assert_eq!(w.retries(), 3);
        assert_eq!(w.into_inner().into_inner(), b"payload");
    }

    #[test]
    fn would_block_reads_are_retried_and_counted() {
        let plan = FaultPlan::parse("would-block@n=1x2").unwrap();
        let mut r = RetryRead::new(FailingRead::new(&b"payload"[..], plan));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"payload");
        assert_eq!(r.retries(), 2);
    }

    #[test]
    fn retry_is_bounded() {
        let times = u64::from(MAX_RETRIES) + 10;
        let plan = FaultPlan::parse(&format!("interrupt@n=1x{times}")).unwrap();
        let mut w = RetryWrite::new(FailingWrite::new(Vec::new(), plan));
        // `write` (not `write_all`: std's write_all retries Interrupted
        // itself, which would mask the bound).
        let err = w.write(b"payload").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(w.retries(), u64::from(MAX_RETRIES));
    }

    #[test]
    fn fault_specs_parse_and_reject() {
        for good in [
            "io-error@n=37",
            "short-write@n=12",
            "interrupt@n=5",
            "interrupt@n=5x9",
            "would-block@n=2",
            "crash@byte=4096",
            "crash@byte=0",
        ] {
            FaultPlan::parse(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "io-error",
            "io-error@n",
            "io-error@n=x",
            "io-error@n=0",
            "io-error@byte=3",
            "crash@n=3",
            "melt@n=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn shared_plan_counts_ops_across_wrappers() {
        let plan = FaultPlan::parse("io-error@n=3").unwrap();
        let mut a = FailingWrite::new(Vec::new(), plan.clone());
        let mut b = FailingWrite::new(Vec::new(), plan.clone());
        a.write_all(b"x").unwrap(); // op 1
        b.write_all(b"y").unwrap(); // op 2
        assert!(a.write_all(b"z").is_err()); // op 3 fires
        assert!(plan.triggered());
        // Sticky: the next op on any wrapper of the plan fails too.
        assert!(b.write_all(b"w").is_err());
    }
}
