//! Shared integer codecs: LEB128 varints and zigzag signed mapping.
//!
//! Every payload encoding in the workspace that needs variable-width
//! integers uses these routines; the per-crate copies that used to live
//! in `orp_sequitur::io`, `orp_trace::io` and `orp_lmad::io` are gone.
//! The length model ([`varint_len`]) is part of the paper-facing cost
//! accounting (grammar sizes in Table 1 are computed from it), so the
//! encoding is frozen: little-endian base-128 with a continuation bit,
//! at most 10 bytes for a `u64`.

use std::io::{self, Read, Write};

/// Writes a LEB128 varint.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// Propagates reader errors; rejects encodings longer than 10 bytes.
pub fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let [byte] = buf;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Number of bytes [`write_varint`] emits for `v`.
///
/// ```
/// assert_eq!(orp_format::varint_len(0), 1);
/// assert_eq!(orp_format::varint_len(127), 1);
/// assert_eq!(orp_format::varint_len(128), 2);
/// assert_eq!(orp_format::varint_len(u64::MAX), 10);
/// ```
#[must_use]
pub fn varint_len(v: u64) -> u64 {
    if v == 0 {
        return 1;
    }
    u64::from(64 - v.leading_zeros()).div_ceil(7)
}

/// Maps a signed integer onto the unsigned varint space
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …) so small magnitudes of either
/// sign stay short.
///
/// ```
/// assert_eq!(orp_format::zigzag_encode(0), 0);
/// assert_eq!(orp_format::zigzag_encode(-1), 1);
/// assert_eq!(orp_format::zigzag_encode(1), 2);
/// ```
#[must_use]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
///
/// ```
/// for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
///     assert_eq!(orp_format::zigzag_decode(orp_format::zigzag_encode(v)), v);
/// }
/// ```
#[must_use]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a fixed-width little-endian `u64`.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_u64_le(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a fixed-width little-endian `u64`.
///
/// # Errors
///
/// Propagates reader errors.
pub fn read_u64_le(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a fixed-width little-endian `i64`.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_i64_le(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a fixed-width little-endian `i64`.
///
/// # Errors
///
/// Propagates reader errors.
pub fn read_i64_le(r: &mut impl Read) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

/// Writes a fixed-width little-endian `u32`.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_u32_le(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a fixed-width little-endian `u32`.
///
/// # Errors
///
/// Propagates reader errors.
pub fn read_u32_le(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a zigzag-mapped signed varint.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_zigzag(w: &mut impl Write, v: i64) -> io::Result<()> {
    write_varint(w, zigzag_encode(v))
}

/// Reads a zigzag-mapped signed varint.
///
/// # Errors
///
/// Propagates reader errors; rejects encodings longer than 10 bytes.
pub fn read_zigzag(r: &mut impl Read) -> io::Result<i64> {
    Ok(zigzag_decode(read_varint(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_and_length_model() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            (1 << 35) - 1,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(buf.len() as u64, varint_len(v), "length model for {v}");
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0x80u8; 11];
        assert!(read_varint(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let buf = [0x80u8; 3];
        assert!(read_varint(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_zigzag(&mut buf, v).unwrap();
            assert_eq!(read_zigzag(&mut buf.as_slice()).unwrap(), v);
        }
    }
}
