//! Chunk tags and the self-describing registry of profile kinds.

use std::fmt;

use crate::error::FormatError;

/// A four-byte ASCII chunk tag.
///
/// Tags identify what a chunk's payload encodes. The registry of tags
/// this workspace understands is [`ChunkTag::KNOWN`]; readers that hit
/// a tag outside it may either skip the chunk (length framing makes
/// that safe) or surface [`FormatError::UnknownChunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkTag(pub [u8; 4]);

impl ChunkTag {
    /// Profile kind + container-level attributes; always first.
    pub const META: ChunkTag = ChunkTag(*b"META");
    /// A batch of probe-event records (repeats; order is the stream).
    pub const TRACE: ChunkTag = ChunkTag(*b"TRCE");
    /// A standalone Sequitur grammar.
    pub const GRAMMAR: ChunkTag = ChunkTag(*b"GRMR");
    /// A WHOMP object-relative grammar set (four grammars + tuple count).
    pub const OMSG: ChunkTag = ChunkTag(*b"OMSG");
    /// A raw-address Sequitur baseline profile.
    pub const RASG: ChunkTag = ChunkTag(*b"RASG");
    /// A LEAP per-(instruction, group) LMAD-stream profile.
    pub const LEAP: ChunkTag = ChunkTag(*b"LEAP");
    /// A self-describing set of LMAD descriptors.
    pub const LMAD_SET: ChunkTag = ChunkTag(*b"LMDS");
    /// Phase signatures + detected phase history.
    pub const PHASE_SIG: ChunkTag = ChunkTag(*b"PHSG");
    /// A hybrid-decomposition profile (per-instruction grammar sets).
    pub const HYBRID: ChunkTag = ChunkTag(*b"HYBR");
    /// Object management component state (live set, groups, archive).
    pub const OMC_STATE: ChunkTag = ChunkTag(*b"OMCK");
    /// Collection/decomposition counters (time, untracked, anomalies).
    pub const CDC_STATE: ChunkTag = ChunkTag(*b"CDCK");
    /// Mid-run profiler sink state (grammar/compressor internals).
    pub const SINK_STATE: ChunkTag = ChunkTag(*b"SNKS");
    /// Sampling front-end checkpoint (policy + per-key admission state).
    /// Optional: present only in checkpoints of sampled runs, so
    /// pre-sampling checkpoints stay readable.
    pub const SAMPLER_STATE: ChunkTag = ChunkTag(*b"SMPK");
    /// A daemon-session handshake (protocol version, tenant, flags):
    /// the first chunk on an `orpd` client stream.
    pub const HELLO: ChunkTag = ChunkTag(*b"HELO");
    /// An embedded run report (`orp-obs` `RunReport` JSON).
    pub const METRICS: ChunkTag = ChunkTag(*b"MREP");
    /// A layout-optimization plan (`orp-opt` `LayoutPlan` transforms).
    pub const PLAN: ChunkTag = ChunkTag(*b"PLAN");
    /// Empty terminator; every container ends with it.
    // analyze: allow(codec-pair): END is the zero-payload terminator — ContainerReader::next_chunk consumes it inline and `orprof inspect` never surfaces it as a chunk
    pub const END: ChunkTag = ChunkTag(*b"END ");

    /// Every tag this workspace writes, with a one-line description —
    /// the registry behind `orprof inspect`.
    pub const KNOWN: &'static [(ChunkTag, &'static str)] = &[
        (ChunkTag::META, "profile kind and container attributes"),
        (
            ChunkTag::TRACE,
            "probe-event batch (access/alloc/free records)",
        ),
        (ChunkTag::GRAMMAR, "Sequitur grammar"),
        (ChunkTag::OMSG, "WHOMP object-relative grammar set"),
        (ChunkTag::RASG, "raw-address Sequitur baseline"),
        (ChunkTag::LEAP, "LEAP LMAD-stream profile"),
        (ChunkTag::LMAD_SET, "self-describing LMAD descriptor set"),
        (ChunkTag::PHASE_SIG, "phase signatures and phase history"),
        (ChunkTag::HYBRID, "hybrid per-instruction grammar profile"),
        (
            ChunkTag::OMC_STATE,
            "OMC checkpoint (live objects, groups, archive)",
        ),
        (ChunkTag::CDC_STATE, "CDC checkpoint (stream counters)"),
        (ChunkTag::SINK_STATE, "profiler sink checkpoint"),
        (
            ChunkTag::SAMPLER_STATE,
            "sampling front-end checkpoint (policy, per-key state)",
        ),
        (ChunkTag::HELLO, "daemon-session handshake (tenant, flags)"),
        (ChunkTag::METRICS, "embedded run report (JSON)"),
        (
            ChunkTag::PLAN,
            "layout-optimization plan (typed transforms)",
        ),
        (ChunkTag::END, "container terminator"),
    ];

    /// Human-readable description from the registry, if the tag is known.
    #[must_use]
    pub fn describe(self) -> Option<&'static str> {
        ChunkTag::KNOWN
            .iter()
            .find(|(tag, _)| *tag == self)
            .map(|(_, desc)| *desc)
    }
}

impl fmt::Display for ChunkTag {
    /// Renders the tag as ASCII where printable, escaping the rest —
    /// tags come from untrusted files, so arbitrary bytes must print
    /// safely.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        Ok(())
    }
}

/// What a container holds, as recorded in its `META` chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// A recorded probe-event trace.
    Trace,
    /// A standalone Sequitur grammar.
    Grammar,
    /// A WHOMP object-relative grammar set.
    Omsg,
    /// A raw-address Sequitur baseline profile.
    Rasg,
    /// A LEAP profile.
    Leap,
    /// A self-describing LMAD set.
    LmadSet,
    /// Phase signatures.
    PhaseSignatures,
    /// A mid-run session checkpoint.
    Checkpoint,
    /// A hybrid-decomposition (per-instruction grammars) profile.
    Hybrid,
    /// A layout-optimization plan (typed transforms + provenance).
    LayoutPlan,
}

impl ProfileKind {
    /// Stable on-disk code for the `META` chunk.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ProfileKind::Trace => 1,
            ProfileKind::Grammar => 2,
            ProfileKind::Omsg => 3,
            ProfileKind::Rasg => 4,
            ProfileKind::Leap => 5,
            ProfileKind::LmadSet => 6,
            ProfileKind::PhaseSignatures => 7,
            ProfileKind::Checkpoint => 8,
            ProfileKind::Hybrid => 9,
            ProfileKind::LayoutPlan => 10,
        }
    }

    /// Inverse of [`ProfileKind::code`].
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::WrongKind`] for codes this reader does
    /// not know.
    pub fn from_code(code: u64) -> Result<Self, FormatError> {
        Ok(match code {
            1 => ProfileKind::Trace,
            2 => ProfileKind::Grammar,
            3 => ProfileKind::Omsg,
            4 => ProfileKind::Rasg,
            5 => ProfileKind::Leap,
            6 => ProfileKind::LmadSet,
            7 => ProfileKind::PhaseSignatures,
            8 => ProfileKind::Checkpoint,
            9 => ProfileKind::Hybrid,
            10 => ProfileKind::LayoutPlan,
            found => return Err(FormatError::WrongKind { found }),
        })
    }

    /// Short display name (used by `orprof inspect`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProfileKind::Trace => "trace",
            ProfileKind::Grammar => "grammar",
            ProfileKind::Omsg => "omsg",
            ProfileKind::Rasg => "rasg",
            ProfileKind::Leap => "leap",
            ProfileKind::LmadSet => "lmad-set",
            ProfileKind::PhaseSignatures => "phase-signatures",
            ProfileKind::Checkpoint => "checkpoint",
            ProfileKind::Hybrid => "hybrid",
            ProfileKind::LayoutPlan => "layout-plan",
        }
    }

    /// The chunk tag that carries this kind's primary payload.
    #[must_use]
    pub fn primary_chunk(self) -> ChunkTag {
        match self {
            ProfileKind::Trace => ChunkTag::TRACE,
            ProfileKind::Grammar => ChunkTag::GRAMMAR,
            ProfileKind::Omsg => ChunkTag::OMSG,
            ProfileKind::Rasg => ChunkTag::RASG,
            ProfileKind::Leap => ChunkTag::LEAP,
            ProfileKind::LmadSet => ChunkTag::LMAD_SET,
            ProfileKind::PhaseSignatures => ChunkTag::PHASE_SIG,
            ProfileKind::Checkpoint => ChunkTag::SINK_STATE,
            ProfileKind::Hybrid => ChunkTag::HYBRID,
            ProfileKind::LayoutPlan => ChunkTag::PLAN,
        }
    }
}

impl fmt::Display for ProfileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips_through_its_code() {
        for kind in [
            ProfileKind::Trace,
            ProfileKind::Grammar,
            ProfileKind::Omsg,
            ProfileKind::Rasg,
            ProfileKind::Leap,
            ProfileKind::LmadSet,
            ProfileKind::PhaseSignatures,
            ProfileKind::Checkpoint,
            ProfileKind::Hybrid,
            ProfileKind::LayoutPlan,
        ] {
            assert_eq!(ProfileKind::from_code(kind.code()).unwrap(), kind);
            assert!(kind.primary_chunk().describe().is_some());
        }
    }

    #[test]
    fn unknown_kind_code_is_a_typed_error() {
        assert!(matches!(
            ProfileKind::from_code(999),
            Err(FormatError::WrongKind { found: 999 })
        ));
    }

    #[test]
    fn tags_display_as_ascii() {
        assert_eq!(ChunkTag::META.to_string(), "META");
        assert_eq!(ChunkTag::END.to_string(), "END ");
        assert_eq!(
            ChunkTag([0xFF, b'a', 0x00, b'b']).to_string(),
            "\\xffa\\x00b"
        );
    }
}
