//! The typed error surface for container readers.

use std::fmt;
use std::io;

use crate::chunk::ChunkTag;

/// Everything that can go wrong while reading a `.orp` container.
///
/// Readers return this instead of panicking or looping: truncation,
/// bit flips, unknown framing, and malformed payloads each map to a
/// distinct variant so callers (and tests) can tell corruption classes
/// apart.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure other than a clean end-of-file.
    Io(io::Error),
    /// The file does not start with the `.orp` magic.
    BadMagic,
    /// The container version is newer than this reader understands
    /// (or zero).
    UnsupportedVersion(u32),
    /// The stream ended inside the header, a chunk, or before the
    /// `END ` terminator.
    Truncated,
    /// A chunk's stored CRC-32 does not match its contents.
    ChecksumMismatch {
        /// Tag of the damaged chunk.
        tag: ChunkTag,
    },
    /// A chunk declared a payload longer than [`crate::MAX_CHUNK_LEN`].
    Oversize {
        /// The declared payload length.
        len: u64,
    },
    /// A well-formed chunk carries a tag the caller cannot interpret.
    UnknownChunk(ChunkTag),
    /// A required chunk never appeared before the terminator.
    MissingChunk(ChunkTag),
    /// A different chunk appeared where a specific one was required.
    UnexpectedChunk {
        /// The tag the caller required.
        expected: ChunkTag,
        /// The tag actually present.
        found: ChunkTag,
    },
    /// The container belongs to a different profile kind than the
    /// caller asked for.
    WrongKind {
        /// Kind code found in the `META` chunk.
        found: u64,
    },
    /// A chunk passed its CRC but its payload violates the payload
    /// encoding's own invariants.
    Malformed(&'static str),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::BadMagic => write!(f, "not an .orp container (bad magic)"),
            FormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            FormatError::Truncated => write!(f, "container is truncated"),
            FormatError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in chunk {tag}")
            }
            FormatError::Oversize { len } => {
                write!(f, "chunk declares an oversize payload ({len} bytes)")
            }
            FormatError::UnknownChunk(tag) => write!(f, "unknown chunk {tag}"),
            FormatError::MissingChunk(tag) => write!(f, "missing required chunk {tag}"),
            FormatError::UnexpectedChunk { expected, found } => {
                write!(f, "expected chunk {expected}, found {found}")
            }
            FormatError::WrongKind { found } => {
                write!(f, "container holds a different profile kind (code {found})")
            }
            FormatError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FormatError {
    /// Clean end-of-file inside a read becomes [`FormatError::Truncated`];
    /// anything else stays an I/O error.
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FormatError::Truncated
        } else {
            FormatError::Io(e)
        }
    }
}

impl From<FormatError> for io::Error {
    /// Lets container-aware code slot into `io::Result` call sites
    /// (probe-sink drivers, CLI plumbing) without flattening the error
    /// text.
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Io(inner) => inner,
            FormatError::Truncated => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
