//! The `HELO` handshake chunk: the first chunk on an `orpd` client
//! stream.
//!
//! A daemon connection is an ordinary `.orp` container streamed over a
//! socket: magic + version header, then a `HELO` chunk naming the
//! tenant, then `TRCE` probe-event batches, then `END `. The handshake
//! payload is deliberately tiny and versioned independently of the
//! container format so the wire protocol can grow flags without
//! touching on-disk profiles.

use std::io::{self, Write};

use crate::chunk::ChunkTag;
use crate::container::{Chunk, ContainerWriter};
use crate::error::FormatError;
use crate::varint::{read_varint, write_varint};

/// Version of the handshake payload this build speaks.
pub const HELLO_PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a tenant name, checked *before* the name bytes are
/// trusted — the length field arrives from the network.
pub const MAX_TENANT_LEN: usize = 64;

/// Flag bits a version-1 handshake may carry.
const KNOWN_FLAGS: u64 = 0b11;

/// A parsed `HELO` chunk: who is connecting and what they want.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Tenant identity; becomes the checkpoint file stem, so it is
    /// restricted to `[A-Za-z0-9._-]` with an alphanumeric first byte.
    pub tenant: String,
    /// Ask the daemon to resume from the tenant's existing checkpoint
    /// (the ack reports how many events are already durable).
    pub resume: bool,
    /// Control stream: ask the daemon to finish all sessions and exit
    /// once this connection closes.
    pub shutdown: bool,
}

impl Hello {
    /// A plain data-stream handshake for `tenant`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Malformed`] when the tenant name is
    /// empty, too long, or uses characters outside `[A-Za-z0-9._-]`.
    pub fn new(tenant: &str) -> Result<Self, FormatError> {
        if !Self::valid_tenant(tenant) {
            return Err(FormatError::Malformed(
                "tenant name must be 1..=64 chars of [A-Za-z0-9._-] starting alphanumeric",
            ));
        }
        Ok(Hello {
            tenant: tenant.to_owned(),
            resume: false,
            shutdown: false,
        })
    }

    /// Whether `name` is a usable tenant identity: non-empty, at most
    /// [`MAX_TENANT_LEN`] bytes, `[A-Za-z0-9._-]` only, and starting
    /// with an alphanumeric (so it can never alias a dotfile or an
    /// option-looking name).
    #[must_use]
    pub fn valid_tenant(name: &str) -> bool {
        let bytes = name.as_bytes();
        bytes.first().is_some_and(u8::is_ascii_alphanumeric)
            && bytes.len() <= MAX_TENANT_LEN
            && bytes
                .iter()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    }

    /// Writes this handshake as a `HELO` chunk.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn encode(&self, w: &mut ContainerWriter<impl Write>) -> io::Result<()> {
        let mut payload = Vec::new();
        write_varint(&mut payload, HELLO_PROTOCOL_VERSION)?;
        let flags = u64::from(self.resume) | (u64::from(self.shutdown) << 1);
        write_varint(&mut payload, flags)?;
        write_varint(&mut payload, self.tenant.len() as u64)?;
        payload.extend_from_slice(self.tenant.as_bytes());
        w.chunk(ChunkTag::HELLO, &payload)
    }

    /// Parses a `HELO` chunk.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::UnexpectedChunk`] when `chunk` is not a
    /// `HELO` chunk, and [`FormatError::Malformed`] for an unknown
    /// protocol version, unknown flag bits, or a hostile tenant name
    /// (overlong, length/payload disagreement, non-UTF-8, or characters
    /// outside the allowed set).
    pub fn decode(chunk: &Chunk) -> Result<Self, FormatError> {
        if chunk.tag != ChunkTag::HELLO {
            return Err(FormatError::UnexpectedChunk {
                expected: ChunkTag::HELLO,
                found: chunk.tag,
            });
        }
        let mut cursor = chunk.payload.as_slice();
        let version = read_varint(&mut cursor)?;
        if version != HELLO_PROTOCOL_VERSION {
            return Err(FormatError::Malformed(
                "unsupported handshake protocol version",
            ));
        }
        let flags = read_varint(&mut cursor)?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(FormatError::Malformed("unknown handshake flag bits"));
        }
        let len = read_varint(&mut cursor)?;
        // The declared length is untrusted: bound it before comparing
        // against (or reading) the remaining payload.
        if len > MAX_TENANT_LEN as u64 {
            return Err(FormatError::Malformed("tenant name too long"));
        }
        if cursor.len() as u64 != len {
            return Err(FormatError::Malformed(
                "tenant length disagrees with handshake payload",
            ));
        }
        let tenant = std::str::from_utf8(cursor)
            .map_err(|_| FormatError::Malformed("tenant name is not UTF-8"))?;
        if !Self::valid_tenant(tenant) {
            return Err(FormatError::Malformed(
                "tenant name must be 1..=64 chars of [A-Za-z0-9._-] starting alphanumeric",
            ));
        }
        Ok(Hello {
            tenant: tenant.to_owned(),
            resume: flags & 0b01 != 0,
            shutdown: flags & 0b10 != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerReader;

    fn through_container(hello: &Hello) -> Chunk {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        hello.encode(&mut w).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ContainerReader::new(bytes.as_slice()).unwrap();
        r.next_chunk().unwrap().expect("one chunk")
    }

    #[test]
    fn handshake_roundtrips_through_a_container() {
        for (resume, shutdown) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut hello = Hello::new("tenant-7.worker_a").unwrap();
            hello.resume = resume;
            hello.shutdown = shutdown;
            let chunk = through_container(&hello);
            assert_eq!(chunk.tag, ChunkTag::HELLO);
            assert_eq!(Hello::decode(&chunk).unwrap(), hello);
        }
    }

    #[test]
    fn hostile_tenant_names_are_rejected() {
        for bad in [
            "",
            ".hidden",
            "-flag",
            "a/b",
            "a b",
            "../../etc/passwd",
            &"x".repeat(MAX_TENANT_LEN + 1),
        ] {
            assert!(!Hello::valid_tenant(bad), "{bad:?}");
            assert!(Hello::new(bad).is_err(), "{bad:?}");
        }
        assert!(Hello::valid_tenant(&"x".repeat(MAX_TENANT_LEN)));
    }

    #[test]
    fn truncated_or_corrupted_handshake_is_rejected_not_panicked() {
        let hello = Hello::new("tenant").unwrap();
        let good = through_container(&hello);

        // Truncation at every payload prefix.
        for cut in 0..good.payload.len() {
            let chunk = Chunk {
                tag: ChunkTag::HELLO,
                payload: good.payload[..cut].to_vec(),
            };
            assert!(Hello::decode(&chunk).is_err(), "cut at {cut}");
        }

        // A corrupted length that points past the payload, and one far
        // beyond MAX_TENANT_LEN (must fail before any allocation).
        for bogus_len in [7u64, 1 << 40] {
            let mut payload = Vec::new();
            write_varint(&mut payload, HELLO_PROTOCOL_VERSION).unwrap();
            write_varint(&mut payload, 0).unwrap();
            write_varint(&mut payload, bogus_len).unwrap();
            payload.extend_from_slice(b"abc");
            let chunk = Chunk {
                tag: ChunkTag::HELLO,
                payload,
            };
            assert!(matches!(
                Hello::decode(&chunk),
                Err(FormatError::Malformed(_))
            ));
        }

        // Unknown protocol version and unknown flag bits.
        for (version, flags) in [(2u64, 0u64), (HELLO_PROTOCOL_VERSION, 0b100)] {
            let mut payload = Vec::new();
            write_varint(&mut payload, version).unwrap();
            write_varint(&mut payload, flags).unwrap();
            write_varint(&mut payload, 1).unwrap();
            payload.push(b'a');
            let chunk = Chunk {
                tag: ChunkTag::HELLO,
                payload,
            };
            assert!(matches!(
                Hello::decode(&chunk),
                Err(FormatError::Malformed(_))
            ));
        }

        // Non-UTF-8 tenant bytes.
        let mut payload = Vec::new();
        write_varint(&mut payload, HELLO_PROTOCOL_VERSION).unwrap();
        write_varint(&mut payload, 0).unwrap();
        write_varint(&mut payload, 2).unwrap();
        payload.extend_from_slice(&[b'a', 0xFF]);
        let chunk = Chunk {
            tag: ChunkTag::HELLO,
            payload,
        };
        assert!(Hello::decode(&chunk).is_err());

        // Wrong tag entirely.
        let chunk = Chunk {
            tag: ChunkTag::META,
            payload: good.payload,
        };
        assert!(matches!(
            Hello::decode(&chunk),
            Err(FormatError::UnexpectedChunk { .. })
        ));
    }
}
