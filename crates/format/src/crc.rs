//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The build environment is offline, so the checksum is hand-rolled
//! rather than pulled from crates.io; the table is computed at compile
//! time. Output matches the ubiquitous zlib/PNG CRC-32, which makes
//! container checksums verifiable with standard tools.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // analyze: allow(no-panic): i < 256 by the loop bound; const-evaluated
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Streaming CRC-32 state.
///
/// ```
/// let mut crc = orp_format::Crc32::new();
/// crc.update(b"123");
/// crc.update(b"456789");
/// assert_eq!(crc.finalize(), orp_format::crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            // analyze: allow(no-panic): a u8 index into a 256-entry table is always in bounds
            c = CRC_TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the finished checksum.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = crc32(b"container payload");
        let mut flipped = b"container payload".to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(crc32(&flipped), base);
    }
}
