//! The `.orp` container: one envelope for every profile artifact.
//!
//! The profiling pipeline (probes → OMC/CDC → WHOMP/LEAP/hybrid →
//! post-processors) is a single dataflow, so every artifact it produces
//! — raw traces, Sequitur grammars, OMSG/RASG profiles, LEAP profiles,
//! LMAD sets, phase signatures, and mid-run checkpoints — is stored in
//! the same envelope:
//!
//! ```text
//! magic   8 bytes   89 4F 52 50 0D 0A 1A 0A   ("\x89ORP\r\n\x1a\n")
//! version u32 LE    container format version (currently 1)
//! chunk*            [tag: 4 ASCII bytes][len: varint][payload: len bytes]
//!                   [crc32: u32 LE over tag + payload]
//! "END "            empty terminator chunk (also checksummed)
//! ```
//!
//! The PNG-style magic detects text-mode mangling and truncation at
//! byte 0; the per-chunk CRC detects bit flips before any payload
//! parser runs; the length framing lets readers skip chunk kinds they
//! do not understand. Payload encodings are owned by the producing
//! crates — this crate owns the envelope, the shared integer codecs
//! ([`varint`]), and the typed error surface ([`FormatError`]).
//!
//! # Examples
//!
//! ```
//! use orp_format::{ChunkTag, ContainerReader, ContainerWriter, ProfileKind};
//!
//! let mut buf = Vec::new();
//! let mut w = ContainerWriter::new(&mut buf).unwrap();
//! w.meta(ProfileKind::Trace).unwrap();
//! w.chunk(ChunkTag::TRACE, b"payload").unwrap();
//! w.finish().unwrap();
//!
//! let mut r = ContainerReader::new(buf.as_slice()).unwrap();
//! assert_eq!(r.read_meta().unwrap(), ProfileKind::Trace);
//! let chunk = r.next_chunk().unwrap().unwrap();
//! assert_eq!(chunk.tag, ChunkTag::TRACE);
//! assert_eq!(chunk.payload, b"payload");
//! assert!(r.next_chunk().unwrap().is_none());
//! ```

#![forbid(unsafe_code)]
// Decode paths must route malformed input through `FormatError`; the
// `xtask analyze` no-panic rule enforces the wider family (expect,
// panic!, indexing), this enforces unwrap at compile time too.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod chunk;
mod container;
mod crc;
pub mod durable;
mod error;
mod hello;
pub mod varint;

pub use chunk::{ChunkTag, ProfileKind};
pub use container::{
    read_single_chunk, write_single_chunk, Chunk, ContainerReader, ContainerWriter, IoStats,
    FORMAT_VERSION, MAGIC, MAX_CHUNK_LEN,
};
pub use crc::{crc32, Crc32};
pub use durable::{
    write_bytes_atomic, AtomicFile, FailingRead, FailingWrite, FaultPlan, FaultSpecError,
    RetryRead, RetryWrite, FAULT_PLAN_ENV, INJECTED_MARKER,
};
pub use error::FormatError;
pub use hello::{Hello, HELLO_PROTOCOL_VERSION, MAX_TENANT_LEN};
pub use varint::{
    read_i64_le, read_u32_le, read_u64_le, read_varint, read_zigzag, varint_len, write_i64_le,
    write_u32_le, write_u64_le, write_varint, write_zigzag, zigzag_decode, zigzag_encode,
};
