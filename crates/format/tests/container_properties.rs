//! Property tests for the `.orp` container envelope: arbitrary chunk
//! sequences round-trip exactly, and no truncation or single-bit flip
//! of a well-formed container ever panics or loops — the reader
//! returns a typed [`FormatError`] instead.

use proptest::collection::vec;
use proptest::prelude::*;

use orp_format::{
    read_single_chunk, write_single_chunk, ChunkTag, ContainerReader, ContainerWriter, FormatError,
    ProfileKind,
};

/// Every registered chunk tag a producer writes between `META` and
/// `END ` (those two are framing, emitted by the writer itself).
const BODY_TAGS: &[ChunkTag] = &[
    ChunkTag::TRACE,
    ChunkTag::GRAMMAR,
    ChunkTag::OMSG,
    ChunkTag::RASG,
    ChunkTag::LEAP,
    ChunkTag::LMAD_SET,
    ChunkTag::PHASE_SIG,
    ChunkTag::HYBRID,
    ChunkTag::OMC_STATE,
    ChunkTag::CDC_STATE,
    ChunkTag::SINK_STATE,
    ChunkTag::PLAN,
];

const ALL_KINDS: &[ProfileKind] = &[
    ProfileKind::Trace,
    ProfileKind::Grammar,
    ProfileKind::Omsg,
    ProfileKind::Rasg,
    ProfileKind::Leap,
    ProfileKind::LmadSet,
    ProfileKind::PhaseSignatures,
    ProfileKind::Checkpoint,
    ProfileKind::Hybrid,
    ProfileKind::LayoutPlan,
];

fn kind_strategy() -> impl Strategy<Value = ProfileKind> {
    (0usize..ALL_KINDS.len()).prop_map(|i| ALL_KINDS[i])
}

fn chunks_strategy() -> impl Strategy<Value = Vec<(ChunkTag, Vec<u8>)>> {
    vec(
        (
            (0usize..BODY_TAGS.len()).prop_map(|i| BODY_TAGS[i]),
            vec(any::<u8>(), 0..256),
        ),
        0..6,
    )
}

fn write_container(kind: ProfileKind, chunks: &[(ChunkTag, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = ContainerWriter::new(&mut buf).unwrap();
    w.meta(kind).unwrap();
    for (tag, payload) in chunks {
        w.chunk(*tag, payload).unwrap();
    }
    w.finish().unwrap();
    buf
}

/// Reads a container to the terminator, consuming every chunk.
fn drain_all(mut bytes: &[u8]) -> Result<(), FormatError> {
    let mut reader = ContainerReader::new(&mut bytes)?;
    while reader.next_chunk()?.is_some() {}
    Ok(())
}

proptest! {
    /// Writing any chunk sequence and reading it back yields the same
    /// tags and payloads in order, for every profile kind.
    #[test]
    fn arbitrary_containers_roundtrip(kind in kind_strategy(), chunks in chunks_strategy()) {
        let buf = write_container(kind, &chunks);
        let mut reader = ContainerReader::new(buf.as_slice()).unwrap();
        prop_assert_eq!(reader.read_meta().unwrap(), kind);
        for (tag, payload) in &chunks {
            let chunk = reader.next_chunk().unwrap().expect("chunk present");
            prop_assert_eq!(chunk.tag, *tag);
            prop_assert_eq!(&chunk.payload, payload);
        }
        prop_assert!(reader.next_chunk().unwrap().is_none());
        prop_assert!(reader.at_end());
    }

    /// Every single-chunk profile kind round-trips through the
    /// convenience helpers and rejects every other kind.
    #[test]
    fn single_chunk_kinds_roundtrip(kind in kind_strategy(), payload in vec(any::<u8>(), 0..256)) {
        let mut buf = Vec::new();
        write_single_chunk(&mut buf, kind, &payload).unwrap();
        prop_assert_eq!(read_single_chunk(buf.as_slice(), kind).unwrap(), payload);
        for &other in ALL_KINDS {
            if other != kind {
                prop_assert!(matches!(
                    read_single_chunk(buf.as_slice(), other),
                    Err(FormatError::WrongKind { .. })
                ));
            }
        }
    }

    /// Cutting a well-formed container anywhere strictly inside it is a
    /// typed error — never a panic, a hang, or a silent success.
    #[test]
    fn truncation_is_always_a_typed_error(kind in kind_strategy(), chunks in chunks_strategy(), cut_seed in any::<usize>()) {
        let buf = write_container(kind, &chunks);
        let cut = cut_seed % buf.len();
        let err = drain_all(&buf[..cut]).expect_err("truncated container accepted");
        prop_assert!(
            !matches!(err, FormatError::Malformed(_)),
            "truncation misreported as payload-level damage: {err}"
        );
    }

    /// Flipping any single bit of a well-formed container is caught:
    /// the header check, the length bound, or the per-chunk CRC turns
    /// it into a typed error. (CRC-32 detects all single-bit errors.)
    #[test]
    fn single_bit_flips_are_always_caught(kind in kind_strategy(), chunks in chunks_strategy(), pos_seed in any::<usize>(), bit in 0u8..8) {
        let mut buf = write_container(kind, &chunks);
        let at = pos_seed % buf.len();
        buf[at] ^= 1 << bit;
        prop_assert!(drain_all(&buf).is_err(), "bit {bit} of byte {at} flipped unnoticed");
    }

    /// Arbitrary garbage never panics the reader.
    #[test]
    fn garbage_input_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        let _ = drain_all(&bytes);
    }
}
