//! A hand-rolled multiply-rotate hasher for the digram index.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 — keyed and
//! DoS-resistant, but ~10x slower than necessary for the digram index,
//! whose keys are two fixed-size [`Sym`](crate::Sequitur)s built from
//! profiler-internal ids (not attacker-controlled collision fodder).
//! Every [`Sequitur::push`](crate::Sequitur::push) performs one to
//! three digram-map operations, so the hasher sits squarely on the
//! grammar-construction hot path; profiling showed it dominating the
//! per-symbol cost (see DESIGN.md §13).
//!
//! The replacement is the classic Fx/FNV-style word-at-a-time fold
//! used by rustc's own hash maps: for each written word,
//! `state = (state <<< 5 ^ word) * K` with an odd 64-bit multiplier.
//! It is implemented by hand here because the workspace takes no
//! external dependencies.
//!
//! Swapping the hasher cannot change any grammar the compressor
//! produces: the digram index is only ever read through point lookups
//! (`get`/`insert`/`remove`), never iterated during construction, and
//! checkpoint serialization sorts the entries by key
//! ([`Sequitur::save_state`](crate::Sequitur::save_state)). Hash
//! order is therefore unobservable, and output stays byte-identical
//! to the SipHash build — the differential and golden-fixture tests
//! pin this down.

use std::hash::{BuildHasher, Hasher};

/// The odd multiplier: `2^64 / phi`, the same constant family rustc's
/// `FxHasher` uses for its 64-bit fold.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One word-at-a-time multiply-rotate hash state.
///
/// Not DoS-resistant — use only for maps keyed by trusted,
/// profiler-internal values (digrams, ids), never for
/// attacker-supplied data.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            // analyze: allow(le-bytes): hash-state word assembly, not wire framing
            self.fold(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // analyze: allow(le-bytes): hash-state word assembly, not wire framing
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.fold(n as u64);
        self.fold((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.fold(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.fold(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.fold(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.fold(n as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher64`]s; stateless, so every map
/// built from it hashes identically (no per-map random keys).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher64;

    #[inline]
    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher.hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal_across_builders() {
        // Stateless builder: two maps (or two runs) agree on every key.
        assert_eq!(hash_of(&(3u64, 4u64)), hash_of(&(3u64, 4u64)));
        assert_eq!(hash_of(&"digram"), hash_of(&"digram"));
    }

    #[test]
    fn nearby_keys_spread() {
        // The digram keyspace is dense small integers; the multiply
        // must spread consecutive ids across the full 64-bit range so
        // the map's low-bit bucket mask sees distinct values.
        let hashes: Vec<u64> = (0..1024u64).map(|i| hash_of(&(i, i + 1))).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collisions on dense keys");
        // Low 8 bits (the bucket index for small maps) should take many
        // distinct values, not collapse to a few.
        let mut low: Vec<u8> = hashes.iter().map(|h| *h as u8).collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 128, "low bits collapsed: {}", low.len());
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        // `write` folds little-endian 8-byte words exactly like
        // `write_u64`, so hashing the same logical words either way
        // agrees (padding rules differ only for ragged tails).
        let mut a = FxBuildHasher.build_hasher();
        a.write(&7u64.to_le_bytes());
        let mut b = FxBuildHasher.build_hasher();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn hashmap_with_fx_behaves_like_default_hasher_map() {
        use std::collections::HashMap;
        let mut fx: HashMap<(u64, u64), u32, FxBuildHasher> = HashMap::default();
        let mut sip: HashMap<(u64, u64), u32> = HashMap::new();
        for i in 0..500u64 {
            fx.insert((i % 97, i % 89), i as u32);
            sip.insert((i % 97, i % 89), i as u32);
        }
        for i in 0..200u64 {
            fx.remove(&(i % 97, i % 89));
            sip.remove(&(i % 97, i % 89));
        }
        assert_eq!(fx.len(), sip.len());
        for (k, v) in &sip {
            assert_eq!(fx.get(k), Some(v), "map semantics must be identical");
        }
    }
}
