//! Immutable grammar snapshots produced by the Sequitur compressor.

/// Identifier of a rule in a [`Grammar`] (rule 0 is the start rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A symbol on a rule's right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrammarSymbol {
    /// A terminal of the input alphabet.
    Terminal(u64),
    /// A reference to another rule.
    Rule(RuleId),
}

use orp_format::varint_len;

/// An immutable context-free grammar generating exactly one string.
///
/// Produced by [`Sequitur::grammar`](crate::Sequitur::grammar); rule 0 is
/// the start rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    rules: Vec<Vec<GrammarSymbol>>,
}

impl Grammar {
    /// Builds a grammar from raw rule bodies. Rule 0 is the start rule.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty or a body references a missing rule.
    #[must_use]
    pub fn from_rules(rules: Vec<Vec<GrammarSymbol>>) -> Self {
        assert!(!rules.is_empty(), "a grammar needs at least a start rule");
        for body in &rules {
            for sym in body {
                if let GrammarSymbol::Rule(RuleId(r)) = sym {
                    assert!(
                        (*r as usize) < rules.len(),
                        "rule body references missing rule {r}"
                    );
                }
            }
        }
        Grammar { rules }
    }

    /// Number of rules, including the start rule.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The right-hand side of rule `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn body(&self, id: RuleId) -> &[GrammarSymbol] {
        &self.rules[id.0 as usize]
    }

    /// Iterates over `(id, body)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &[GrammarSymbol])> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, b)| (RuleId(i as u32), b.as_slice()))
    }

    /// Grammar size: total symbols across all right-hand sides.
    ///
    /// The standard compression measure for grammar-based codes; used
    /// for the paper's Figure 5 comparison.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.rules.iter().map(|b| b.len() as u64).sum()
    }

    /// Serialized size in bytes under a varint (LEB128) cost model:
    /// each symbol is encoded as `varint(2·value + tag)` where the tag
    /// bit distinguishes terminals from rule references, and each rule
    /// carries a varint length header.
    ///
    /// This is what a profile of this grammar costs on disk; grammars
    /// over small-integer alphabets (decomposed object-relative
    /// streams) serialize tighter per symbol than grammars over wide
    /// raw-address symbols, on top of any structural difference
    /// captured by [`Grammar::size`].
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        let mut total = 0;
        for body in &self.rules {
            total += varint_len(body.len() as u64);
            for sym in body {
                total += match sym {
                    GrammarSymbol::Terminal(t) => {
                        t.checked_shl(1).map_or(10, |x| varint_len(x | 1))
                    }
                    GrammarSymbol::Rule(RuleId(r)) => varint_len(u64::from(*r) << 1),
                };
            }
        }
        total
    }

    /// Expands the start rule back into the original sequence.
    ///
    /// The expansion is iterative (explicit stack), so deeply
    /// hierarchical grammars cannot overflow the call stack.
    #[must_use]
    pub fn expand(&self) -> Vec<u64> {
        let mut out = Vec::new();
        // Stack of (rule, position) frames.
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        while let Some((rule, pos)) = stack.pop() {
            let body = &self.rules[rule as usize];
            if pos >= body.len() {
                continue;
            }
            stack.push((rule, pos + 1));
            match body[pos] {
                GrammarSymbol::Terminal(t) => out.push(t),
                GrammarSymbol::Rule(RuleId(r)) => stack.push((r, 0)),
            }
        }
        out
    }

    /// Length of the expanded sequence without materializing it.
    ///
    /// Runs in time linear in the grammar size via a memoized,
    /// stack-based post-order traversal (the grammar is acyclic by
    /// construction — Sequitur never creates self-referential rules).
    #[must_use]
    pub fn expanded_len(&self) -> u64 {
        let n = self.rules.len();
        let mut len = vec![None::<u64>; n];
        // Explicit DFS: a frame is (rule, first-visit flag).
        let mut stack: Vec<(u32, bool)> = vec![(0, false)];
        while let Some((rule, children_done)) = stack.pop() {
            if len[rule as usize].is_some() {
                continue;
            }
            if children_done {
                let total = self.rules[rule as usize]
                    .iter()
                    .map(|sym| match sym {
                        GrammarSymbol::Terminal(_) => 1,
                        GrammarSymbol::Rule(RuleId(r)) => {
                            // analyze: allow(panic-reachability): post-order DFS resolves every child before its parent, and Grammar::read_from rejects cyclic rule references at the decode boundary
                            len[*r as usize].expect("children resolved before parent")
                        }
                    })
                    .sum();
                len[rule as usize] = Some(total);
            } else {
                stack.push((rule, true));
                for sym in &self.rules[rule as usize] {
                    if let GrammarSymbol::Rule(RuleId(r)) = sym {
                        if len[*r as usize].is_none() {
                            stack.push((*r, false));
                        }
                    }
                }
            }
        }
        // analyze: allow(panic-reachability): the DFS starts at rule 0 and always resolves it; decoded grammars are acyclic (read_from rejects cycles)
        len[0].expect("start rule resolved")
    }

    /// Renders the grammar in the paper's `S -> AA; A -> aBB; B -> bc`
    /// style, with terminals printed via `fmt_terminal`.
    #[must_use]
    pub fn render(&self, fmt_terminal: impl Fn(u64) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (id, body) in self.iter() {
            if id.0 == 0 {
                out.push('S');
            } else {
                let _ = write!(out, "{id}");
            }
            out.push_str(" ->");
            for sym in body {
                out.push(' ');
                match sym {
                    GrammarSymbol::Terminal(t) => out.push_str(&fmt_terminal(*t)),
                    GrammarSymbol::Rule(r) => {
                        let _ = write!(out, "{r}");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Grammar {
        // S -> R1 R1 ; R1 -> a b
        Grammar::from_rules(vec![
            vec![
                GrammarSymbol::Rule(RuleId(1)),
                GrammarSymbol::Rule(RuleId(1)),
            ],
            vec![GrammarSymbol::Terminal(97), GrammarSymbol::Terminal(98)],
        ])
    }

    #[test]
    fn expand_follows_rules() {
        assert_eq!(sample().expand(), vec![97, 98, 97, 98]);
    }

    #[test]
    fn expanded_len_matches_expand() {
        let g = sample();
        assert_eq!(g.expanded_len(), g.expand().len() as u64);
    }

    #[test]
    fn size_counts_rhs_symbols() {
        assert_eq!(sample().size(), 4);
        // 2 rule headers (1 byte each) + 2 rule refs (1 byte) + 2
        // terminals (97, 98 -> 2 bytes each tagged).
        assert_eq!(sample().encoded_bytes(), 2 + 2 + 4);
    }

    #[test]
    fn deep_grammar_expands_iteratively() {
        // R_i -> R_{i+1} R_{i+1}; depth 30 => 2^30 is too big, use chain
        // instead: R_i -> R_{i+1}, last rule -> terminal. Depth 100_000
        // would overflow a recursive expansion.
        let depth = 100_000u32;
        let mut rules: Vec<Vec<GrammarSymbol>> = Vec::with_capacity(depth as usize + 1);
        for i in 0..depth {
            rules.push(vec![GrammarSymbol::Rule(RuleId(i + 1))]);
        }
        rules.push(vec![GrammarSymbol::Terminal(5)]);
        let g = Grammar::from_rules(rules);
        assert_eq!(g.expand(), vec![5]);
        assert_eq!(g.expanded_len(), 1);
    }

    #[test]
    fn render_looks_like_the_paper() {
        let g = sample();
        let s = g.render(|t| char::from_u32(t as u32).unwrap().to_string());
        assert!(s.contains("S -> R1 R1"));
        assert!(s.contains("R1 -> a b"));
    }

    #[test]
    #[should_panic(expected = "missing rule")]
    fn dangling_rule_reference_panics() {
        let _ = Grammar::from_rules(vec![vec![GrammarSymbol::Rule(RuleId(3))]]);
    }

    #[test]
    #[should_panic(expected = "at least a start rule")]
    fn empty_grammar_panics() {
        let _ = Grammar::from_rules(vec![]);
    }
}
