//! Sequitur grammar compression.
//!
//! An implementation of the Sequitur algorithm of Nevill-Manning and
//! Witten (*Identifying hierarchical structure in sequences: a
//! linear-time algorithm*, JAIR 1997), the lossless compressor used by
//! the WHOMP profiler in the CGO 2004 paper. Sequitur incrementally
//! infers a context-free grammar that generates exactly the input
//! sequence, maintaining two invariants:
//!
//! * **digram uniqueness** — no pair of adjacent symbols appears more
//!   than once (without overlap) in the grammar; a repeated digram is
//!   replaced by a nonterminal, and
//! * **rule utility** — every rule (other than the start rule) is used
//!   at least twice; a rule whose use count drops to one is inlined.
//!
//! Repetitions in the input therefore become grammar rules, and the
//! grammar's size (total right-hand-side symbols) is the compressed
//! size of the sequence.
//!
//! # Examples
//!
//! The paper's own example: `abcbcabcbc` compresses to the grammar
//! `S → AA; A → aBB; B → bc` (7 right-hand-side symbols for a 10-symbol
//! input).
//!
//! ```
//! use orp_sequitur::Sequitur;
//!
//! let mut seq = Sequitur::new();
//! seq.extend("abcbcabcbc".bytes().map(u64::from));
//! let grammar = seq.grammar();
//! assert_eq!(grammar.rule_count(), 3);
//! assert_eq!(grammar.size(), 7);
//! let expanded: Vec<u64> = grammar.expand();
//! assert_eq!(expanded, "abcbcabcbc".bytes().map(u64::from).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]

mod fxhash;
mod grammar;
mod io;

pub use fxhash::{FxBuildHasher, FxHasher64};
pub use grammar::{Grammar, GrammarSymbol, RuleId};
// The integer codecs live in `orp-format` now (shared by every payload
// encoding in the workspace); re-exported here for source compatibility.
pub use orp_format::{read_varint, varint_len, write_varint};

use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The digram index: symbol pair → the node where that digram occurs.
/// Keyed by trusted internal ids, hence the fast non-keyed hasher (see
/// [`fxhash`](FxBuildHasher)); only ever read via point lookups, so the
/// hasher cannot influence the constructed grammar.
pub(crate) type DigramMap = HashMap<(Sym, Sym), u32, FxBuildHasher>;

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

/// Internal symbol stored on linked-list nodes, packed into one word:
/// the top two bits are a tag, the low 62 a payload.
///
/// The packing is the hot-path representation the whole compressor
/// runs on: it halves [`Node`] to 16 bytes, shrinks a digram key to
/// two words, and makes symbol equality and hashing single-word
/// operations — digram-index probes and node-list walks dominate
/// per-push cost, and all of them touch symbols.
///
/// | tag | meaning            | payload                          |
/// |----:|--------------------|----------------------------------|
/// |   0 | terminal `< 2^62`  | the terminal value itself        |
/// |   1 | large terminal     | index into the intern table      |
/// |   2 | rule use           | rule slot                        |
/// |   3 | guard              | rule slot (`u64::MAX` = free)    |
///
/// Terminals that do not fit 62 bits (RASG's fused records can use the
/// full width) are interned: `big_terms[payload]` holds the raw value,
/// and interning dedups, so packed equality coincides with terminal
/// equality exactly as it did for the previous boxed-enum
/// representation. The free-list sentinel [`Sym::FREE`] borrows the
/// guard tag with an all-ones payload no real guard can carry (rule
/// slots are `u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Sym(u64);

impl Sym {
    const TAG_SHIFT: u32 = 62;
    const PAYLOAD_MASK: u64 = (1 << Self::TAG_SHIFT) - 1;
    const TAG_SMALL: u64 = 0;
    const TAG_BIG: u64 = 1;
    const TAG_RULE: u64 = 2;
    const TAG_GUARD: u64 = 3;
    /// Free-list sentinel (never matches any live symbol).
    const FREE: Sym = Sym(u64::MAX);

    #[inline]
    fn rule(r: u32) -> Sym {
        Sym(Self::TAG_RULE << Self::TAG_SHIFT | u64::from(r))
    }

    #[inline]
    fn guard(r: u32) -> Sym {
        Sym(Self::TAG_GUARD << Self::TAG_SHIFT | u64::from(r))
    }

    #[inline]
    fn tag(self) -> u64 {
        self.0 >> Self::TAG_SHIFT
    }

    #[inline]
    fn payload(self) -> u64 {
        self.0 & Self::PAYLOAD_MASK
    }

    #[inline]
    fn is_guard(self) -> bool {
        self.tag() == Self::TAG_GUARD && self != Self::FREE
    }

    #[inline]
    fn as_rule(self) -> Option<u32> {
        (self.tag() == Self::TAG_RULE).then(|| self.payload() as u32)
    }

    #[inline]
    fn as_guard(self) -> Option<u32> {
        (self.is_guard()).then(|| self.payload() as u32)
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    sym: Sym,
    prev: u32,
    next: u32,
}

#[derive(Debug, Clone, Copy)]
struct RuleSlot {
    /// Guard node of the circular body list, or `NIL` when the slot is
    /// free.
    guard: u32,
    /// Number of uses of this rule in other rule bodies.
    uses: u32,
}

/// An incremental Sequitur compressor.
///
/// Feed the input one symbol at a time with [`Sequitur::push`] (or in
/// bulk with [`Sequitur::extend`]); read the inferred grammar at any
/// point with [`Sequitur::grammar`] or just its compressed size with
/// [`Sequitur::size`].
#[derive(Debug, Clone)]
pub struct Sequitur {
    nodes: Vec<Node>,
    free_nodes: Vec<u32>,
    rules: Vec<RuleSlot>,
    free_rules: Vec<u32>,
    digrams: DigramMap,
    /// Raw values of interned large terminals (tag [`Sym::TAG_BIG`]),
    /// indexed by symbol payload.
    big_terms: Vec<u64>,
    /// Reverse intern map: raw value → index into `big_terms`.
    big_ids: HashMap<u64, u32, FxBuildHasher>,
    input_len: u64,
}

impl Sequitur {
    /// Creates a compressor with an empty start rule.
    #[must_use]
    pub fn new() -> Self {
        let mut seq = Sequitur::blank();
        let start = seq.new_rule();
        debug_assert_eq!(start, 0, "start rule occupies slot 0");
        seq
    }

    /// A completely empty shell — no start rule — for deserialization
    /// to fill field by field.
    pub(crate) fn blank() -> Self {
        Sequitur {
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            rules: Vec::new(),
            free_rules: Vec::new(),
            digrams: DigramMap::default(),
            big_terms: Vec::new(),
            big_ids: HashMap::default(),
            input_len: 0,
        }
    }

    /// Number of input symbols consumed so far.
    #[must_use]
    pub fn input_len(&self) -> u64 {
        self.input_len
    }

    /// Appends one terminal to the input sequence.
    ///
    /// The tail append is hand-specialized instead of going through
    /// [`Sequitur::insert_after`]: a fresh node has no links, and the
    /// previous tail's outgoing digram ends at the start rule's guard,
    /// so the digram-unindexing and run-restoration work the generic
    /// [`Sequitur::join`] performs is statically a no-op here. Linking
    /// directly removes a dozen branchy loads from the single hottest
    /// call in grammar construction.
    #[inline]
    pub fn push(&mut self, terminal: u64) {
        self.input_len += 1;
        let sym = self.intern(terminal);
        let guard = self.rules[0].guard;
        let node = self.new_node(sym);
        let last = self.nodes[guard as usize].prev;
        self.nodes[node as usize].prev = last;
        self.nodes[node as usize].next = guard;
        self.nodes[guard as usize].prev = node;
        self.nodes[last as usize].next = node;
        if !self.sym(last).is_guard() {
            self.check(last);
        }
    }

    /// Packs a raw terminal into a [`Sym`]: direct for values that fit
    /// the 62-bit payload (every value the profilers emit in practice),
    /// through the intern table otherwise.
    #[inline]
    fn intern(&mut self, terminal: u64) -> Sym {
        if terminal <= Sym::PAYLOAD_MASK {
            Sym(terminal)
        } else {
            self.intern_big(terminal)
        }
    }

    #[cold]
    fn intern_big(&mut self, terminal: u64) -> Sym {
        let id = match self.big_ids.entry(terminal) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let id =
                    // analyze: allow(panic-reachability): arena-capacity invariant — overflowing u32 intern ids means >4G distinct terminals, far past any input this tool accepts
                    u32::try_from(self.big_terms.len()).expect("intern table exceeds u32 entries");
                self.big_terms.push(terminal);
                *v.insert(id)
            }
        };
        Sym(Sym::TAG_BIG << Sym::TAG_SHIFT | u64::from(id))
    }

    /// The raw terminal a symbol denotes, if it is a terminal.
    #[inline]
    fn terminal_value(&self, s: Sym) -> Option<u64> {
        match s.tag() {
            Sym::TAG_SMALL => Some(s.payload()),
            Sym::TAG_BIG => Some(self.big_terms[s.payload() as usize]),
            _ => None,
        }
    }

    /// Appends a slice of terminals, amortizing per-symbol overhead.
    ///
    /// Semantically identical to pushing each terminal with
    /// [`Sequitur::push`] — the grammar (and any later checkpoint)
    /// comes out byte-for-byte the same, which the differential tests
    /// pin down. The batch entry point only front-loads capacity
    /// management: the node arena and the digram index grow once per
    /// batch instead of rehashing/reallocating mid-stream, which is
    /// where a per-symbol call spends much of its time on grammar-heavy
    /// workloads.
    pub fn push_batch(&mut self, terminals: &[u64]) {
        // Each pushed terminal appends one node; rule formation adds
        // three more (guard + two body symbols) but unlinks two, so
        // `len` is a tight bound on net arena growth for the batch.
        let spare = self.free_nodes.len();
        if terminals.len() > spare {
            self.nodes.reserve(terminals.len() - spare);
        }
        // The digram index is deliberately NOT pre-reserved for the
        // whole batch: on compressible streams the live digram count
        // stays tiny, and inflating the table to batch size spreads the
        // hot probes across a cold multi-megabyte allocation — measured
        // as a ~15% slowdown on small-alphabet dimension streams. Growth
        // on incompressible streams is already amortized by the map's
        // doubling rehash.
        for &t in terminals {
            self.push(t);
        }
    }

    /// Appends many terminals.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, terminals: I) {
        for t in terminals {
            self.push(t);
        }
    }

    /// Compressed size: total number of symbols on the right-hand sides
    /// of all rules.
    ///
    /// This is the standard grammar-size measure used when comparing
    /// OMSG against RASG in the paper's Figure 5.
    #[must_use]
    pub fn size(&self) -> u64 {
        let mut total = 0u64;
        for slot in &self.rules {
            if slot.guard == NIL {
                continue;
            }
            let mut cur = self.nodes[slot.guard as usize].next;
            while cur != slot.guard {
                total += 1;
                cur = self.nodes[cur as usize].next;
            }
        }
        total
    }

    /// Number of live rules, including the start rule.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rules.iter().filter(|r| r.guard != NIL).count()
    }

    /// Snapshots the inferred grammar with densely renumbered rules
    /// (rule 0 is the start rule).
    #[must_use]
    pub fn grammar(&self) -> Grammar {
        // Map live slots to dense ids.
        let mut dense = vec![u32::MAX; self.rules.len()];
        let mut next_id = 0u32;
        for (i, slot) in self.rules.iter().enumerate() {
            if slot.guard != NIL {
                dense[i] = next_id;
                next_id += 1;
            }
        }
        let mut rules = Vec::with_capacity(next_id as usize);
        for slot in &self.rules {
            if slot.guard == NIL {
                continue;
            }
            let mut body = Vec::new();
            let mut cur = self.nodes[slot.guard as usize].next;
            while cur != slot.guard {
                body.push(match self.nodes[cur as usize].sym {
                    s if self.terminal_value(s).is_some() => {
                        GrammarSymbol::Terminal(self.terminal_value(s).expect("checked terminal"))
                    }
                    s if s.as_rule().is_some() => {
                        let r = s.as_rule().expect("checked rule");
                        GrammarSymbol::Rule(RuleId(dense[r as usize]))
                    }
                    _ => unreachable!("guard/free inside a rule body"),
                });
                cur = self.nodes[cur as usize].next;
            }
            rules.push(body);
        }
        Grammar::from_rules(rules)
    }

    /// Checks the Sequitur invariants on the current grammar, panicking
    /// with a description on violation. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if digram uniqueness (modulo overlapping occurrences) or
    /// rule utility is violated, or if a rule's recorded use count
    /// disagrees with the actual number of uses.
    pub fn assert_invariants(&self) {
        // Count rule uses and collect digram occurrences.
        let mut uses: HashMap<u32, u32, FxBuildHasher> = HashMap::default();
        let mut digram_sites: HashMap<(Sym, Sym), Vec<(usize, usize)>, FxBuildHasher> =
            HashMap::default();
        for (slot_idx, slot) in self.rules.iter().enumerate() {
            if slot.guard == NIL {
                continue;
            }
            let mut body = Vec::new();
            let mut cur = self.nodes[slot.guard as usize].next;
            while cur != slot.guard {
                body.push(self.nodes[cur as usize].sym);
                if let Some(r) = self.nodes[cur as usize].sym.as_rule() {
                    *uses.entry(r).or_insert(0) += 1;
                }
                cur = self.nodes[cur as usize].next;
            }
            for (pos, pair) in body.windows(2).enumerate() {
                digram_sites
                    .entry((pair[0], pair[1]))
                    .or_default()
                    .push((slot_idx, pos));
            }
        }
        for (i, slot) in self.rules.iter().enumerate() {
            if slot.guard == NIL {
                continue;
            }
            let actual = uses.get(&(i as u32)).copied().unwrap_or(0);
            assert_eq!(slot.uses, actual, "rule {i} use count drifted");
            if i != 0 {
                assert!(
                    actual >= 2,
                    "rule {i} used {actual} time(s): utility violated"
                );
            }
        }
        for (digram, sites) in &digram_sites {
            if sites.len() > 1 {
                // Repeats are only legal when every occurrence overlaps the
                // next (a run like aaa in one body).
                for w in sites.windows(2) {
                    let ((r0, p0), (r1, p1)) = (w[0], w[1]);
                    assert!(
                        r0 == r1 && p1 == p0 + 1 && digram.0 == digram.1,
                        "digram {digram:?} repeats without overlap at {sites:?}"
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Arena plumbing
    // ------------------------------------------------------------------

    #[inline]
    fn new_node(&mut self, sym: Sym) -> u32 {
        if let Some(r) = sym.as_rule() {
            self.rules[r as usize].uses += 1;
        }
        if let Some(idx) = self.free_nodes.pop() {
            self.nodes[idx as usize] = Node {
                sym,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            // analyze: allow(panic-reachability): arena-capacity invariant — u32 node ids cap the arena at 4G nodes; growth past that is a resource exhaustion, not a malformed-input path
            let idx = u32::try_from(self.nodes.len()).expect("grammar exceeds u32 nodes");
            self.nodes.push(Node {
                sym,
                prev: NIL,
                next: NIL,
            });
            idx
        }
    }

    #[inline]
    fn free_node(&mut self, idx: u32) {
        self.nodes[idx as usize] = Node {
            sym: Sym::FREE,
            prev: NIL,
            next: NIL,
        };
        self.free_nodes.push(idx);
    }

    fn new_rule(&mut self) -> u32 {
        let r = if let Some(r) = self.free_rules.pop() {
            r
        } else {
            // analyze: allow(panic-reachability): arena-capacity invariant — u32 rule ids cap the arena at 4G rules, unreachable for any accepted input
            let r = u32::try_from(self.rules.len()).expect("grammar exceeds u32 rules");
            self.rules.push(RuleSlot {
                guard: NIL,
                uses: 0,
            });
            r
        };
        let guard = self.new_node(Sym::guard(r));
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules[r as usize] = RuleSlot { guard, uses: 0 };
        r
    }

    #[inline]
    fn sym(&self, n: u32) -> Sym {
        self.nodes[n as usize].sym
    }

    /// The digram starting at `n`, unless `n` or its successor is a guard.
    #[inline]
    fn digram_at(&self, n: u32) -> Option<(Sym, Sym)> {
        let next = self.nodes[n as usize].next;
        if next == NIL {
            return None;
        }
        let a = self.sym(n);
        let b = self.sym(next);
        if a.is_guard() || b.is_guard() {
            None
        } else {
            Some((a, b))
        }
    }

    #[inline]
    fn delete_digram(&mut self, n: u32) {
        if let Some(d) = self.digram_at(n) {
            // Single-probe conditional removal: `get` + `remove` would
            // walk the probe sequence twice.
            if let Entry::Occupied(e) = self.digrams.entry(d) {
                if *e.get() == n {
                    e.remove();
                }
            }
        }
    }

    /// Links `left -> right`, maintaining the digram index (including the
    /// triple special case for runs of equal symbols, e.g. `aaa`).
    fn join(&mut self, left: u32, right: u32) {
        if self.nodes[left as usize].next != NIL {
            self.delete_digram(left);

            // If `right` sits in the middle of a run of equal symbols, its
            // digram entry may have been the one just removed; restore it.
            let (rp, rn) = (
                self.nodes[right as usize].prev,
                self.nodes[right as usize].next,
            );
            if rp != NIL
                && rn != NIL
                && self.sym(right) == self.sym(rp)
                && self.sym(right) == self.sym(rn)
            {
                if let Some(d) = self.digram_at(right) {
                    self.digrams.insert(d, right);
                }
            }
            let (lp, ln) = (
                self.nodes[left as usize].prev,
                self.nodes[left as usize].next,
            );
            if lp != NIL
                && ln != NIL
                && self.sym(left) == self.sym(lp)
                && self.sym(left) == self.sym(ln)
            {
                if let Some(d) = self.digram_at(lp) {
                    self.digrams.insert(d, lp);
                }
            }
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    #[inline]
    fn insert_after(&mut self, pos: u32, node: u32) {
        let next = self.nodes[pos as usize].next;
        self.join(node, next);
        self.join(pos, node);
    }

    /// Unlinks and frees `n`, removing its digram and releasing its rule
    /// reference.
    fn delete_node(&mut self, n: u32) {
        let (p, nx) = (self.nodes[n as usize].prev, self.nodes[n as usize].next);
        self.join(p, nx);
        self.delete_digram(n);
        if let Some(r) = self.sym(n).as_rule() {
            self.rules[r as usize].uses -= 1;
        }
        self.free_node(n);
    }

    // ------------------------------------------------------------------
    // The algorithm proper
    // ------------------------------------------------------------------

    /// Enforces digram uniqueness for the digram starting at `first`.
    /// Returns `true` when the grammar changed.
    #[inline]
    fn check(&mut self, first: u32) -> bool {
        let Some(d) = self.digram_at(first) else {
            return false;
        };
        // One probe covers both the miss (index the new digram at the
        // already-located vacant slot) and the hit; the dominant
        // new-digram path previously paid a `get` and then an `insert`.
        let m = match self.digrams.entry(d) {
            Entry::Vacant(slot) => {
                slot.insert(first);
                return false;
            }
            Entry::Occupied(slot) => *slot.get(),
        };
        if m == first {
            return false;
        }
        // Overlapping occurrence (e.g. `aaa`): no rule is formed.
        if self.nodes[m as usize].next == first || self.nodes[first as usize].next == m {
            return false;
        }
        self.match_found(first, m);
        true
    }

    /// Handles a repeated digram: `first` is the new occurrence, `m` the
    /// indexed one.
    fn match_found(&mut self, first: u32, m: u32) {
        let m_prev = self.nodes[m as usize].prev;
        let m_next = self.nodes[m as usize].next;
        let m_next_next = self.nodes[m_next as usize].next;

        let r = if self.sym(m_prev).is_guard() && self.sym(m_next_next).is_guard() {
            // The matched occurrence is exactly an existing rule's body:
            // reuse that rule.
            let Some(r) = self.sym(m_prev).as_guard() else {
                // analyze: allow(panic-reachability): the branch condition just checked is_guard(), so as_guard() cannot fail
                unreachable!()
            };
            self.substitute(first, r);
            r
        } else {
            // Create a new rule from the digram and substitute both
            // occurrences.
            let a = self.sym(first);
            let b = self.sym(self.nodes[first as usize].next);
            let r = self.new_rule();
            let guard = self.rules[r as usize].guard;
            let na = self.new_node(a);
            self.insert_after(guard, na);
            let nb = self.new_node(b);
            self.insert_after(na, nb);
            self.substitute(m, r);
            self.substitute(first, r);
            let body_first = self.nodes[self.rules[r as usize].guard as usize].next;
            if let Some(d) = self.digram_at(body_first) {
                self.digrams.insert(d, body_first);
            }
            r
        };

        // Rule utility: inline any rule in r's body that is now used once.
        let guard = self.rules[r as usize].guard;
        let mut cur = self.nodes[guard as usize].next;
        while cur != guard {
            let nxt = self.nodes[cur as usize].next;
            if let Some(r2) = self.sym(cur).as_rule() {
                if self.rules[r2 as usize].uses == 1 {
                    self.expand(cur);
                }
            }
            cur = nxt;
        }
    }

    /// Replaces the digram starting at `first` with a use of rule `r`.
    fn substitute(&mut self, first: u32, r: u32) {
        let q = self.nodes[first as usize].prev;
        let second = self.nodes[first as usize].next;
        self.delete_node(second);
        self.delete_node(first);
        let node = self.new_node(Sym::rule(r));
        self.insert_after(q, node);
        if !self.check(q) {
            let qn = self.nodes[q as usize].next;
            self.check(qn);
        }
    }

    /// Inlines the body of the rule used at `node` (its sole remaining
    /// use) and deletes the rule.
    fn expand(&mut self, node: u32) {
        let left = self.nodes[node as usize].prev;
        let right = self.nodes[node as usize].next;
        let Some(r) = self.sym(node).as_rule() else {
            // analyze: allow(panic-reachability): callers only reach expand() through an as_rule() check on the same node (see match_found)
            unreachable!("expand on non-rule symbol")
        };
        debug_assert_eq!(self.rules[r as usize].uses, 1);
        let guard = self.rules[r as usize].guard;
        let f = self.nodes[guard as usize].next;
        let l = self.nodes[guard as usize].prev;

        // Drop the digram starting at `node` from the index.
        self.delete_digram(node);

        // Delete the rule (its guard's unlink mirrors the reference
        // implementation's guard destructor, re-joining l and f — this
        // linkage is overwritten just below).
        self.join(l, f);
        self.free_node(guard);
        self.rules[r as usize] = RuleSlot {
            guard: NIL,
            uses: 0,
        };
        self.free_rules.push(r);

        // Unlink the use node without digram/use side effects (the digram
        // was removed above and the rule no longer exists).
        self.join(left, right);
        self.free_node(node);

        // Splice the body in place of the deleted node.
        self.join(left, f);
        self.join(l, right);
        if let Some(d) = self.digram_at(l) {
            self.digrams.insert(d, l);
        }
    }
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

/// Compresses an entire sequence in one call.
///
/// ```
/// let g = orp_sequitur::compress([1, 2, 1, 2, 1, 2, 1, 2]);
/// assert!(g.size() < 8);
/// assert_eq!(g.expand(), vec![1, 2, 1, 2, 1, 2, 1, 2]);
/// ```
#[must_use]
pub fn compress<I: IntoIterator<Item = u64>>(input: I) -> Grammar {
    let mut seq = Sequitur::new();
    seq.extend(input);
    seq.grammar()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u64]) -> Grammar {
        let mut seq = Sequitur::new();
        seq.extend(input.iter().copied());
        seq.assert_invariants();
        let g = seq.grammar();
        assert_eq!(g.expand(), input, "lossless round-trip failed");
        g
    }

    #[test]
    fn empty_input() {
        let g = roundtrip(&[]);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(g.size(), 0);
    }

    #[test]
    fn single_symbol() {
        let g = roundtrip(&[42]);
        assert_eq!(g.size(), 1);
    }

    #[test]
    fn paper_example_abcbcabcbc() {
        let input: Vec<u64> = "abcbcabcbc".bytes().map(u64::from).collect();
        let g = roundtrip(&input);
        // S -> AA; A -> aBB; B -> bc
        assert_eq!(g.rule_count(), 3);
        assert_eq!(g.size(), 7);
    }

    #[test]
    fn classic_abab() {
        let input: Vec<u64> = "abab".bytes().map(u64::from).collect();
        let g = roundtrip(&input);
        // S -> AA; A -> ab
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.size(), 4);
    }

    #[test]
    fn runs_of_equal_symbols() {
        for n in 1..40 {
            let input = vec![7u64; n];
            roundtrip(&input);
        }
    }

    #[test]
    fn aaaa_forms_hierarchy() {
        let g = roundtrip(&[1, 1, 1, 1]);
        // S -> AA; A -> aa
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.size(), 4);
    }

    #[test]
    fn long_repetition_compresses_logarithmically() {
        let input: Vec<u64> = std::iter::repeat_n([3u64, 1, 4, 1, 5], 256)
            .flatten()
            .collect();
        let g = roundtrip(&input);
        assert!(
            g.size() < 64,
            "1280 symbols of period-5 input should compress far below 64, got {}",
            g.size()
        );
    }

    #[test]
    fn incompressible_input_stays_linear() {
        // All-distinct symbols form no repeated digram.
        let input: Vec<u64> = (0..500).collect();
        let g = roundtrip(&input);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(g.size(), 500);
    }

    #[test]
    fn rule_reuse_path() {
        // "abab" creates A->ab; a later "ab" must reuse A, not make a new
        // rule.
        let input: Vec<u64> = "ababab".bytes().map(u64::from).collect();
        let g = roundtrip(&input);
        assert_eq!(g.rule_count(), 2);
    }

    #[test]
    fn utility_inlines_underused_rules() {
        // "abcdbcabcd": forms and then must inline intermediate rules.
        let input: Vec<u64> = "abcdbcabcd".bytes().map(u64::from).collect();
        let mut seq = Sequitur::new();
        seq.extend(input.iter().copied());
        seq.assert_invariants();
        assert_eq!(seq.grammar().expand(), input);
    }

    #[test]
    fn size_matches_grammar_snapshot() {
        let input: Vec<u64> = "mississippi$mississippi$".bytes().map(u64::from).collect();
        let mut seq = Sequitur::new();
        seq.extend(input.iter().copied());
        assert_eq!(seq.size(), seq.grammar().size());
    }

    #[test]
    fn push_batch_matches_per_symbol_push_exactly() {
        // Same grammar bytes AND same checkpoint bytes: batching is
        // purely a capacity optimization, never a semantic one.
        let input: Vec<u64> = "aaaabaaaabxyxyxyabcbcabcbcaaa"
            .bytes()
            .map(u64::from)
            .collect();
        for chunk in [1, 2, 3, 7, input.len()] {
            let mut reference = Sequitur::new();
            for &t in &input {
                reference.push(t);
            }
            let mut batched = Sequitur::new();
            for piece in input.chunks(chunk) {
                batched.push_batch(piece);
            }
            batched.assert_invariants();
            assert_eq!(batched.grammar(), reference.grammar(), "chunk {chunk}");
            let mut a = Vec::new();
            let mut b = Vec::new();
            reference.save_state(&mut a).unwrap();
            batched.save_state(&mut b).unwrap();
            assert_eq!(a, b, "checkpoint drift at chunk {chunk}");
        }
    }

    #[test]
    fn input_len_counts_pushes() {
        let mut seq = Sequitur::new();
        seq.extend([1, 2, 3]);
        assert_eq!(seq.input_len(), 3);
    }

    #[test]
    fn interleaved_alphabets() {
        let input: Vec<u64> = (0..300)
            .map(|i| if i % 2 == 0 { i % 6 } else { 100 + i % 4 })
            .collect();
        roundtrip(&input);
    }

    #[test]
    fn compress_helper_equivalent_to_manual() {
        let input: Vec<u64> = "xyzxyzxyz".bytes().map(u64::from).collect();
        let g1 = compress(input.iter().copied());
        let mut seq = Sequitur::new();
        seq.extend(input.iter().copied());
        assert_eq!(g1.size(), seq.grammar().size());
    }
}
