//! Binary serialization for grammars.
//!
//! Varint (LEB128) encoding, matching [`Grammar::encoded_bytes`]
//! exactly: a grammar file is `varint(rule_count)` followed by, per
//! rule, `varint(body_len)` and one tagged varint per symbol
//! (`2·value + 1` for terminals, `2·rule_id` for rule references).

use std::io::{self, Read, Write};

use crate::{varint_len, Grammar, GrammarSymbol, RuleId};

/// Writes a LEB128 varint.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// Propagates reader errors; rejects encodings longer than 10 bytes.
pub fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl Grammar {
    /// Serializes the grammar.
    ///
    /// The payload after the `varint(rule_count)` header is exactly
    /// [`Grammar::encoded_bytes`] bytes long.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.rule_count() as u64)?;
        for (_, body) in self.iter() {
            write_varint(w, body.len() as u64)?;
            for sym in body {
                match sym {
                    GrammarSymbol::Terminal(t) => {
                        let tagged = t.checked_shl(1).ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "terminal exceeds the tagged-varint space",
                            )
                        })? | 1;
                        write_varint(w, tagged)?;
                    }
                    GrammarSymbol::Rule(RuleId(r)) => write_varint(w, u64::from(*r) << 1)?,
                }
            }
        }
        Ok(())
    }

    /// Deserializes a grammar written by [`Grammar::write_to`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects empty grammars and dangling
    /// rule references.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let rule_count = read_varint(r)?;
        if rule_count == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "grammar has no rules",
            ));
        }
        let mut rules = Vec::with_capacity(usize::try_from(rule_count).unwrap_or(0).min(1 << 20));
        for _ in 0..rule_count {
            let len = read_varint(r)?;
            let mut body = Vec::with_capacity(usize::try_from(len).unwrap_or(0).min(1 << 20));
            for _ in 0..len {
                let tagged = read_varint(r)?;
                body.push(if tagged & 1 == 1 {
                    GrammarSymbol::Terminal(tagged >> 1)
                } else {
                    let id = tagged >> 1;
                    if id >= rule_count {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "rule reference out of range",
                        ));
                    }
                    GrammarSymbol::Rule(RuleId(id as u32))
                });
            }
            rules.push(body);
        }
        Ok(Grammar::from_rules(rules))
    }

    /// The exact on-disk size: payload ([`Grammar::encoded_bytes`]) plus
    /// the rule-count header.
    #[must_use]
    pub fn serialized_len(&self) -> u64 {
        varint_len(self.rule_count() as u64) + self.encoded_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sequitur;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(buf.len() as u64, varint_len(v), "length model for {v}");
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn grammar_roundtrip_preserves_expansion() {
        let mut seq = Sequitur::new();
        seq.extend(
            "the quick brown fox the quick brown fox jumps"
                .bytes()
                .map(u64::from),
        );
        let grammar = seq.grammar();
        let mut buf = Vec::new();
        grammar.write_to(&mut buf).unwrap();
        assert_eq!(
            buf.len() as u64,
            grammar.serialized_len(),
            "size model is exact"
        );
        let back = Grammar::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, grammar);
        assert_eq!(back.expand(), grammar.expand());
    }

    #[test]
    fn empty_start_rule_roundtrips() {
        let grammar = Sequitur::new().grammar();
        let mut buf = Vec::new();
        grammar.write_to(&mut buf).unwrap();
        let back = Grammar::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.expand(), Vec::<u64>::new());
    }

    #[test]
    fn dangling_rule_reference_is_rejected() {
        // Hand-craft: 1 rule whose body references rule 5.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1).unwrap(); // rule count
        write_varint(&mut buf, 1).unwrap(); // body length
        write_varint(&mut buf, 5 << 1).unwrap(); // rule ref 5
        assert!(Grammar::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_grammar_is_rejected() {
        let mut seq = Sequitur::new();
        seq.extend([1, 2, 1, 2, 1, 2]);
        let mut buf = Vec::new();
        seq.grammar().write_to(&mut buf).unwrap();
        buf.pop();
        assert!(Grammar::read_from(&mut buf.as_slice()).is_err());
    }
}
