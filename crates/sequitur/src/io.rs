//! Binary serialization for grammars and compressor checkpoints.
//!
//! Grammar payloads use the varint codecs from [`orp_format`], matching
//! [`Grammar::encoded_bytes`] exactly: a grammar payload is
//! `varint(rule_count)` followed by, per rule, `varint(body_len)` and
//! one tagged varint per symbol (`2·value + 1` for terminals,
//! `2·rule_id` for rule references). Standalone grammar *files* wrap
//! that payload in a `.orp` container ([`Grammar::write_container`]).
//!
//! Mid-run checkpoints ([`Sequitur::save_state`]) serialize the
//! compressor's *full* internal state — arena nodes, free lists, rule
//! slots, and the digram index — rather than a grammar snapshot.
//! Rebuilding from a snapshot is not exact: which occurrence of an
//! overlapping digram (a run like `aaa`) is indexed depends on
//! insertion history and steers future overlap decisions, so only a
//! verbatim restore guarantees a resumed run matches an uninterrupted
//! one byte for byte.

use std::io::{self, Read, Write};

use orp_format::{
    read_single_chunk, read_varint, varint_len, write_single_chunk, write_varint, FormatError,
    ProfileKind,
};

use crate::{Grammar, GrammarSymbol, Node, RuleId, RuleSlot, Sequitur, Sym, NIL};

fn bad_data(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Whether any rule (not just the start rule) participates in a
/// reference cycle. Sequitur never produces one, but a crafted payload
/// can — and the expansion walks (`expanded_len`, `expand`) rely on
/// acyclicity, so a cyclic grammar must be rejected at the decode
/// boundary. Iterative tri-color DFS; runs in time linear in the
/// grammar size.
fn has_cycle(rules: &[Vec<GrammarSymbol>]) -> bool {
    const ON_STACK: u8 = 1;
    const DONE: u8 = 2;
    let mut state = vec![0u8; rules.len()];
    for start in 0..rules.len() {
        if state.get(start).copied() != Some(0) {
            continue;
        }
        // A frame is (rule, next symbol offset in its body).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        if let Some(s) = state.get_mut(start) {
            *s = ON_STACK;
        }
        while let Some((rule, idx)) = stack.pop() {
            let Some(body) = rules.get(rule) else {
                continue;
            };
            match body.get(idx) {
                None => {
                    if let Some(s) = state.get_mut(rule) {
                        *s = DONE;
                    }
                }
                Some(GrammarSymbol::Terminal(_)) => stack.push((rule, idx + 1)),
                Some(GrammarSymbol::Rule(RuleId(r))) => {
                    let child = *r as usize;
                    stack.push((rule, idx + 1));
                    match state.get(child).copied() {
                        Some(0) => {
                            if let Some(s) = state.get_mut(child) {
                                *s = ON_STACK;
                            }
                            stack.push((child, 0));
                        }
                        Some(ON_STACK) => return true,
                        _ => {}
                    }
                }
            }
        }
    }
    false
}

impl Grammar {
    /// Serializes the grammar payload.
    ///
    /// The payload after the `varint(rule_count)` header is exactly
    /// [`Grammar::encoded_bytes`] bytes long.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.rule_count() as u64)?;
        for (_, body) in self.iter() {
            write_varint(w, body.len() as u64)?;
            for sym in body {
                match sym {
                    GrammarSymbol::Terminal(t) => {
                        let tagged = t.checked_shl(1).ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "terminal exceeds the tagged-varint space",
                            )
                        })? | 1;
                        write_varint(w, tagged)?;
                    }
                    GrammarSymbol::Rule(RuleId(r)) => write_varint(w, u64::from(*r) << 1)?,
                }
            }
        }
        Ok(())
    }

    /// Deserializes a grammar payload written by [`Grammar::write_to`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects empty grammars and dangling
    /// rule references.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let rule_count = read_varint(r)?;
        if rule_count == 0 {
            return Err(bad_data("grammar has no rules"));
        }
        let mut rules = Vec::with_capacity(usize::try_from(rule_count).unwrap_or(0).min(1 << 20));
        for _ in 0..rule_count {
            let len = read_varint(r)?;
            let mut body = Vec::with_capacity(usize::try_from(len).unwrap_or(0).min(1 << 20));
            for _ in 0..len {
                let tagged = read_varint(r)?;
                body.push(if tagged & 1 == 1 {
                    GrammarSymbol::Terminal(tagged >> 1)
                } else {
                    let id = tagged >> 1;
                    if id >= rule_count {
                        return Err(bad_data("rule reference out of range"));
                    }
                    GrammarSymbol::Rule(RuleId(id as u32))
                });
            }
            rules.push(body);
        }
        if has_cycle(&rules) {
            return Err(bad_data("cyclic rule reference"));
        }
        Ok(Grammar::from_rules(rules))
    }

    /// Writes the grammar as a standalone `.orp` container.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_container(&self, w: impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_to(&mut payload)?;
        write_single_chunk(w, ProfileKind::Grammar, &payload)
    }

    /// Reads a standalone grammar container written by
    /// [`Grammar::write_container`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage; payload errors from
    /// [`Grammar::read_from`].
    pub fn read_container(r: impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::Grammar)?;
        let mut cursor = payload.as_slice();
        let grammar = Grammar::read_from(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes after grammar"));
        }
        Ok(grammar)
    }

    /// The exact on-disk payload size: [`Grammar::encoded_bytes`] plus
    /// the rule-count header.
    #[must_use]
    pub fn serialized_len(&self) -> u64 {
        varint_len(self.rule_count() as u64) + self.encoded_bytes()
    }
}

impl Sequitur {
    /// Stable sort/serialization key for a [`Sym`]: `(tag, value)`,
    /// where terminals carry their *raw* value (resolving the intern
    /// table for large ones) so the on-disk format is independent of
    /// the packed in-memory representation.
    fn sym_key(&self, s: Sym) -> (u8, u64) {
        if let Some(t) = self.terminal_value(s) {
            (0, t)
        } else if let Some(r) = s.as_rule() {
            (1, u64::from(r))
        } else if let Some(r) = s.as_guard() {
            (2, u64::from(r))
        } else {
            (3, 0)
        }
    }

    fn write_sym(&self, w: &mut impl Write, s: Sym) -> io::Result<()> {
        let (tag, value) = self.sym_key(s);
        w.write_all(&[tag])?;
        write_varint(w, value)
    }

    /// Reads one symbol, interning large terminals into this
    /// compressor's tables (interning dedups, so the ids a restore
    /// assigns are consistent across every occurrence of a value).
    fn read_sym(&mut self, r: &mut impl Read) -> io::Result<Sym> {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let [tag] = tag;
        let value = read_varint(r)?;
        let as_u32 =
            |v: u64| u32::try_from(v).map_err(|_| bad_data("symbol index exceeds u32 range"));
        Ok(match tag {
            0 => self.intern(value),
            1 => Sym::rule(as_u32(value)?),
            2 => Sym::guard(as_u32(value)?),
            3 => Sym::FREE,
            _ => return Err(bad_data("unknown symbol tag")),
        })
    }
}

/// Reads a node/rule index that may be the `NIL` sentinel; anything
/// else must be below `limit`.
fn read_index(r: &mut impl Read, limit: usize) -> io::Result<u32> {
    let v = read_varint(r)?;
    let v = u32::try_from(v).map_err(|_| bad_data("index exceeds u32 range"))?;
    if v != NIL && (v as usize) >= limit {
        return Err(bad_data("index out of range"));
    }
    Ok(v)
}

impl Sequitur {
    /// Serializes the compressor's complete internal state.
    ///
    /// The digram index is written sorted by key so equal states always
    /// produce equal bytes.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_state(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.input_len)?;
        write_varint(w, self.nodes.len() as u64)?;
        for node in &self.nodes {
            self.write_sym(w, node.sym)?;
            write_varint(w, u64::from(node.prev))?;
            write_varint(w, u64::from(node.next))?;
        }
        write_varint(w, self.free_nodes.len() as u64)?;
        for &idx in &self.free_nodes {
            write_varint(w, u64::from(idx))?;
        }
        write_varint(w, self.rules.len() as u64)?;
        for slot in &self.rules {
            write_varint(w, u64::from(slot.guard))?;
            write_varint(w, u64::from(slot.uses))?;
        }
        write_varint(w, self.free_rules.len() as u64)?;
        for &idx in &self.free_rules {
            write_varint(w, u64::from(idx))?;
        }
        let mut digrams: Vec<(&(Sym, Sym), &u32)> = self.digrams.iter().collect();
        digrams.sort_by_key(|((a, b), _)| (self.sym_key(*a), self.sym_key(*b)));
        write_varint(w, digrams.len() as u64)?;
        for ((a, b), &node) in digrams {
            self.write_sym(w, *a)?;
            self.write_sym(w, *b)?;
            write_varint(w, u64::from(node))?;
        }
        Ok(())
    }

    /// Restores a compressor from [`Sequitur::save_state`] output.
    ///
    /// The restored compressor continues the input stream exactly as
    /// the saved one would have: resuming mid-stream is byte-identical
    /// to never stopping.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects out-of-range indices and
    /// unknown symbol tags.
    pub fn restore_state(r: &mut impl Read) -> io::Result<Self> {
        let mut seq = Sequitur::blank();
        seq.input_len = read_varint(r)?;
        let node_count =
            usize::try_from(read_varint(r)?).map_err(|_| bad_data("node count exceeds usize"))?;
        if node_count >= NIL as usize {
            return Err(bad_data("node count exceeds u32 arena"));
        }
        seq.nodes.reserve(node_count.min(1 << 20));
        for _ in 0..node_count {
            let sym = seq.read_sym(r)?;
            let prev = read_index(r, node_count)?;
            let next = read_index(r, node_count)?;
            seq.nodes.push(Node { sym, prev, next });
        }
        let free_count = usize::try_from(read_varint(r)?)
            .map_err(|_| bad_data("free-node count exceeds usize"))?;
        if free_count > node_count {
            return Err(bad_data("more free nodes than nodes"));
        }
        seq.free_nodes.reserve(free_count.min(1 << 20));
        for _ in 0..free_count {
            let idx = read_index(r, node_count)?;
            if idx == NIL {
                return Err(bad_data("NIL on the free-node list"));
            }
            seq.free_nodes.push(idx);
        }
        let rule_count =
            usize::try_from(read_varint(r)?).map_err(|_| bad_data("rule count exceeds usize"))?;
        if rule_count == 0 || rule_count >= NIL as usize {
            return Err(bad_data("rule table must hold the start rule"));
        }
        seq.rules.reserve(rule_count.min(1 << 20));
        for _ in 0..rule_count {
            let guard = read_index(r, node_count)?;
            let uses = read_index(r, usize::MAX)?;
            seq.rules.push(RuleSlot { guard, uses });
        }
        let free_rule_count = usize::try_from(read_varint(r)?)
            .map_err(|_| bad_data("free-rule count exceeds usize"))?;
        if free_rule_count > rule_count {
            return Err(bad_data("more free rules than rules"));
        }
        seq.free_rules.reserve(free_rule_count.min(1 << 20));
        for _ in 0..free_rule_count {
            let idx = read_index(r, rule_count)?;
            if idx == NIL {
                return Err(bad_data("NIL on the free-rule list"));
            }
            seq.free_rules.push(idx);
        }
        let digram_count =
            usize::try_from(read_varint(r)?).map_err(|_| bad_data("digram count exceeds usize"))?;
        if digram_count > node_count {
            return Err(bad_data("more digrams than nodes"));
        }
        seq.digrams.reserve(digram_count.min(1 << 20));
        for _ in 0..digram_count {
            let a = seq.read_sym(r)?;
            let b = seq.read_sym(r)?;
            let node = read_index(r, node_count)?;
            if node == NIL {
                return Err(bad_data("NIL digram node"));
            }
            seq.digrams.insert((a, b), node);
        }
        let start_guard = seq.rules.first().map_or(NIL, |start| start.guard);
        if start_guard == NIL || (start_guard as usize) >= node_count {
            return Err(bad_data("start rule has no guard node"));
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sequitur;

    #[test]
    fn grammar_roundtrip_preserves_expansion() {
        let mut seq = Sequitur::new();
        seq.extend(
            "the quick brown fox the quick brown fox jumps"
                .bytes()
                .map(u64::from),
        );
        let grammar = seq.grammar();
        let mut buf = Vec::new();
        grammar.write_to(&mut buf).unwrap();
        assert_eq!(
            buf.len() as u64,
            grammar.serialized_len(),
            "size model is exact"
        );
        let back = Grammar::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, grammar);
        assert_eq!(back.expand(), grammar.expand());
    }

    #[test]
    fn empty_start_rule_roundtrips() {
        let grammar = Sequitur::new().grammar();
        let mut buf = Vec::new();
        grammar.write_to(&mut buf).unwrap();
        let back = Grammar::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.expand(), Vec::<u64>::new());
    }

    #[test]
    fn dangling_rule_reference_is_rejected() {
        // Hand-craft: 1 rule whose body references rule 5.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1).unwrap(); // rule count
        write_varint(&mut buf, 1).unwrap(); // body length
        write_varint(&mut buf, 5 << 1).unwrap(); // rule ref 5
        assert!(Grammar::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn cyclic_rule_reference_is_rejected() {
        // Sequitur never emits a cycle, but a crafted payload can:
        // rule 1 referencing itself used to survive decoding and then
        // hang/panic the expansion walks (`expanded_len`, `expand`).
        let mut direct = Vec::new();
        write_varint(&mut direct, 2).unwrap(); // rule count
        write_varint(&mut direct, 1).unwrap(); // rule 0: body length
        write_varint(&mut direct, 1 << 1).unwrap(); //   ref rule 1
        write_varint(&mut direct, 1).unwrap(); // rule 1: body length
        write_varint(&mut direct, 1 << 1).unwrap(); //   ref rule 1 (self)
        let err = Grammar::read_from(&mut direct.as_slice()).unwrap_err();
        assert!(err.to_string().contains("cyclic"), "{err}");

        // Mutual recursion two hops away from the start rule.
        let mut mutual = Vec::new();
        write_varint(&mut mutual, 3).unwrap();
        for body_ref in [1u64, 2, 1] {
            write_varint(&mut mutual, 1).unwrap();
            write_varint(&mut mutual, body_ref << 1).unwrap();
        }
        let err = Grammar::read_from(&mut mutual.as_slice()).unwrap_err();
        assert!(err.to_string().contains("cyclic"), "{err}");
    }

    #[test]
    fn cyclic_grammar_in_container_errors_not_panics() {
        let mut payload = Vec::new();
        write_varint(&mut payload, 1).unwrap();
        write_varint(&mut payload, 1).unwrap();
        write_varint(&mut payload, 0 << 1).unwrap(); // start rule refs itself
        let mut container = Vec::new();
        write_single_chunk(&mut container, ProfileKind::Grammar, &payload).unwrap();
        assert!(Grammar::read_container(container.as_slice()).is_err());
    }

    #[test]
    fn truncated_grammar_is_rejected() {
        let mut seq = Sequitur::new();
        seq.extend([1, 2, 1, 2, 1, 2]);
        let mut buf = Vec::new();
        seq.grammar().write_to(&mut buf).unwrap();
        buf.pop();
        assert!(Grammar::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn grammar_container_roundtrips() {
        let mut seq = Sequitur::new();
        seq.extend("abcbcabcbc".bytes().map(u64::from));
        let grammar = seq.grammar();
        let mut buf = Vec::new();
        grammar.write_container(&mut buf).unwrap();
        let back = Grammar::read_container(buf.as_slice()).unwrap();
        assert_eq!(back, grammar);
    }

    #[test]
    fn state_roundtrip_is_verbatim() {
        let mut seq = Sequitur::new();
        seq.extend("mississippi$mississippi$miss".bytes().map(u64::from));
        let mut buf = Vec::new();
        seq.save_state(&mut buf).unwrap();
        let back = Sequitur::restore_state(&mut buf.as_slice()).unwrap();
        assert_eq!(back.input_len(), seq.input_len());
        assert_eq!(back.grammar(), seq.grammar());
        back.assert_invariants();
    }

    #[test]
    fn resumed_stream_matches_uninterrupted() {
        // The checkpoint guarantee: split the input anywhere, save and
        // restore at the cut, and the final grammar bytes must be
        // identical to never stopping. Runs of equal symbols are the
        // adversarial case (overlapping-digram bookkeeping).
        let input: Vec<u64> = "aaaabaaaabaaaabxyxyxyaaa".bytes().map(u64::from).collect();
        for cut in 0..=input.len() {
            let mut whole = Sequitur::new();
            whole.extend(input.iter().copied());

            let mut first = Sequitur::new();
            first.extend(input[..cut].iter().copied());
            let mut buf = Vec::new();
            first.save_state(&mut buf).unwrap();
            let mut resumed = Sequitur::restore_state(&mut buf.as_slice()).unwrap();
            resumed.extend(input[cut..].iter().copied());
            resumed.assert_invariants();

            let mut a = Vec::new();
            let mut b = Vec::new();
            whole.grammar().write_to(&mut a).unwrap();
            resumed.grammar().write_to(&mut b).unwrap();
            assert_eq!(a, b, "divergence when cutting at {cut}");

            // The internal state must also re-serialize identically, so
            // a second checkpoint of the resumed run matches.
            let mut whole_state = Vec::new();
            let mut resumed_state = Vec::new();
            whole.save_state(&mut whole_state).unwrap();
            resumed.save_state(&mut resumed_state).unwrap();
            assert_eq!(whole_state, resumed_state, "state drift at cut {cut}");
        }
    }

    #[test]
    fn huge_declared_counts_error_without_huge_allocation() {
        // A tiny file may declare near-u32::MAX element counts; every
        // `reserve` on the decode path is clamped, so the parse must
        // fail on the missing data instead of pre-allocating gigabytes.
        let mut buf = Vec::new();
        write_varint(&mut buf, 0).unwrap(); // input_len
        write_varint(&mut buf, u64::from(NIL - 1)).unwrap(); // node count
        assert!(Sequitur::restore_state(&mut buf.as_slice()).is_err());

        // Same for a grammar payload declaring a huge rule count.
        let mut grammar = Vec::new();
        write_varint(&mut grammar, u64::MAX).unwrap();
        assert!(Grammar::read_from(&mut grammar.as_slice()).is_err());
    }

    #[test]
    fn corrupt_state_is_rejected_not_panicking() {
        let mut seq = Sequitur::new();
        seq.extend([1, 2, 1, 2, 3, 3, 3]);
        let mut buf = Vec::new();
        seq.save_state(&mut buf).unwrap();
        // Truncations at every byte boundary.
        for cut in 0..buf.len() {
            assert!(
                Sequitur::restore_state(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }
}
