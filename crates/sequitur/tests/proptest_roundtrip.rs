//! Property tests: Sequitur is lossless and maintains its invariants on
//! arbitrary inputs, with small alphabets chosen to stress repeated
//! digrams, runs of equal symbols, and rule reuse.

use orp_sequitur::Sequitur;
use proptest::prelude::*;

fn check_input(input: &[u64]) {
    let mut seq = Sequitur::new();
    seq.extend(input.iter().copied());
    seq.assert_invariants();
    let g = seq.grammar();
    assert_eq!(g.expand(), input.to_vec());
    assert_eq!(g.expanded_len(), input.len() as u64);
    assert!(
        g.size() <= input.len() as u64 + 2,
        "grammar larger than input plus slack"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_binary_alphabet(input in proptest::collection::vec(0u64..2, 0..400)) {
        check_input(&input);
    }

    #[test]
    fn roundtrip_small_alphabet(input in proptest::collection::vec(0u64..5, 0..400)) {
        check_input(&input);
    }

    #[test]
    fn roundtrip_mixed_alphabet(input in proptest::collection::vec(0u64..64, 0..600)) {
        check_input(&input);
    }

    #[test]
    fn roundtrip_runs(
        runs in proptest::collection::vec((0u64..3, 1usize..12), 0..40)
    ) {
        let input: Vec<u64> = runs
            .iter()
            .flat_map(|&(sym, len)| std::iter::repeat_n(sym, len))
            .collect();
        check_input(&input);
    }

    #[test]
    fn roundtrip_repeated_block(
        block in proptest::collection::vec(0u64..8, 1..20),
        reps in 1usize..20,
        suffix in proptest::collection::vec(0u64..8, 0..10)
    ) {
        let mut input: Vec<u64> = Vec::new();
        for _ in 0..reps {
            input.extend_from_slice(&block);
        }
        input.extend_from_slice(&suffix);
        check_input(&input);
    }

    #[test]
    fn repeated_block_compresses(
        block in proptest::collection::vec(0u64..16, 4..16),
    ) {
        // 64 repetitions of any block must compress below half the input.
        let mut input = Vec::new();
        for _ in 0..64 {
            input.extend_from_slice(&block);
        }
        let mut seq = Sequitur::new();
        seq.extend(input.iter().copied());
        prop_assert!(seq.size() <= input.len() as u64 / 2);
        prop_assert_eq!(seq.grammar().expand(), input);
    }
}
