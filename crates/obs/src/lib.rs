//! Observability substrate: counters, histograms, and span timings
//! behind a [`Recorder`] trait, plus the [`RunReport`] the CLI emits.
//!
//! The design rule is *zero cost when disabled*: hot loops never call
//! a recorder. They bump plain integer fields on the component they
//! already own (`Omc::translate_stats`, shard lane counters, session
//! checkpoint totals), and a recorder only sees those totals when a
//! phase boundary calls the component's `record_metrics`. The
//! [`Recorder`] methods default to no-ops, so [`NoopRecorder`] costs a
//! devirtualized empty call even at boundaries.
//!
//! [`StatsRecorder`] is the one real implementation: it aggregates
//! into `BTreeMap`s (deterministic iteration → stable report output)
//! and drains into a [`RunReport`], which renders as a human table
//! (`--stats`) or stable machine-readable JSON (`--metrics-out`). A
//! report can also be embedded into an existing `.orp` container as an
//! `MREP` chunk ([`embed_report`]) so `orprof inspect` can print it
//! later.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::time::Instant;

use orp_format::{ChunkTag, ContainerReader, ContainerWriter, FormatError};

/// Where metric events go at phase boundaries.
///
/// Every method defaults to a no-op so implementors opt into exactly
/// the signals they want and the disabled path stays free.
pub trait Recorder {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records one observation of `value` in the histogram `name`.
    fn observe(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records one timed span of `nanos` under `name`.
    fn span(&mut self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }
}

/// The disabled path: every method is the trait's empty default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Power-of-two-bucketed histogram of `u64` observations.
///
/// Bucket 0 counts zeros; bucket `k` counts values in
/// `[2^(k-1), 2^k)`. Exact count/sum/min/max ride along so reports
/// can show precise totals next to the coarse shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = 64 - u64::leading_zeros(value) as usize;
        self.buckets[idx] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The 65 power-of-two buckets.
    #[must_use]
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Estimated `p`-th percentile (0–100) from the power-of-two
    /// buckets: the upper bound of the bucket holding the rank-`p`
    /// observation, clamped into `[min, max]` so the estimate never
    /// leaves the observed range. `None` when no observations were
    /// recorded — an empty histogram has no percentiles, and callers
    /// must not mistake the absence of data for a zero.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the percentile observation, 1-based (nearest-rank).
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // Bucket 0 holds zeros; bucket k holds [2^(k-1), 2^k).
                let upper = match idx {
                    0 => 0,
                    64 => u64::MAX,
                    k => (1u64 << k) - 1,
                };
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Aggregate of the timed spans recorded under one name.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of spans.
    pub count: u64,
    /// Total duration in nanoseconds (saturating).
    pub total_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

/// The enabled path: aggregates everything into deterministic maps.
#[derive(Debug, Default)]
pub struct StatsRecorder {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl StatsRecorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Self {
        StatsRecorder::default()
    }

    /// Current value of a counter (0 when never bumped).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The aggregated counters, in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// The aggregated histograms, in name order.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.histograms
    }

    /// The aggregated spans, in name order.
    #[must_use]
    pub fn spans(&self) -> &BTreeMap<&'static str, SpanStats> {
        &self.spans
    }
}

impl Recorder for StatsRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    fn span(&mut self, name: &'static str, nanos: u64) {
        let s = self.spans.entry(name).or_default();
        s.count = s.count.saturating_add(1);
        s.total_nanos = s.total_nanos.saturating_add(nanos);
        s.max_nanos = s.max_nanos.max(nanos);
    }
}

/// Monotonic wall-clock stopwatch for span timings.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A `Write` adapter that counts bytes flowing through it.
///
/// Wrap a sink before handing it to a serializer to learn the exact
/// output size (checkpoint bytes, profile bytes) without buffering.
#[derive(Debug)]
pub struct CountingWrite<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> CountingWrite<W> {
    /// Wraps `inner` with a zeroed byte counter.
    pub fn new(inner: W) -> Self {
        CountingWrite { inner, bytes: 0 }
    }

    /// Bytes successfully written so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CountingWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Schema version stamped into every [`RunReport`] JSON document.
///
/// Bump on any key rename/removal; additions are backward-compatible
/// and do not bump it.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Per-shard pipeline totals surfaced in a report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardCount {
    /// Shard index.
    pub shard: u64,
    /// Tuples routed to this shard.
    pub tuples: u64,
    /// Batches flushed to this shard's queue.
    pub batches: u64,
    /// Flushes that found the queue full and had to block.
    pub stalls: u64,
    /// Tuples diverted to the salvage fallback after this shard's
    /// worker died (zero on a healthy run).
    pub salvaged: u64,
}

/// The machine-readable product of one CLI run.
///
/// Serialized with [`RunReport::to_json`] (stable schema, stable key
/// order) and rendered with [`RunReport::render_table`] for `--stats`.
#[derive(Debug, Default, Clone)]
pub struct RunReport {
    /// The CLI subcommand (`run`, `record`).
    pub command: String,
    /// Workload name, when the events came from a generator.
    pub workload: Option<String>,
    /// Profiler name, for `run`.
    pub profiler: Option<String>,
    /// Translation shards (1 = inline single-threaded pipeline).
    pub shards: u64,
    /// Wall-clock nanoseconds for the whole command.
    pub wall_nanos: u64,
    /// Probe events fed through the pipeline by this command.
    pub events: u64,
    /// Monotonic counters, in name order.
    pub counters: BTreeMap<String, u64>,
    /// Derived ratios (hit rates, compression factors), in name order.
    pub ratios: BTreeMap<String, f64>,
    /// Timed spans, in name order.
    pub spans: BTreeMap<String, SpanStats>,
    /// Per-shard pipeline totals (empty for inline runs).
    pub shard_counts: Vec<ShardCount>,
}

impl RunReport {
    /// A report for `command` with everything else empty.
    #[must_use]
    pub fn new(command: &str) -> Self {
        RunReport {
            command: command.to_owned(),
            ..RunReport::default()
        }
    }

    /// Moves everything a [`StatsRecorder`] aggregated into the report.
    ///
    /// Histograms fold into counters as `<name>.count` / `<name>.min` /
    /// `<name>.max` / `<name>.sum`: the report schema stays flat and
    /// the exact aggregates survive.
    pub fn absorb(&mut self, rec: &StatsRecorder) {
        for (name, value) in rec.counters() {
            let slot = self.counters.entry((*name).to_owned()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, hist) in rec.histograms() {
            self.counters.insert(format!("{name}.count"), hist.count());
            self.counters.insert(format!("{name}.min"), hist.min());
            self.counters.insert(format!("{name}.max"), hist.max());
            self.counters.insert(format!("{name}.sum"), hist.sum());
        }
        for (name, span) in rec.spans() {
            let s = self.spans.entry((*name).to_owned()).or_default();
            s.count = s.count.saturating_add(span.count);
            s.total_nanos = s.total_nanos.saturating_add(span.total_nanos);
            s.max_nanos = s.max_nanos.max(span.max_nanos);
        }
    }

    /// Serializes the report as stable-schema JSON.
    ///
    /// Key order is fixed (struct fields in declaration order, map
    /// entries in name order), so two runs over identical inputs
    /// produce byte-identical documents modulo timings.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {REPORT_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"command\": {},", json_string(&self.command));
        let _ = writeln!(
            out,
            "  \"workload\": {},",
            json_opt(self.workload.as_deref())
        );
        let _ = writeln!(
            out,
            "  \"profiler\": {},",
            json_opt(self.profiler.as_deref())
        );
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"wall_nanos\": {},", self.wall_nanos);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {value}", json_string(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"ratios\": {");
        for (i, (name, value)) in self.ratios.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_string(name), json_f64(*value));
        }
        out.push_str(if self.ratios.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {}: {{\"count\": {}, \"total_nanos\": {}, \"max_nanos\": {}}}",
                json_string(name),
                s.count,
                s.total_nanos,
                s.max_nanos
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"shard_counts\": [");
        for (i, s) in self.shard_counts.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"shard\": {}, \"tuples\": {}, \"batches\": {}, \"stalls\": {}, \
                 \"salvaged\": {}}}",
                s.shard, s.tuples, s.batches, s.stalls, s.salvaged
            );
        }
        out.push_str(if self.shard_counts.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Renders the report as the aligned human table `--stats` prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "run report: {}", self.command);
        if let Some(w) = &self.workload {
            let _ = writeln!(out, "  workload          {w}");
        }
        if let Some(p) = &self.profiler {
            let _ = writeln!(out, "  profiler          {p}");
        }
        let _ = writeln!(out, "  shards            {}", self.shards);
        let _ = writeln!(out, "  events            {}", self.events);
        let _ = writeln!(out, "  wall time         {}", fmt_nanos(self.wall_nanos));
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            let width = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.ratios.is_empty() {
            let _ = writeln!(out, "ratios:");
            let width = self.ratios.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in &self.ratios {
                let _ = writeln!(out, "  {name:<width$}  {value:.4}");
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            let width = self.spans.keys().map(String::len).max().unwrap_or(0);
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {} x, total {}, max {}",
                    s.count,
                    fmt_nanos(s.total_nanos),
                    fmt_nanos(s.max_nanos)
                );
            }
        }
        if !self.shard_counts.is_empty() {
            let _ = writeln!(out, "shards:");
            for s in &self.shard_counts {
                let _ = writeln!(
                    out,
                    "  shard {:<3} tuples {:<12} batches {:<8} stalls {}{}",
                    s.shard,
                    s.tuples,
                    s.batches,
                    s.stalls,
                    if s.salvaged > 0 {
                        format!("  salvaged {}", s.salvaged)
                    } else {
                        String::new()
                    }
                );
            }
        }
        out
    }
}

/// Human-friendly duration: picks ns/µs/ms/s by magnitude.
fn fmt_nanos(nanos: u64) -> String {
    if nanos < 10_000 {
        format!("{nanos}ns")
    } else if nanos < 10_000_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// JSON string literal with escaping.
///
/// Beyond the RFC 8259 requirements (quote, backslash, C0 controls),
/// defensively `\u`-escapes DEL, the C1 control block, and the
/// U+2028/U+2029 line separators: all are *legal* raw in JSON, but DEL
/// and C1 render invisibly in terminals and logs, and U+2028/29
/// terminate lines in JavaScript string literals — a report consumed by
/// a dashboard must not smuggle either. Everything else (other
/// non-ASCII included) passes through verbatim, keeping labels
/// readable.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (0x7f..=0x9f).contains(&(c as u32)) => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            '\u{2028}' => out.push_str("\\u2028"),
            '\u{2029}' => out.push_str("\\u2029"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(s: Option<&str>) -> String {
    s.map_or_else(|| "null".to_owned(), json_string)
}

/// Finite-only JSON number; NaN/inf degrade to 0 (JSON has no spelling
/// for them and a report must stay parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_owned()
    }
}

/// Re-streams `container`, replacing any existing `MREP` chunk and
/// appending `json` as the new one (kept just before the terminator).
///
/// Every other chunk is copied verbatim, so the profile payload stays
/// byte-identical; only the report rides along.
///
/// # Errors
///
/// Propagates container read errors from the input and (vanishingly,
/// for `Vec` output) write errors.
pub fn embed_report(container: &[u8], json: &str) -> Result<Vec<u8>, FormatError> {
    let mut reader = ContainerReader::new(container)?;
    let mut writer = ContainerWriter::new(Vec::with_capacity(container.len() + json.len() + 64))?;
    while let Some(chunk) = reader.next_chunk()? {
        if chunk.tag == ChunkTag::METRICS {
            continue;
        }
        writer.chunk(chunk.tag, &chunk.payload)?;
    }
    writer.chunk(ChunkTag::METRICS, json.as_bytes())?;
    Ok(writer.finish()?)
}

/// Finds the embedded `MREP` report in a container, if any.
///
/// # Errors
///
/// Container read errors, or [`FormatError::Malformed`] when the
/// `MREP` payload is not UTF-8.
pub fn extract_report(container: impl Read) -> Result<Option<String>, FormatError> {
    let mut reader = ContainerReader::new(container)?;
    while let Some(chunk) = reader.next_chunk()? {
        if chunk.tag == ChunkTag::METRICS {
            let text = String::from_utf8(chunk.payload)
                .map_err(|_| FormatError::Malformed("MREP payload is not UTF-8"))?;
            return Ok(Some(text));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_format::{write_single_chunk, ProfileKind};

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2..4
        assert_eq!(h.buckets()[3], 2); // 4..8
        assert_eq!(h.buckets()[4], 1); // 8..16
        assert_eq!(h.buckets()[11], 1); // 1024..2048
    }

    #[test]
    fn empty_histogram_has_no_percentiles_and_zero_extremes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), None, "p{p} of nothing must be None");
        }
    }

    #[test]
    fn percentiles_track_the_observed_range() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((32..=64).contains(&p50), "bucket upper bound, got {p50}");
        assert_eq!(h.percentile(100.0), Some(100), "clamped to max");
        assert_eq!(h.percentile(0.0), Some(1), "clamped to min");
        // Out-of-range p is clamped, not panicked on.
        assert_eq!(h.percentile(250.0), Some(100));
        assert_eq!(h.percentile(-3.0), Some(1));

        let mut ones = Histogram::default();
        ones.record(7);
        assert_eq!(ones.percentile(50.0), Some(7));
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(3);
        assert_eq!(h.sum(), u64::MAX, "no wraparound");
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 3);
        assert_eq!(h.percentile(99.0), Some(u64::MAX));
    }

    #[test]
    fn span_and_absorb_counts_saturate() {
        let mut rec = StatsRecorder::new();
        rec.span("s", u64::MAX);
        rec.span("s", u64::MAX);
        let s = rec.spans()["s"];
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, u64::MAX, "no wraparound");

        // Absorbing reports whose span counts are already at the
        // ceiling must saturate, not wrap to small numbers.
        let mut report = RunReport::new("run");
        report.spans.insert(
            "s".to_owned(),
            SpanStats {
                count: u64::MAX,
                total_nanos: u64::MAX,
                max_nanos: 1,
            },
        );
        report.absorb(&rec);
        let merged = report.spans["s"];
        assert_eq!(merged.count, u64::MAX);
        assert_eq!(merged.total_nanos, u64::MAX);
        assert_eq!(merged.max_nanos, u64::MAX);
    }

    #[test]
    fn stats_recorder_aggregates_deterministically() {
        let mut rec = StatsRecorder::new();
        rec.counter("b.second", 2);
        rec.counter("a.first", 1);
        rec.counter("a.first", 3);
        rec.observe("sizes", 16);
        rec.span("phase", 100);
        rec.span("phase", 50);
        assert_eq!(rec.counter_value("a.first"), 4);
        assert_eq!(rec.counter_value("missing"), 0);
        let names: Vec<_> = rec.counters().keys().copied().collect();
        assert_eq!(names, ["a.first", "b.second"]);
        let phase = rec.spans()["phase"];
        assert_eq!(phase.count, 2);
        assert_eq!(phase.total_nanos, 150);
        assert_eq!(phase.max_nanos, 100);
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut rec = NoopRecorder;
        rec.counter("x", 1);
        rec.observe("x", 1);
        rec.span("x", 1);
    }

    #[test]
    fn counting_write_counts() {
        let mut w = CountingWrite::new(Vec::new());
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        assert_eq!(w.bytes(), 11);
        assert_eq!(w.into_inner(), b"hello world");
    }

    #[test]
    fn report_json_is_stable_and_escaped() {
        let mut report = RunReport::new("run");
        report.workload = Some("micro.matrix".to_owned());
        report.profiler = Some("whomp".to_owned());
        report.shards = 1;
        report.events = 42;
        let mut rec = StatsRecorder::new();
        rec.counter("omc.memo_hits", 10);
        rec.observe("leap.streams_per_group", 3);
        rec.span("session.checkpoint", 1000);
        report.absorb(&rec);
        report.ratios.insert("omc.memo_hit_rate".to_owned(), 0.5);
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "serialization is deterministic");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"workload\": \"micro.matrix\""));
        assert!(json.contains("\"omc.memo_hits\": 10"));
        assert!(json.contains("\"leap.streams_per_group.count\": 1"));
        assert!(json.contains("\"omc.memo_hit_rate\": 0.500000"));
        assert!(json.contains("\"session.checkpoint\": {\"count\": 1"));
        // Escaping: a hostile command string stays a valid JSON literal.
        let mut evil = RunReport::new("run \"quoted\"\n");
        evil.workload = None;
        let json = evil.to_json();
        assert!(json.contains("\"command\": \"run \\\"quoted\\\"\\n\""));
        assert!(json.contains("\"workload\": null"));
    }

    #[test]
    fn hostile_strings_escape_to_safe_json_literals() {
        let cases: &[(&str, &str)] = &[
            ("del\u{7f}", "\"del\\u007f\""),
            ("c1\u{85}next", "\"c1\\u0085next\""),
            ("ls\u{2028}ps\u{2029}", "\"ls\\u2028ps\\u2029\""),
            ("bell\u{07}", "\"bell\\u0007\""),
            ("nul\u{0}", "\"nul\\u0000\""),
            ("path\\to\\\"x\"", "\"path\\\\to\\\\\\\"x\\\"\""),
            // Ordinary non-ASCII stays readable, not escaped.
            ("grüße-日本", "\"grüße-日本\""),
        ];
        for (raw, expected) in cases {
            assert_eq!(&json_string(raw), expected);
        }
        // A report carrying every hostile shape is line-clean: no raw
        // control characters survive into the document.
        let mut report = RunReport::new("run \u{7f}\u{85}\u{2028}\u{0}");
        report.workload = Some("w\u{9f}\u{2029}\"\\".to_owned());
        let json = report.to_json();
        assert!(json
            .chars()
            .all(|c| c == '\n' || (!c.is_control() && c != '\u{2028}' && c != '\u{2029}')));
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn report_table_mentions_every_section() {
        let mut report = RunReport::new("run");
        report.profiler = Some("leap".to_owned());
        report.counters.insert("cdc.accesses".to_owned(), 7);
        report.ratios.insert("omc.memo_hit_rate".to_owned(), 0.25);
        report.spans.insert(
            "session.checkpoint".to_owned(),
            SpanStats {
                count: 1,
                total_nanos: 5_000,
                max_nanos: 5_000,
            },
        );
        report.shard_counts.push(ShardCount {
            shard: 0,
            tuples: 9,
            batches: 2,
            stalls: 0,
            salvaged: 0,
        });
        let table = report.render_table();
        for needle in [
            "profiler",
            "cdc.accesses",
            "omc.memo_hit_rate",
            "session.checkpoint",
            "shard 0",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn embed_and_extract_roundtrip() {
        let mut profile = Vec::new();
        write_single_chunk(&mut profile, ProfileKind::Leap, b"leap payload").unwrap();
        assert_eq!(extract_report(profile.as_slice()).unwrap(), None);

        let report = RunReport::new("run").to_json();
        let embedded = embed_report(&profile, &report).unwrap();
        assert_eq!(
            extract_report(embedded.as_slice()).unwrap().as_deref(),
            Some(report.as_str())
        );
        // Re-embedding replaces rather than duplicates.
        let twice = embed_report(&embedded, "{}").unwrap();
        assert_eq!(
            extract_report(twice.as_slice()).unwrap().as_deref(),
            Some("{}")
        );
        // The profile payload is untouched: single-chunk readers
        // tolerate (and skip) the trailing MREP chunk.
        assert_eq!(
            orp_format::read_single_chunk(twice.as_slice(), ProfileKind::Leap).unwrap(),
            b"leap payload"
        );
    }
}
