//! Linear memory access descriptors (LMADs).
//!
//! The LEAP profiler of the CGO 2004 paper compresses each vertically
//! decomposed `(object, offset, time)` sub-stream with a bounded set of
//! **linear memory access descriptors** — the `[start, stride, count]`
//! triples of Paek and Hoeflinger's array-access analysis, generalized
//! to vector-valued `start`/`stride` for multi-dimensional streams.
//!
//! This crate provides the three pieces LEAP needs:
//!
//! * [`Lmad`] — the descriptor itself (`start + stride * k` for
//!   `k = 0..count`),
//! * [`LinearCompressor`] — the incremental, budget-bounded compressor:
//!   points that extend the current descriptor are absorbed; points that
//!   don't start a new descriptor; once the budget (the paper uses 30
//!   per `(instruction, group)` pair) is exhausted the remaining stream
//!   is *discarded* except for an [`OverflowSummary`] (min/max/
//!   granularity), which is what makes LEAP lossy and defines its
//!   *sample quality*,
//! * [`solver`] — exact integer ("omega-test-like") intersection of two
//!   descriptors: which elements coincide in chosen dimensions, and
//!   which elements of one descriptor are preceded in time by elements
//!   of the other. This powers the memory-dependence-frequency
//!   post-processor.
//!
//! # Examples
//!
//! The paper's own example: the offset stream
//! `2, 5, 8, 11, 14, 15, 16, 17, 18` becomes two descriptors
//! `[2, 3, 5]` and `[15, 1, 4]`.
//!
//! ```
//! use orp_lmad::LinearCompressor;
//!
//! let mut c = LinearCompressor::new(1, 30);
//! for x in [2i64, 5, 8, 11, 14, 15, 16, 17, 18] {
//!     c.push(&[x]);
//! }
//! let lmads = c.lmads();
//! assert_eq!(lmads.len(), 2);
//! assert_eq!((lmads[0].start[0], lmads[0].stride[0], lmads[0].count), (2, 3, 5));
//! assert_eq!((lmads[1].start[0], lmads[1].stride[0], lmads[1].count), (15, 1, 4));
//! ```

#![forbid(unsafe_code)]

mod compressor;
mod descriptor;
mod io;
mod set;
pub mod solver;

pub use compressor::{LinearCompressor, OverflowSummary};
pub use descriptor::Lmad;
pub use set::LmadSet;
