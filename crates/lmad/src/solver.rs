//! Exact integer intersection of LMAD pairs.
//!
//! The memory-dependence post-processor of the paper detects conflicts
//! between a store descriptor and a load descriptor by solving
//!
//! ```text
//! start₁ + stride₁·k₁ = start₂ + stride₂·k₂ ,  0 ≤ k₁ < count₁ ,  0 ≤ k₂ < count₂
//! ```
//!
//! per dimension — an *omega-test-like* linear-programming step. This
//! module implements that exactly over ℤ: the solution set of a system
//! of such equations in two unknowns is an affine lattice of rank 0, 1
//! or 2, represented by [`PairSet`], built one dimension at a time with
//! extended-gcd arithmetic and then clamped to the index ranges.
//!
//! On top of the raw solver sit the two queries LEAP needs:
//!
//! * [`count_conflicting_pairs`] — how many `(k₁, k₂)` pairs coincide
//!   (used for validation against brute force), and
//! * [`conflicting_k2`] — which *elements of the second descriptor*
//!   have at least one coinciding, **time-earlier** element of the
//!   first: exactly "load executions that read a location previously
//!   written by this store".

use crate::Lmad;

/// Extended gcd: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`,
/// `g ≥ 0`.
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = egcd(b, a.rem_euclid(b));
        let q = a.div_euclid(b);
        (g, y, x - q * y)
    }
}

/// Floor division for i128, correct for divisors of either sign
/// (`div_euclid` rounds toward a non-negative remainder, which is floor
/// only for positive divisors).
fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division for i128, correct for divisors of either sign.
fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// The set of `(k₁, k₂)` index pairs satisfying the equations imposed so
/// far.
///
/// Invariants: in `Line`, `(k1, k2) = (p + u·t, q + v·t)` for integer
/// `t`, with `(u, v) ≠ (0, 0)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairSet {
    /// No solutions.
    Empty,
    /// Every pair (no constraining equation yet, or all equations were
    /// `0 = 0`).
    All,
    /// Exactly one solution.
    Point {
        /// The `k₁` coordinate.
        k1: i128,
        /// The `k₂` coordinate.
        k2: i128,
    },
    /// A one-parameter family `(p + u·t, q + v·t)`, `t ∈ ℤ`.
    Line {
        /// `k₁` intercept.
        p: i128,
        /// `k₁` slope in `t`.
        u: i128,
        /// `k₂` intercept.
        q: i128,
        /// `k₂` slope in `t`.
        v: i128,
    },
}

impl PairSet {
    /// Imposes the equation `a·k₁ - b·k₂ = c` on the current set.
    #[must_use]
    fn constrain(self, a: i128, b: i128, c: i128) -> PairSet {
        match self {
            PairSet::Empty => PairSet::Empty,
            PairSet::Point { k1, k2 } => {
                if a * k1 - b * k2 == c {
                    PairSet::Point { k1, k2 }
                } else {
                    PairSet::Empty
                }
            }
            PairSet::All => {
                match (a == 0, b == 0) {
                    (true, true) => {
                        if c == 0 {
                            PairSet::All
                        } else {
                            PairSet::Empty
                        }
                    }
                    (true, false) => {
                        // -b·k₂ = c  ⇒  k₂ fixed, k₁ free.
                        if c % b == 0 {
                            PairSet::Line {
                                p: 0,
                                u: 1,
                                q: -c / b,
                                v: 0,
                            }
                        } else {
                            PairSet::Empty
                        }
                    }
                    (false, true) => {
                        // a·k₁ = c  ⇒  k₁ fixed, k₂ free.
                        if c % a == 0 {
                            PairSet::Line {
                                p: c / a,
                                u: 0,
                                q: 0,
                                v: 1,
                            }
                        } else {
                            PairSet::Empty
                        }
                    }
                    (false, false) => {
                        // General two-variable linear Diophantine equation.
                        let (g, x, y) = egcd(a, -b);
                        if c % g != 0 {
                            return PairSet::Empty;
                        }
                        let scale = c / g;
                        let (p, q) = (x * scale, y * scale);
                        // Homogeneous solutions: a·u = b·v.
                        let (u, v) = (b / g, a / g);
                        PairSet::Line { p, u, q, v }
                    }
                }
            }
            PairSet::Line { p, u, q, v } => {
                // Substitute the parameterization into the new equation:
                // (a·u - b·v)·t = c - a·p + b·q.
                let m = a * u - b * v;
                let rhs = c - a * p + b * q;
                if m == 0 {
                    if rhs == 0 {
                        PairSet::Line { p, u, q, v }
                    } else {
                        PairSet::Empty
                    }
                } else if rhs % m == 0 {
                    let t = rhs / m;
                    PairSet::Point {
                        k1: p + u * t,
                        k2: q + v * t,
                    }
                } else {
                    PairSet::Empty
                }
            }
        }
    }
}

/// A set of `k₂` indices of the second descriptor, reported by
/// [`conflicting_k2`].
///
/// Always a (possibly empty) arithmetic progression — a consequence of
/// the solution lattice being affine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct K2Set {
    /// Smallest index in the set.
    pub first: u64,
    /// Step between consecutive indices (≥ 1; irrelevant when
    /// `count ≤ 1`).
    pub step: u64,
    /// Number of indices.
    pub count: u64,
}

impl K2Set {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        K2Set {
            first: 0,
            step: 1,
            count: 0,
        }
    }

    /// Iterates over the indices.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(move |i| self.first + i * self.step)
    }
}

/// Builds the solution set for "element `k₁` of `a` and element `k₂` of
/// `b` coincide in every dimension listed in `eq_dims`".
fn location_solutions(a: &Lmad, b: &Lmad, eq_dims: &[usize]) -> PairSet {
    let mut set = PairSet::All;
    for &d in eq_dims {
        let (sa, da) = (i128::from(a.start[d]), i128::from(a.stride[d]));
        let (sb, db) = (i128::from(b.start[d]), i128::from(b.stride[d]));
        // sa + da·k₁ = sb + db·k₂  ⇔  da·k₁ - db·k₂ = sb - sa.
        set = set.constrain(da, db, sb - sa);
        if set == PairSet::Empty {
            break;
        }
    }
    set
}

/// Intersection of a `Line` parameter with the box
/// `0 ≤ p+u·t < c1  ∧  0 ≤ q+v·t < c2`; returns the inclusive `t` range,
/// or `None` when it is empty or unbounded on the constrained side.
fn line_t_range(p: i128, u: i128, q: i128, v: i128, c1: i128, c2: i128) -> Option<(i128, i128)> {
    let mut lo = i128::MIN / 4;
    let mut hi = i128::MAX / 4;
    for (intercept, slope, count) in [(p, u, c1), (q, v, c2)] {
        // 0 ≤ intercept + slope·t ≤ count - 1
        if slope == 0 {
            if intercept < 0 || intercept >= count {
                return None;
            }
        } else if slope > 0 {
            lo = lo.max(div_ceil(-intercept, slope));
            hi = hi.min(div_floor(count - 1 - intercept, slope));
        } else {
            lo = lo.max(div_ceil(count - 1 - intercept, slope));
            hi = hi.min(div_floor(-intercept, slope));
        }
    }
    if lo > hi {
        None
    } else {
        Some((lo, hi))
    }
}

/// Counts the index pairs `(k₁, k₂)` for which element `k₁` of `a`
/// equals element `k₂` of `b` in every dimension of `eq_dims`.
///
/// Exact for every descriptor pair; used to validate the lattice algebra
/// against brute-force enumeration, and as a building block for
/// dependence-pair statistics.
#[must_use]
pub fn count_conflicting_pairs(a: &Lmad, b: &Lmad, eq_dims: &[usize]) -> u128 {
    let (c1, c2) = (i128::from(a.count), i128::from(b.count));
    match location_solutions(a, b, eq_dims) {
        PairSet::Empty => 0,
        PairSet::All => (c1 as u128) * (c2 as u128),
        PairSet::Point { k1, k2 } => u128::from(k1 >= 0 && k1 < c1 && k2 >= 0 && k2 < c2),
        PairSet::Line { p, u, q, v } => match line_t_range(p, u, q, v, c1, c2) {
            None => 0,
            Some((lo, hi)) => (hi - lo + 1) as u128,
        },
    }
}

/// The elements of `b` that coincide (in `eq_dims`) with at least one
/// element of `a` whose time is strictly earlier.
///
/// `time_dim` names the dimension holding timestamps; both descriptors
/// must have a non-negative time stride (streams are recorded in
/// program order, so timestamps never decrease along a descriptor).
///
/// For the dependence-frequency application, `a` is a store descriptor,
/// `b` a load descriptor, and the result is the set of load executions
/// that observe a previously stored location (read-after-write).
///
/// # Panics
///
/// Panics if either descriptor has a negative time stride.
#[must_use]
pub fn conflicting_k2(a: &Lmad, b: &Lmad, eq_dims: &[usize], time_dim: usize) -> K2Set {
    assert!(
        a.stride[time_dim] >= 0 && b.stride[time_dim] >= 0,
        "time must be non-decreasing along a descriptor"
    );
    let (c1, c2) = (i128::from(a.count), i128::from(b.count));
    let (ta0, dta) = (
        i128::from(a.start[time_dim]),
        i128::from(a.stride[time_dim]),
    );
    let (tb0, dtb) = (
        i128::from(b.start[time_dim]),
        i128::from(b.stride[time_dim]),
    );

    match location_solutions(a, b, eq_dims) {
        PairSet::Empty => K2Set::empty(),
        PairSet::Point { k1, k2 } => {
            if k1 >= 0 && k1 < c1 && k2 >= 0 && k2 < c2 && ta0 + dta * k1 < tb0 + dtb * k2 {
                K2Set {
                    first: k2 as u64,
                    step: 1,
                    count: 1,
                }
            } else {
                K2Set::empty()
            }
        }
        PairSet::All => {
            // Location always coincides. k₂ conflicts iff the earliest
            // element of `a` (k₁ = 0, time ta0) precedes it:
            // ta0 < tb0 + dtb·k₂.
            let lo = if dtb == 0 {
                if ta0 < tb0 {
                    0
                } else {
                    return K2Set::empty();
                }
            } else {
                div_floor(ta0 - tb0, dtb) + 1
            };
            let lo = lo.max(0);
            if lo >= c2 {
                K2Set::empty()
            } else {
                K2Set {
                    first: lo as u64,
                    step: 1,
                    count: (c2 - lo) as u64,
                }
            }
        }
        PairSet::Line { p, u, q, v } => {
            let Some((mut lo, mut hi)) = line_t_range(p, u, q, v, c1, c2) else {
                return K2Set::empty();
            };
            // Time order along the line: ta0 + dta·(p + u·t) < tb0 + dtb·(q + v·t)
            //  ⇔ (dta·u - dtb·v)·t < tb0 + dtb·q - ta0 - dta·p.
            let m = dta * u - dtb * v;
            let rhs = tb0 + dtb * q - ta0 - dta * p;
            if m == 0 {
                if rhs <= 0 {
                    return K2Set::empty();
                }
            } else if m > 0 {
                // t < rhs / m  ⇔  t ≤ ceil(rhs/m) - 1.
                hi = hi.min(div_ceil(rhs, m) - 1);
            } else {
                // t > rhs / m  ⇔  t ≥ floor(rhs/m) + 1.
                lo = lo.max(div_floor(rhs, m) + 1);
            }
            if lo > hi {
                return K2Set::empty();
            }
            if v == 0 {
                // All t map to the same k₂.
                K2Set {
                    first: q as u64,
                    step: 1,
                    count: 1,
                }
            } else if v > 0 {
                K2Set {
                    first: (q + v * lo) as u64,
                    step: v as u64,
                    count: (hi - lo + 1) as u64,
                }
            } else {
                K2Set {
                    first: (q + v * hi) as u64,
                    step: (-v) as u64,
                    count: (hi - lo + 1) as u64,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lmad(start: &[i64], stride: &[i64], count: u64) -> Lmad {
        Lmad {
            start: start.to_vec(),
            stride: stride.to_vec(),
            count,
        }
    }

    /// Brute-force pair count for validation.
    fn brute_pairs(a: &Lmad, b: &Lmad, eq_dims: &[usize]) -> u128 {
        let mut n = 0u128;
        for k1 in 0..a.count {
            for k2 in 0..b.count {
                if eq_dims
                    .iter()
                    .all(|&d| a.value_at(d, k1) == b.value_at(d, k2))
                {
                    n += 1;
                }
            }
        }
        n
    }

    /// Brute-force conflicting-k2 set for validation.
    fn brute_k2(a: &Lmad, b: &Lmad, eq_dims: &[usize], time_dim: usize) -> Vec<u64> {
        (0..b.count)
            .filter(|&k2| {
                (0..a.count).any(|k1| {
                    eq_dims
                        .iter()
                        .all(|&d| a.value_at(d, k1) == b.value_at(d, k2))
                        && a.value_at(time_dim, k1) < b.value_at(time_dim, k2)
                })
            })
            .collect()
    }

    #[test]
    fn egcd_identity() {
        for (a, b) in [(12, 18), (-12, 18), (7, 0), (0, 5), (-9, -6), (1, 1)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(a * x + b * y, g, "egcd({a},{b})");
            assert!(g >= 0);
            assert_eq!(g, {
                let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
                while b != 0 {
                    (a, b) = (b, a % b);
                }
                a as i128
            });
        }
    }

    #[test]
    fn disjoint_strided_ranges_do_not_conflict() {
        // a covers 0,8,16..72; b covers 100,108...
        let a = lmad(&[0], &[8], 10);
        let b = lmad(&[100], &[8], 10);
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 0);
    }

    #[test]
    fn identical_ranges_conflict_elementwise() {
        let a = lmad(&[0], &[8], 10);
        let b = lmad(&[0], &[8], 10);
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 10);
    }

    #[test]
    fn coprime_strides_meet_at_multiples_of_lcm() {
        // 3k₁ = 5k₂ meets at 0, 15, 30, 45 within range.
        let a = lmad(&[0], &[3], 20); // 0..57
        let b = lmad(&[0], &[5], 12); // 0..55
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 4);
        assert_eq!(brute_pairs(&a, &b, &[0]), 4);
    }

    #[test]
    fn point_solution_single_dim() {
        // a constant at 40; b hits 40 once.
        let a = lmad(&[40], &[0], 7);
        let b = lmad(&[0], &[8], 10);
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 7);
        assert_eq!(brute_pairs(&a, &b, &[0]), 7);
    }

    #[test]
    fn all_case_both_constant() {
        let a = lmad(&[40], &[0], 7);
        let b = lmad(&[40], &[0], 5);
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 35);
        let b2 = lmad(&[48], &[0], 5);
        assert_eq!(count_conflicting_pairs(&a, &b2, &[0]), 0);
    }

    #[test]
    fn two_dims_constrain_jointly() {
        // dim0: object index; dim1: offset. a walks objects 0..10 at
        // offset 8; b walks objects 0..10 at offset 8 too.
        let a = lmad(&[0, 8], &[1, 0], 10);
        let b = lmad(&[5, 8], &[1, 0], 10);
        // Objects 5..9 coincide.
        assert_eq!(count_conflicting_pairs(&a, &b, &[0, 1]), 5);
        assert_eq!(brute_pairs(&a, &b, &[0, 1]), 5);
        // Different offsets: no conflicts.
        let b2 = lmad(&[5, 16], &[1, 0], 10);
        assert_eq!(count_conflicting_pairs(&a, &b2, &[0, 1]), 0);
    }

    #[test]
    fn negative_strides() {
        // a descends 72..0, b ascends 0..72.
        let a = lmad(&[72], &[-8], 10);
        let b = lmad(&[0], &[8], 10);
        assert_eq!(
            count_conflicting_pairs(&a, &b, &[0]),
            brute_pairs(&a, &b, &[0])
        );
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 10);
    }

    #[test]
    fn exhaustive_small_lattices_match_brute_force() {
        // Systematic sweep over small 1-D descriptor pairs.
        let params = [-3i64, -1, 0, 1, 2, 5];
        for &sa in &[-4i64, 0, 3] {
            for &da in &params {
                for &sb in &[-4i64, 0, 3] {
                    for &db in &params {
                        let a = lmad(&[sa], &[da], 6);
                        let b = lmad(&[sb], &[db], 7);
                        assert_eq!(
                            count_conflicting_pairs(&a, &b, &[0]),
                            brute_pairs(&a, &b, &[0]),
                            "a=({sa},{da}) b=({sb},{db})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k2_simple_raw_dependence() {
        // Store writes offsets 0,8,...,72 at times 0,2,...,18.
        // Load reads offsets 0,8,...,72 at times 1,3,...,19: every load
        // follows its matching store.
        let st = lmad(&[0, 0], &[8, 2], 10); // (offset, time)
        let ld = lmad(&[0, 1], &[8, 2], 10);
        let set = conflicting_k2(&st, &ld, &[0], 1);
        assert_eq!(set.iter().collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn k2_load_before_store_does_not_conflict() {
        // Loads all happen before any store.
        let st = lmad(&[0, 100], &[8, 1], 10);
        let ld = lmad(&[0, 0], &[8, 1], 10);
        assert_eq!(conflicting_k2(&st, &ld, &[0], 1), K2Set::empty());
    }

    #[test]
    fn k2_constant_location_tail_conflicts() {
        // Store hits location 40 once at t=10; load reads location 40 at
        // t = 0..19: loads after t=10 conflict.
        let st = lmad(&[40, 10], &[0, 0], 1);
        let ld = lmad(&[40, 0], &[0, 1], 20);
        let set = conflicting_k2(&st, &ld, &[0], 1);
        assert_eq!(set.iter().collect::<Vec<_>>(), (11..20).collect::<Vec<_>>());
    }

    #[test]
    fn k2_matches_brute_force_on_sweep() {
        let strides = [-2i64, 0, 1, 3];
        let mut checked = 0u32;
        for &da in &strides {
            for &db in &strides {
                for &sa in &[0i64, 4] {
                    for &sb in &[0i64, 4] {
                        for &toff in &[-5i64, 0, 5] {
                            let a = lmad(&[sa, 0], &[da, 3], 8);
                            let b = lmad(&[sb, toff], &[db, 2], 9);
                            let got: Vec<u64> = conflicting_k2(&a, &b, &[0], 1).iter().collect();
                            let want = brute_k2(&a, &b, &[0], 1);
                            assert_eq!(got, want, "a=({sa},{da}) b=({sb},{db}) toff={toff}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(checked, 192);
    }

    #[test]
    fn k2_is_sorted_progression() {
        let a = lmad(&[0, 0], &[4, 1], 50);
        let b = lmad(&[0, 25], &[8, 1], 25);
        let set = conflicting_k2(&a, &b, &[0], 1);
        let ks: Vec<u64> = set.iter().collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ks, sorted, "progression must be sorted and duplicate-free");
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn negative_time_stride_panics() {
        let a = lmad(&[0, 10], &[0, -1], 5);
        let b = lmad(&[0, 0], &[0, 1], 5);
        let _ = conflicting_k2(&a, &b, &[0], 1);
    }

    #[test]
    fn huge_counts_do_not_overflow() {
        let a = lmad(&[0, 0], &[8, 1], 1 << 40);
        let b = lmad(&[4, 0], &[8, 1], 1 << 40);
        // Offsets interleave (0,8,16.. vs 4,12,20..): never equal.
        assert_eq!(count_conflicting_pairs(&a, &b, &[0]), 0);
        let c = lmad(&[0, 0], &[8, 1], 1 << 40);
        assert_eq!(count_conflicting_pairs(&a, &c, &[0]), 1 << 40);
    }
}
