//! Self-describing sets of LMAD descriptors.
//!
//! Descriptor payloads are fixed-width and do not carry their own
//! dimension count (the byte-size cost model `16 · dims + 8` depends
//! on that), so a bare stream of [`Lmad`]s can only be decoded by a
//! reader that learned `dims` out of band. [`LmadSet`] fixes that at
//! the file level: the set's header records the dimensionality once,
//! and [`LmadSet::read_from`] needs nothing but the reader.

use std::io::{self, Read, Write};

use orp_format::{
    read_single_chunk, read_varint, write_single_chunk, write_varint, FormatError, ProfileKind,
};

use crate::Lmad;

/// A homogeneous collection of [`Lmad`] descriptors with the
/// dimensionality recorded in the descriptor header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmadSet {
    dims: usize,
    lmads: Vec<Lmad>,
}

impl LmadSet {
    /// Creates an empty set of `dims`-dimensional descriptors.
    ///
    /// # Panics
    ///
    /// Panics when `dims` is zero.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "descriptors need at least one dimension");
        LmadSet {
            dims,
            lmads: Vec::new(),
        }
    }

    /// Builds a set from existing descriptors.
    ///
    /// # Panics
    ///
    /// Panics when `dims` is zero or any descriptor's dimensionality
    /// differs from `dims`.
    #[must_use]
    pub fn from_lmads(dims: usize, lmads: Vec<Lmad>) -> Self {
        let mut set = LmadSet::new(dims);
        for lmad in lmads {
            set.push(lmad);
        }
        set
    }

    /// Appends a descriptor.
    ///
    /// # Panics
    ///
    /// Panics when the descriptor's dimensionality differs from the
    /// set's.
    pub fn push(&mut self, lmad: Lmad) {
        assert_eq!(
            lmad.dims(),
            self.dims,
            "descriptor dimensionality differs from the set's"
        );
        self.lmads.push(lmad);
    }

    /// The dimensionality shared by every descriptor.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lmads.len()
    }

    /// True when the set holds no descriptors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lmads.is_empty()
    }

    /// The descriptors, in insertion order.
    #[must_use]
    pub fn lmads(&self) -> &[Lmad] {
        &self.lmads
    }

    /// Serializes the set payload: `varint(dims)`, `varint(count)`,
    /// then each descriptor in the fixed-width encoding.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.dims as u64)?;
        write_varint(w, self.lmads.len() as u64)?;
        for lmad in &self.lmads {
            lmad.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a payload written by [`LmadSet::write_payload`].
    /// The dimension count comes from the header — nothing is needed
    /// out of band.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects zero dims.
    pub fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let dims = usize::try_from(read_varint(r)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "dims exceeds usize"))?;
        if dims == 0 || dims > 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "descriptor dims out of range",
            ));
        }
        let count = read_varint(r)?;
        let mut lmads = Vec::with_capacity(usize::try_from(count).unwrap_or(0).min(1 << 16));
        for _ in 0..count {
            lmads.push(Lmad::read_from(r, dims)?);
        }
        Ok(LmadSet { dims, lmads })
    }

    /// Writes the set as a standalone `.orp` container.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::LmadSet, &payload)
    }

    /// Reads a container written by [`LmadSet::write_to`]. The file is
    /// self-describing: no `dims` argument.
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage; payload errors from
    /// [`LmadSet::read_payload`].
    pub fn read_from(r: impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::LmadSet)?;
        let mut cursor = payload.as_slice();
        let set = LmadSet::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes after LMAD set"));
        }
        Ok(set)
    }
}

impl<'a> IntoIterator for &'a LmadSet {
    type Item = &'a Lmad;
    type IntoIter = std::slice::Iter<'a, Lmad>;

    fn into_iter(self) -> Self::IntoIter {
        self.lmads.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> LmadSet {
        LmadSet::from_lmads(
            2,
            vec![
                Lmad {
                    start: vec![2, 0],
                    stride: vec![3, 8],
                    count: 5,
                },
                Lmad {
                    start: vec![15, -4],
                    stride: vec![1, 1],
                    count: 4,
                },
            ],
        )
    }

    #[test]
    fn container_roundtrip_is_self_describing() {
        let set = sample_set();
        let mut buf = Vec::new();
        set.write_to(&mut buf).unwrap();
        let back = LmadSet::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.dims(), 2);
    }

    #[test]
    fn empty_set_roundtrips() {
        let set = LmadSet::new(3);
        let mut buf = Vec::new();
        set.write_to(&mut buf).unwrap();
        assert_eq!(LmadSet::read_from(buf.as_slice()).unwrap(), set);
    }

    #[test]
    fn zero_dims_payload_is_rejected() {
        let mut payload = Vec::new();
        write_varint(&mut payload, 0).unwrap();
        write_varint(&mut payload, 0).unwrap();
        assert!(LmadSet::read_payload(&mut payload.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality differs")]
    fn mismatched_dims_panic_on_push() {
        let mut set = LmadSet::new(2);
        set.push(Lmad {
            start: vec![0],
            stride: vec![1],
            count: 1,
        });
    }
}
