//! The incremental, budget-bounded linear compressor.

use crate::Lmad;

/// What the compressor keeps about the part of the stream it could *not*
/// describe with descriptors: per-dimension min, max and granularity
/// (the gcd of all deltas from the minimum), plus a discard count.
///
/// This is the paper's "record some overall information such as max,
/// min, and granularity" fallback once the LMAD budget is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverflowSummary {
    /// Number of points discarded after the budget was exhausted.
    pub discarded: u64,
    /// Per-dimension minimum over discarded points.
    pub min: Vec<i64>,
    /// Per-dimension maximum over discarded points.
    pub max: Vec<i64>,
    /// Per-dimension gcd of deltas from the minimum (0 when all
    /// discarded points share a value in that dimension).
    pub granularity: Vec<u64>,
}

impl OverflowSummary {
    fn new(point: &[i64]) -> Self {
        OverflowSummary {
            discarded: 1,
            min: point.to_vec(),
            max: point.to_vec(),
            granularity: vec![0; point.len()],
        }
    }

    fn absorb(&mut self, point: &[i64]) {
        self.discarded += 1;
        for (d, &p) in point.iter().enumerate() {
            if p < self.min[d] {
                // Re-anchor the granularity on the new minimum.
                let shift = (self.min[d] - p).unsigned_abs();
                self.granularity[d] = gcd(self.granularity[d], shift);
                self.min[d] = p;
            }
            self.max[d] = self.max[d].max(p);
            let delta = (p - self.min[d]).unsigned_abs();
            self.granularity[d] = gcd(self.granularity[d], delta);
        }
    }

    /// Serialized size in bytes (min, max, granularity per dimension plus
    /// the discard count).
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        (self.min.len() as u64) * 24 + 8
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// An incremental linear compressor over an `n`-dimensional point
/// stream, bounded to a fixed number of descriptors.
///
/// Push points in stream order; each either extends the *current* (most
/// recent) descriptor or opens a new one. When opening a descriptor
/// would exceed the budget, the point — and everything after it — is
/// discarded into the [`OverflowSummary`], making the profile lossy.
///
/// The fraction of points captured ([`LinearCompressor::captured`] over
/// [`LinearCompressor::seen`]) is the per-stream ingredient of the
/// paper's *sample quality* metric (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCompressor {
    dims: usize,
    budget: usize,
    lmads: Vec<Lmad>,
    overflow: Option<OverflowSummary>,
    seen: u64,
}

impl LinearCompressor {
    /// Creates a compressor for `dims`-dimensional points holding at
    /// most `budget` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `dims` or `budget` is zero.
    #[must_use]
    pub fn new(dims: usize, budget: usize) -> Self {
        assert!(dims > 0, "need at least one dimension");
        assert!(budget > 0, "need a budget of at least one descriptor");
        LinearCompressor {
            dims,
            budget,
            lmads: Vec::new(),
            overflow: None,
            seen: 0,
        }
    }

    /// Number of dimensions of the point stream.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The configured descriptor budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Rebuilds a compressor from serialized parts (crate-internal; the
    /// deserializer validates consistency before calling this).
    pub(crate) fn from_parts(
        dims: usize,
        budget: usize,
        lmads: Vec<Lmad>,
        overflow: Option<OverflowSummary>,
        seen: u64,
    ) -> Self {
        LinearCompressor {
            dims,
            budget,
            lmads,
            overflow,
            seen,
        }
    }

    /// Appends the next point of the stream.
    ///
    /// The point is absorbed by the first descriptor it continues,
    /// searching from the most recent to the oldest (the paper's
    /// compressor "attempts to describe the stream using its linear
    /// descriptors"); this keeps interleaved patterns — e.g. a loop
    /// alternating between two strided sequences — within two
    /// descriptors instead of one per iteration. A descriptor whose
    /// stride is not yet committed (one point) only absorbs the point
    /// when it is the most recent, so older descriptors never swallow
    /// arbitrary points.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dims()`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.seen += 1;
        if let Some(summary) = &mut self.overflow {
            summary.absorb(point);
            return;
        }
        // Committed descriptors first, most recent first.
        for lmad in self.lmads.iter_mut().rev() {
            if lmad.count >= 2 && lmad.continues_with(point) {
                lmad.extend_with(point);
                return;
            }
        }
        // Then the most recent descriptor's stride commitment.
        if let Some(cur) = self.lmads.last_mut() {
            if cur.count == 1 {
                cur.extend_with(point);
                return;
            }
        }
        if self.lmads.len() == self.budget {
            self.overflow = Some(OverflowSummary::new(point));
        } else {
            self.lmads.push(Lmad::singleton(point));
        }
    }

    /// The descriptors collected so far, in stream order.
    #[must_use]
    pub fn lmads(&self) -> &[Lmad] {
        &self.lmads
    }

    /// The overflow summary, present once the budget was exhausted.
    #[must_use]
    pub fn overflow(&self) -> Option<&OverflowSummary> {
        self.overflow.as_ref()
    }

    /// Total points pushed.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Points captured in descriptors (not discarded).
    #[must_use]
    pub fn captured(&self) -> u64 {
        self.seen - self.overflow.as_ref().map_or(0, |s| s.discarded)
    }

    /// `true` when every pushed point is described by a descriptor.
    #[must_use]
    pub fn fully_captured(&self) -> bool {
        self.overflow.is_none()
    }

    /// Reconstructs every captured point, descriptor by descriptor.
    ///
    /// The multiset of returned points equals the multiset of captured
    /// stream points; interleaved patterns are regrouped by descriptor,
    /// so the order within the result is per-descriptor, not stream
    /// order (stream order is recoverable from a time dimension when
    /// one is present).
    #[must_use]
    pub fn reconstruct(&self) -> Vec<Vec<i64>> {
        self.lmads.iter().flat_map(Lmad::points).collect()
    }

    /// Serialized profile size in bytes for this stream's descriptors
    /// and summary.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.lmads.iter().map(Lmad::encoded_bytes).sum::<u64>()
            + self
                .overflow
                .as_ref()
                .map_or(0, OverflowSummary::encoded_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_offset_stream_example() {
        let mut c = LinearCompressor::new(1, 30);
        for x in [2i64, 5, 8, 11, 14, 15, 16, 17, 18] {
            c.push(&[x]);
        }
        assert_eq!(c.lmads().len(), 2);
        assert_eq!(
            c.lmads()[0],
            Lmad {
                start: vec![2],
                stride: vec![3],
                count: 5
            }
        );
        assert_eq!(
            c.lmads()[1],
            Lmad {
                start: vec![15],
                stride: vec![1],
                count: 4
            }
        );
        assert!(c.fully_captured());
    }

    #[test]
    fn reconstruct_is_exact_for_captured_stream() {
        let mut c = LinearCompressor::new(2, 8);
        let pts: Vec<Vec<i64>> = (0..10)
            .map(|k| vec![k, 100 - 2 * k])
            .chain((0..5).map(|k| vec![7 * k, 3]))
            .collect();
        for p in &pts {
            c.push(p);
        }
        assert_eq!(c.reconstruct(), pts);
    }

    #[test]
    fn interleaved_sequences_extend_committed_descriptors() {
        // Two strided sequences whose strides are established first
        // (two points each) and then interleave: multi-descriptor
        // extension routes every following point to its own sequence,
        // keeping the whole stream in two LMADs. (From a cold-start
        // strict alternation the greedy stride pairing cannot untangle
        // them — that would need lookahead the paper's compressor does
        // not have either.)
        let mut c = LinearCompressor::new(2, 30);
        c.push(&[0, 0]);
        c.push(&[2, 2]); // seq A stride (2, 2) committed
        c.push(&[1000, 1]);
        c.push(&[1003, 3]); // seq B stride (3, 2) committed
        for k in 2i64..100 {
            c.push(&[2 * k, 2 * k]);
            c.push(&[1000 + 3 * k, 2 * k + 1]);
        }
        assert_eq!(c.lmads().len(), 2);
        assert!(c.fully_captured());
        assert_eq!(c.lmads()[0].count, 100);
        assert_eq!(c.lmads()[1].count, 100);
    }

    #[test]
    fn budget_exhaustion_discards_and_summarizes() {
        // Alternating points never extend, so each pair costs a
        // descriptor: budget 2 fills after 2 direction changes.
        let mut c = LinearCompressor::new(1, 2);
        for x in [0i64, 100, 0, 100, 0, 100] {
            c.push(&[x]);
        }
        assert!(!c.fully_captured());
        let summary = c.overflow().expect("overflowed");
        assert!(summary.discarded > 0);
        assert_eq!(summary.min, vec![0]);
        assert_eq!(summary.max, vec![100]);
        assert_eq!(summary.granularity, vec![100]);
        assert_eq!(c.captured() + summary.discarded, c.seen());
    }

    #[test]
    fn granularity_is_gcd_of_deltas() {
        let mut c = LinearCompressor::new(1, 1);
        // First two points are captured ([0, 12] with stride 12), the
        // wild rest is summarized.
        for x in [0i64, 12, 30, 18, 42] {
            c.push(&[x]);
        }
        let summary = c.overflow().expect("overflowed");
        assert_eq!(summary.min, vec![18]);
        assert_eq!(summary.max, vec![42]);
        assert_eq!(summary.granularity, vec![12]);
    }

    #[test]
    fn granularity_reanchors_on_new_minimum() {
        let mut c = LinearCompressor::new(1, 1);
        for x in [0i64, 1, 50, 20, 8] {
            c.push(&[x]);
        }
        let summary = c.overflow().expect("overflowed");
        assert_eq!(summary.min, vec![8]);
        assert_eq!(
            summary.granularity,
            vec![6],
            "gcd(50-8, 20-8) = gcd(42, 12) = 6"
        );
    }

    #[test]
    fn single_linear_stream_is_one_descriptor() {
        let mut c = LinearCompressor::new(3, 30);
        for k in 0i64..1000 {
            c.push(&[k, 8 * k + 4, 2 * k]);
        }
        assert_eq!(c.lmads().len(), 1);
        assert_eq!(c.lmads()[0].count, 1000);
        assert_eq!(c.captured(), 1000);
    }

    #[test]
    fn encoded_bytes_counts_descriptors_and_summary() {
        let mut c = LinearCompressor::new(1, 1);
        c.push(&[0]);
        assert_eq!(c.encoded_bytes(), 24);
        c.push(&[5]);
        c.push(&[100]); // overflow
        assert_eq!(c.encoded_bytes(), 24 + 32);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_panics() {
        let mut c = LinearCompressor::new(2, 4);
        c.push(&[1]);
    }
}
