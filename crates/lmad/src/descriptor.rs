//! The LMAD descriptor type.

/// A linear memory access descriptor: the arithmetic sequence of points
/// `start + stride * k` for `k = 0, 1, …, count - 1` in an
/// `n`-dimensional integer space.
///
/// `start` and `stride` have one entry per stream dimension (the paper's
/// `n × 1` vectors); a descriptor with `count == 1` has an all-zero
/// stride by convention (its stride is fixed when a second point
/// arrives).
///
/// Fields are public: an LMAD is passive data exchanged between the
/// compressor, the solver and the post-processors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lmad {
    /// First point of the sequence, one entry per dimension.
    pub start: Vec<i64>,
    /// Per-dimension step between consecutive points.
    pub stride: Vec<i64>,
    /// Number of points described (≥ 1).
    pub count: u64,
}

impl Lmad {
    /// Creates a single-point descriptor at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` is empty.
    #[must_use]
    pub fn singleton(point: &[i64]) -> Self {
        assert!(!point.is_empty(), "an LMAD needs at least one dimension");
        Lmad {
            start: point.to_vec(),
            stride: vec![0; point.len()],
            count: 1,
        }
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.start.len()
    }

    /// The `k`-th point of the sequence.
    ///
    /// # Panics
    ///
    /// Panics if `k >= count`.
    #[must_use]
    pub fn element(&self, k: u64) -> Vec<i64> {
        assert!(
            k < self.count,
            "element {k} out of range (count {})",
            self.count
        );
        self.start
            .iter()
            .zip(&self.stride)
            .map(|(&s, &d)| s + d * i64::try_from(k).expect("count fits i64"))
            .collect()
    }

    /// The last point of the sequence.
    #[must_use]
    pub fn last(&self) -> Vec<i64> {
        self.element(self.count - 1)
    }

    /// The value of dimension `dim` at index `k` (no bounds check on `k`
    /// beyond `count`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= count` or `dim` is out of range.
    #[must_use]
    pub fn value_at(&self, dim: usize, k: u64) -> i64 {
        assert!(k < self.count);
        self.start[dim] + self.stride[dim] * i64::try_from(k).expect("count fits i64")
    }

    /// Whether `point` is the natural continuation of this sequence
    /// (what the next element would be).
    ///
    /// A `count == 1` descriptor continues with *any* point — its stride
    /// is not yet committed.
    #[must_use]
    pub fn continues_with(&self, point: &[i64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        if self.count == 1 {
            return true;
        }
        let last = self.last();
        last.iter()
            .zip(&self.stride)
            .zip(point)
            .all(|((&l, &d), &p)| l + d == p)
    }

    /// Absorbs `point` as the next element.
    ///
    /// For a `count == 1` descriptor this fixes the stride; otherwise the
    /// caller must have verified [`Lmad::continues_with`].
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `point` does not continue the sequence.
    pub fn extend_with(&mut self, point: &[i64]) {
        debug_assert!(self.continues_with(point));
        if self.count == 1 {
            self.stride = point
                .iter()
                .zip(&self.start)
                .map(|(&p, &s)| p - s)
                .collect();
        }
        self.count += 1;
    }

    /// Iterates over all points of the sequence.
    pub fn points(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        (0..self.count).map(|k| self.element(k))
    }

    /// Serialized size in bytes: 8 bytes per start and stride entry plus
    /// 8 bytes for the count.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        (self.dims() as u64) * 16 + 8
    }
}

impl std::fmt::Display for Lmad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}, {:?}, {}]", self.start, self.stride, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_has_zero_stride() {
        let l = Lmad::singleton(&[5, 7]);
        assert_eq!(l.count, 1);
        assert_eq!(l.stride, vec![0, 0]);
        assert_eq!(l.element(0), vec![5, 7]);
    }

    #[test]
    fn extend_fixes_stride_then_steps() {
        let mut l = Lmad::singleton(&[2]);
        l.extend_with(&[5]);
        assert_eq!(l.stride, vec![3]);
        assert!(l.continues_with(&[8]));
        assert!(!l.continues_with(&[9]));
        l.extend_with(&[8]);
        assert_eq!(l.count, 3);
        assert_eq!(l.last(), vec![8]);
    }

    #[test]
    fn multidimensional_elements() {
        let l = Lmad {
            start: vec![0, 100],
            stride: vec![1, -4],
            count: 4,
        };
        assert_eq!(l.element(3), vec![3, 88]);
        assert_eq!(l.points().count(), 4);
        assert_eq!(l.value_at(1, 2), 92);
    }

    #[test]
    fn count_one_continues_with_anything() {
        let l = Lmad::singleton(&[10]);
        assert!(l.continues_with(&[-3]));
    }

    #[test]
    fn encoded_bytes_scale_with_dims() {
        assert_eq!(Lmad::singleton(&[0]).encoded_bytes(), 24);
        assert_eq!(Lmad::singleton(&[0, 0, 0]).encoded_bytes(), 56);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn element_out_of_range_panics() {
        let _ = Lmad::singleton(&[0]).element(1);
    }
}
