//! Binary serialization for descriptors and compressor state.
//!
//! Fixed-width little-endian encoding, matching the crate's byte-size
//! cost model exactly: an [`Lmad`] occupies `16 · dims + 8` bytes, an
//! [`OverflowSummary`] `24 · dims + 8`.

use std::io::{self, Read, Write};

use orp_format::{
    read_i64_le as read_i64, read_u64_le as read_u64, write_i64_le as write_i64,
    write_u64_le as write_u64,
};

use crate::{LinearCompressor, Lmad, OverflowSummary};

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Lmad {
    /// Writes the descriptor (the caller is responsible for framing the
    /// dimension count).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        for &s in &self.start {
            write_i64(w, s)?;
        }
        for &d in &self.stride {
            write_i64(w, d)?;
        }
        write_u64(w, self.count)
    }

    /// Reads a descriptor of `dims` dimensions.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects a zero count.
    pub fn read_from(r: &mut impl Read, dims: usize) -> io::Result<Self> {
        let start = (0..dims)
            .map(|_| read_i64(r))
            .collect::<io::Result<Vec<_>>>()?;
        let stride = (0..dims)
            .map(|_| read_i64(r))
            .collect::<io::Result<Vec<_>>>()?;
        let count = read_u64(r)?;
        if count == 0 {
            return Err(bad_data("LMAD count must be positive"));
        }
        Ok(Lmad {
            start,
            stride,
            count,
        })
    }
}

impl OverflowSummary {
    /// Writes the summary (dimension count framed by the caller).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        for &v in &self.min {
            write_i64(w, v)?;
        }
        for &v in &self.max {
            write_i64(w, v)?;
        }
        for &v in &self.granularity {
            write_u64(w, v)?;
        }
        write_u64(w, self.discarded)
    }

    /// Reads a summary of `dims` dimensions.
    ///
    /// # Errors
    ///
    /// Propagates reader errors.
    pub fn read_from(r: &mut impl Read, dims: usize) -> io::Result<Self> {
        let min = (0..dims)
            .map(|_| read_i64(r))
            .collect::<io::Result<Vec<_>>>()?;
        let max = (0..dims)
            .map(|_| read_i64(r))
            .collect::<io::Result<Vec<_>>>()?;
        let granularity = (0..dims)
            .map(|_| read_u64(r))
            .collect::<io::Result<Vec<_>>>()?;
        let discarded = read_u64(r)?;
        Ok(OverflowSummary {
            discarded,
            min,
            max,
            granularity,
        })
    }
}

impl LinearCompressor {
    /// Writes the full compressor state (dimensions, budget, seen
    /// count, descriptors, optional overflow summary).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.dims() as u64)?;
        write_u64(w, self.budget() as u64)?;
        write_u64(w, self.seen())?;
        write_u64(w, self.lmads().len() as u64)?;
        for lmad in self.lmads() {
            lmad.write_to(w)?;
        }
        match self.overflow() {
            Some(summary) => {
                write_u64(w, 1)?;
                summary.write_to(w)
            }
            None => write_u64(w, 0),
        }
    }

    /// Reads compressor state written by [`LinearCompressor::write_to`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects inconsistent state (more
    /// descriptors than budget, capture counts that disagree with
    /// `seen`).
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let dims = usize::try_from(read_u64(r)?).map_err(|_| bad_data("dims"))?;
        let budget = usize::try_from(read_u64(r)?).map_err(|_| bad_data("budget"))?;
        if dims == 0 || budget == 0 {
            return Err(bad_data("dims and budget must be positive"));
        }
        let seen = read_u64(r)?;
        let n = usize::try_from(read_u64(r)?).map_err(|_| bad_data("lmad count"))?;
        if n > budget {
            return Err(bad_data("more descriptors than budget"));
        }
        let mut lmads = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let lmad = Lmad::read_from(r, dims)?;
            if lmad.dims() != dims {
                return Err(bad_data("descriptor dimension mismatch"));
            }
            lmads.push(lmad);
        }
        let overflow = match read_u64(r)? {
            0 => None,
            1 => Some(OverflowSummary::read_from(r, dims)?),
            _ => return Err(bad_data("overflow flag")),
        };
        let described: u64 = lmads.iter().map(|l| l.count).sum::<u64>()
            + overflow.as_ref().map_or(0, |s| s.discarded);
        if described != seen {
            return Err(bad_data("seen count disagrees with descriptors"));
        }
        Ok(Self::from_parts(dims, budget, lmads, overflow, seen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lmad_roundtrip_matches_cost_model() {
        let lmad = Lmad {
            start: vec![5, -3, 0],
            stride: vec![1, 0, 2],
            count: 42,
        };
        let mut buf = Vec::new();
        lmad.write_to(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, lmad.encoded_bytes());
        let back = Lmad::read_from(&mut buf.as_slice(), 3).unwrap();
        assert_eq!(back, lmad);
    }

    #[test]
    fn compressor_roundtrip_with_overflow() {
        let mut c = LinearCompressor::new(2, 2);
        for k in 0i64..10 {
            c.push(&[k, 2 * k]);
        }
        for k in 0i64..10 {
            c.push(&[(k * 7919) % 97, (k * 104729) % 89]);
        }
        assert!(!c.fully_captured());
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = LinearCompressor::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn compressor_roundtrip_without_overflow() {
        let mut c = LinearCompressor::new(1, 30);
        for k in 0i64..100 {
            c.push(&[3 * k]);
        }
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = LinearCompressor::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.reconstruct(), c.reconstruct());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut c = LinearCompressor::new(1, 4);
        c.push(&[1]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(LinearCompressor::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_counts_are_rejected() {
        let mut c = LinearCompressor::new(1, 4);
        c.push(&[1]);
        c.push(&[2]);
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Corrupt the `seen` field (third u64).
        buf[16] ^= 0xFF;
        assert!(LinearCompressor::read_from(&mut buf.as_slice()).is_err());
    }
}
