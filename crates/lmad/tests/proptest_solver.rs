//! Property tests: the lattice solver agrees with brute-force
//! enumeration, and the compressor's captured prefix reconstructs
//! exactly.

use orp_lmad::solver::{conflicting_k2, count_conflicting_pairs};
use orp_lmad::{LinearCompressor, Lmad};
use proptest::prelude::*;

fn arb_lmad(dims: usize, max_count: u64) -> impl Strategy<Value = Lmad> {
    (
        proptest::collection::vec(-50i64..50, dims),
        proptest::collection::vec(-8i64..8, dims),
        1..=max_count,
    )
        .prop_map(|(start, stride, count)| Lmad {
            start,
            stride,
            count,
        })
}

/// An LMAD whose last dimension is a valid (non-decreasing) time axis.
fn arb_timed_lmad(loc_dims: usize, max_count: u64) -> impl Strategy<Value = Lmad> {
    (arb_lmad(loc_dims, max_count), -100i64..100, 0i64..6).prop_map(|(mut l, t0, dt)| {
        l.start.push(t0);
        l.stride.push(dt);
        l
    })
}

fn brute_pairs(a: &Lmad, b: &Lmad, eq_dims: &[usize]) -> u128 {
    let mut n = 0u128;
    for k1 in 0..a.count {
        for k2 in 0..b.count {
            if eq_dims
                .iter()
                .all(|&d| a.value_at(d, k1) == b.value_at(d, k2))
            {
                n += 1;
            }
        }
    }
    n
}

fn brute_k2(a: &Lmad, b: &Lmad, eq_dims: &[usize], time_dim: usize) -> Vec<u64> {
    (0..b.count)
        .filter(|&k2| {
            (0..a.count).any(|k1| {
                eq_dims
                    .iter()
                    .all(|&d| a.value_at(d, k1) == b.value_at(d, k2))
                    && a.value_at(time_dim, k1) < b.value_at(time_dim, k2)
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pair_count_matches_brute_force_1d(
        a in arb_lmad(1, 40),
        b in arb_lmad(1, 40),
    ) {
        prop_assert_eq!(count_conflicting_pairs(&a, &b, &[0]), brute_pairs(&a, &b, &[0]));
    }

    #[test]
    fn pair_count_matches_brute_force_2d(
        a in arb_lmad(2, 30),
        b in arb_lmad(2, 30),
    ) {
        prop_assert_eq!(
            count_conflicting_pairs(&a, &b, &[0, 1]),
            brute_pairs(&a, &b, &[0, 1])
        );
    }

    #[test]
    fn pair_count_matches_brute_force_3d(
        a in arb_lmad(3, 20),
        b in arb_lmad(3, 20),
    ) {
        prop_assert_eq!(
            count_conflicting_pairs(&a, &b, &[0, 1, 2]),
            brute_pairs(&a, &b, &[0, 1, 2])
        );
    }

    #[test]
    fn k2_matches_brute_force(
        a in arb_timed_lmad(2, 25),
        b in arb_timed_lmad(2, 25),
    ) {
        let got: Vec<u64> = conflicting_k2(&a, &b, &[0, 1], 2).iter().collect();
        prop_assert_eq!(got, brute_k2(&a, &b, &[0, 1], 2));
    }

    #[test]
    fn compressor_reconstructs_captured_prefix(
        pts in proptest::collection::vec(
            proptest::collection::vec(-100i64..100, 2..=2), 0..200),
        budget in 1usize..16,
    ) {
        let mut c = LinearCompressor::new(2, budget);
        for p in &pts {
            c.push(p);
        }
        let captured = c.captured() as usize;
        let mut got = c.reconstruct();
        got.sort_unstable();
        let mut want = pts[..captured].to_vec();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(c.seen(), pts.len() as u64);
        if c.fully_captured() {
            prop_assert_eq!(captured, pts.len());
        }
    }

    #[test]
    fn compressor_with_generous_budget_is_lossless_on_piecewise_linear(
        segments in proptest::collection::vec(
            (-100i64..100, -10i64..10, 2u64..30), 1..8),
    ) {
        // Piecewise-linear input with S segments always fits in S + 1
        // descriptors (a segment boundary can consume an extra one when
        // the next segment's first two points align with the tail).
        let mut pts = Vec::new();
        for &(start, stride, n) in &segments {
            for k in 0..n {
                pts.push(vec![start + stride * k as i64]);
            }
        }
        let mut c = LinearCompressor::new(1, 2 * segments.len() + 1);
        for p in &pts {
            c.push(p);
        }
        prop_assert!(c.fully_captured());
        // Multi-descriptor extension may regroup points across
        // descriptors, so compare as multisets.
        let mut got = c.reconstruct();
        got.sort_unstable();
        let mut want = pts.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
