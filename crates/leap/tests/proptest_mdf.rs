//! Property tests for the dependence post-processor.
//!
//! The pivotal invariant: when nothing overflows (generous LMAD
//! budget), LEAP's LMAD-based dependence frequencies are *exactly* the
//! lossless ground truth — the omega-test-like solver and the bitset
//! union lose nothing that the compressor kept. And with any budget,
//! LEAP never invents a pair the ground truth lacks.

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
use orp_leap::lossless::LosslessDependenceProfiler;
use orp_leap::{mdf, LeapProfiler};
use orp_trace::{AccessKind, InstrId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Access {
    instr: u8,
    is_store: bool,
    group: u8,
    object: u8,
    offset: u8,
}

fn arb_access() -> impl Strategy<Value = Access> {
    (0u8..6, any::<bool>(), 0u8..2, 0u8..6, 0u8..4).prop_map(
        |(instr, is_store, group, object, offset)| Access {
            instr,
            is_store,
            group,
            object,
            offset,
        },
    )
}

fn tuples(accesses: &[Access]) -> Vec<OrTuple> {
    accesses
        .iter()
        .enumerate()
        .map(|(t, a)| OrTuple {
            // Loads and stores get disjoint instruction ids so one
            // instruction has one kind.
            instr: InstrId(u32::from(a.instr) * 2 + u32::from(a.is_store)),
            kind: if a.is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            group: GroupId(u32::from(a.group)),
            object: ObjectSerial(u64::from(a.object)),
            offset: u64::from(a.offset) * 8,
            time: Timestamp(t as u64),
            size: 8,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fully_captured_leap_equals_lossless_truth(
        accesses in proptest::collection::vec(arb_access(), 0..150)
    ) {
        let stream = tuples(&accesses);

        // A budget larger than the stream cannot overflow.
        let mut leap = LeapProfiler::with_budget(stream.len().max(1));
        let mut truth = LosslessDependenceProfiler::new();
        for t in &stream {
            leap.tuple(t);
            truth.tuple(t);
        }
        let profile = leap.into_profile();
        prop_assert!((profile.sample_quality().accesses_captured - 1.0).abs() < 1e-12
            || stream.is_empty());

        let est = mdf::dependence_frequencies(&profile);
        let reference = truth.into_profile();

        prop_assert_eq!(
            est.pairs().len(),
            reference.pairs().len(),
            "pair sets differ: est {:?} vs truth {:?}",
            est.pairs(),
            reference.pairs()
        );
        for (&(st, ld), &f) in reference.pairs() {
            prop_assert!(
                (est.frequency(st, ld) - f).abs() < 1e-9,
                "({st}, {ld}): est {} truth {f}",
                est.frequency(st, ld)
            );
        }
    }

    #[test]
    fn lossy_leap_never_invents_pairs(
        accesses in proptest::collection::vec(arb_access(), 0..200),
        budget in 1usize..6,
    ) {
        let stream = tuples(&accesses);
        let mut leap = LeapProfiler::with_budget(budget);
        let mut truth = LosslessDependenceProfiler::new();
        for t in &stream {
            leap.tuple(t);
            truth.tuple(t);
        }
        let est = mdf::dependence_frequencies(&leap.into_profile());
        let reference = truth.into_profile();
        for (st, ld) in est.pairs().keys() {
            prop_assert!(
                reference.frequency(*st, *ld) > 0.0,
                "invented pair ({st}, {ld})"
            );
        }
        // Frequencies are always valid probabilities.
        for &f in est.pairs().values() {
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
