//! Scoring a lossy dependence profile against ground truth (the
//! paper's Figures 6–8).

use orp_trace::InstrId;

use crate::DependenceProfile;

/// One scored dependence pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairError {
    /// The store instruction.
    pub store: InstrId,
    /// The load instruction.
    pub load: InstrId,
    /// Ground-truth dependence frequency (0..=1).
    pub truth: f64,
    /// Estimated dependence frequency (0 when the estimator missed the
    /// pair entirely).
    pub estimate: f64,
}

impl PairError {
    /// Signed error in percentage points (`(estimate − truth) · 100`),
    /// the x-axis of the paper's error-distribution figures.
    #[must_use]
    pub fn error_percent(&self) -> f64 {
        (self.estimate - self.truth) * 100.0
    }
}

/// Scores an estimated dependence profile against the lossless ground
/// truth, one entry per *truly dependent* pair (the population of the
/// paper's error distributions).
///
/// Pairs the estimator invents (dependences with no ground-truth
/// counterpart) cannot occur for estimators built on captured subsets
/// of the truth, but are reported too if present, with `truth = 0`.
#[must_use]
pub fn score_pairs(estimate: &DependenceProfile, truth: &DependenceProfile) -> Vec<PairError> {
    let mut out = Vec::new();
    for (&(st, ld), &t) in truth.pairs() {
        out.push(PairError {
            store: st,
            load: ld,
            truth: t,
            estimate: estimate.frequency(st, ld),
        });
    }
    for (&(st, ld), &e) in estimate.pairs() {
        if truth.frequency(st, ld) == 0.0 {
            out.push(PairError {
                store: st,
                load: ld,
                truth: 0.0,
                estimate: e,
            });
        }
    }
    out
}

/// The fraction of scored pairs whose absolute error is within
/// `percent` percentage points — the "completely correct or off by no
/// more than 10%" headline statistic (≈75% for LEAP in the paper, 56%
/// better than Connors).
#[must_use]
pub fn fraction_within(errors: &[PairError], percent: f64) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    let hits = errors
        .iter()
        .filter(|e| e.error_percent().abs() <= percent)
        .count();
    hits as f64 / errors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pairs: &[(u32, u32, f64)]) -> DependenceProfile {
        let mut p = DependenceProfile::new();
        for &(st, ld, f) in pairs {
            p.record(InstrId(st), InstrId(ld), f);
        }
        p
    }

    #[test]
    fn scores_truth_pairs_with_estimates() {
        let truth = profile(&[(1, 0, 0.9), (2, 0, 0.1)]);
        let est = profile(&[(1, 0, 0.85)]);
        let mut scored = score_pairs(&est, &truth);
        scored.sort_by_key(|e| e.store);
        assert_eq!(scored.len(), 2);
        assert!((scored[0].error_percent() - -5.0).abs() < 1e-9);
        assert!((scored[1].error_percent() - -10.0).abs() < 1e-9);
    }

    #[test]
    fn invented_pairs_are_reported_as_overestimates() {
        let truth = profile(&[]);
        let est = profile(&[(1, 0, 0.5)]);
        let scored = score_pairs(&est, &truth);
        assert_eq!(scored.len(), 1);
        assert!((scored[0].error_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_within_counts_inclusive() {
        let truth = profile(&[(1, 0, 0.5), (2, 0, 0.5), (3, 0, 0.5)]);
        let est = profile(&[(1, 0, 0.5), (2, 0, 0.41), (3, 0, 0.1)]);
        let scored = score_pairs(&est, &truth);
        assert!((fraction_within(&scored, 10.0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(fraction_within(&[], 10.0), 0.0);
    }
}
