//! Stride extraction from LEAP's LMADs (paper Section 4.2.2).
//!
//! "With the collected LMADs, identifying strongly strided instructions
//! requires a trivial post-process which examines all offset strides
//! captured for a given instruction" — a descriptor whose object
//! dimension is constant describes `count` consecutive same-object
//! accesses, i.e. `count − 1` occurrences of its offset stride. Strides
//! across objects are excluded, as in the paper ("we choose to consider
//! only those strongly strided instructions within objects").

use std::collections::{BTreeMap, HashMap};

use orp_trace::InstrId;

use crate::lossless::StrideStats;
use crate::LeapProfile;

/// The paper's strongly-strided threshold: one stride must account for
/// at least 70% of an instruction's accesses.
pub const STRONG_STRIDE_THRESHOLD: f64 = 0.7;

/// Extracts per-instruction stride statistics from the profile's
/// location-level (`loc`) LMADs.
///
/// The result has the same shape as the lossless profiler's, so the two
/// can be scored against each other (Figure 9).
///
/// # Examples
///
/// ```
/// use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
/// use orp_leap::{strides, LeapProfiler};
/// use orp_trace::{AccessKind, InstrId};
///
/// let mut p = LeapProfiler::new();
/// for k in 0..100u64 {
///     p.tuple(&OrTuple {
///         instr: InstrId(0),
///         kind: AccessKind::Load,
///         group: GroupId(0),
///         object: ObjectSerial(0),
///         offset: 8 * k,
///         time: Timestamp(k),
///         size: 8,
///     });
/// }
/// let stats = strides::stride_stats(&p.into_profile());
/// assert_eq!(stats.strongly_strided(0.7), vec![(InstrId(0), 8)]);
/// ```
#[must_use]
pub fn stride_stats(profile: &LeapProfile) -> StrideStats {
    let mut histograms: BTreeMap<InstrId, HashMap<i64, u64>> = BTreeMap::new();
    let mut execs: BTreeMap<InstrId, u64> = BTreeMap::new();

    for &instr in profile.instructions().keys() {
        execs.insert(instr, profile.execs(instr));
    }
    for ((instr, _group), stream) in profile.streams() {
        for lmad in stream.loc.lmads() {
            // Within-object descriptors only: constant object dimension.
            if lmad.count >= 2 && lmad.stride[0] == 0 {
                let stride = lmad.stride[1];
                *histograms
                    .entry(*instr)
                    .or_default()
                    .entry(stride)
                    .or_default() += lmad.count - 1;
            }
        }
    }
    StrideStats::from_parts(histograms, execs)
}

/// The paper's Figure 9 *stride score*: the fraction of truly
/// strongly-strided instructions (per the lossless reference) that the
/// LEAP-derived analysis also identifies.
///
/// Returns `None` when the reference set is empty (nothing to score).
#[must_use]
pub fn stride_score(leap: &StrideStats, reference: &StrideStats) -> Option<f64> {
    let real: Vec<InstrId> = reference
        .strongly_strided(STRONG_STRIDE_THRESHOLD)
        .iter()
        .map(|&(i, _)| i)
        .collect();
    if real.is_empty() {
        return None;
    }
    let found: std::collections::BTreeSet<InstrId> = leap
        .strongly_strided(STRONG_STRIDE_THRESHOLD)
        .iter()
        .map(|&(i, _)| i)
        .collect();
    let hit = real.iter().filter(|i| found.contains(i)).count();
    Some(hit as f64 / real.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeapProfiler;
    use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
    use orp_trace::AccessKind;

    fn feed(p: &mut LeapProfiler, instr: u32, obj: u64, off: u64, time: u64) {
        p.tuple(&OrTuple {
            instr: InstrId(instr),
            kind: AccessKind::Load,
            group: GroupId(0),
            object: ObjectSerial(obj),
            offset: off,
            time: Timestamp(time),
            size: 8,
        });
    }

    #[test]
    fn array_scan_is_strongly_strided() {
        let mut p = LeapProfiler::new();
        for k in 0..1000u64 {
            feed(&mut p, 0, 0, 8 * k, k);
        }
        let stats = stride_stats(&p.into_profile());
        assert_eq!(stats.dominant_stride(InstrId(0)), Some((8, 999)));
        assert_eq!(stats.strongly_strided(0.7), vec![(InstrId(0), 8)]);
    }

    #[test]
    fn cross_object_descriptors_are_excluded() {
        // One access per object: object stride 1, never within-object.
        let mut p = LeapProfiler::new();
        for k in 0..1000u64 {
            feed(&mut p, 0, k, 8, k);
        }
        let stats = stride_stats(&p.into_profile());
        assert!(stats.histogram(InstrId(0)).is_none());
    }

    #[test]
    fn restarting_scans_accumulate_per_descriptor() {
        // Ten row scans of 100 elements each: ten descriptors of stride
        // 8, 99 deltas each.
        let mut p = LeapProfiler::new();
        let mut t = 0;
        for _ in 0..10 {
            for k in 0..100u64 {
                feed(&mut p, 0, 0, 8 * k, t);
                t += 1;
            }
        }
        let stats = stride_stats(&p.into_profile());
        let h = stats.histogram(InstrId(0)).unwrap();
        // 10 descriptors x 99 in-descriptor deltas... but consecutive
        // scans share boundaries handled as new descriptors, and the
        // restart jump (-792) may form its own small descriptors. The
        // stride 8 mass must dominate.
        assert!(*h.get(&8).unwrap() >= 980);
        assert_eq!(stats.strongly_strided(0.7)[0].0, InstrId(0));
    }

    #[test]
    fn score_compares_against_reference() {
        use crate::lossless::LosslessStrideProfiler;
        let mut leap = LeapProfiler::with_budget(2);
        let mut truth = LosslessStrideProfiler::new();
        // Instr 0: strided; instr 1: wild (captured by neither).
        let mut t = 0u64;
        for k in 0..500u64 {
            let tup = |instr: u32, off: u64, time: u64| OrTuple {
                instr: InstrId(instr),
                kind: AccessKind::Load,
                group: GroupId(0),
                object: ObjectSerial(0),
                offset: off,
                time: Timestamp(time),
                size: 8,
            };
            leap.tuple(&tup(0, 8 * k, t));
            truth.tuple(&tup(0, 8 * k, t));
            t += 1;
            // xorshift: genuinely wild offsets, no dominant delta.
            let mut x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let wild = x % 4096;
            leap.tuple(&tup(1, wild, t));
            truth.tuple(&tup(1, wild, t));
            t += 1;
        }
        let leap_stats = stride_stats(&leap.into_profile());
        let truth_stats = truth.into_profile();
        let score = stride_score(&leap_stats, &truth_stats).unwrap();
        assert!(
            (score - 1.0).abs() < 1e-9,
            "the one real strided instr is found"
        );
    }

    #[test]
    fn empty_reference_scores_none() {
        let empty = StrideStats::default();
        assert_eq!(stride_score(&empty, &empty), None);
    }
}

/// The paper's deferred extension: strongly-strided behavior *across*
/// objects, recovered "by using the auxiliary object lifetime
/// information" — the per-object base addresses the OMC archives.
///
/// A location-level descriptor whose object dimension strides (one
/// access per object, consecutive serials) describes a regular walk
/// over sibling objects; whether the *addresses* stride depends on
/// where the allocator put those objects, so the result is explicitly
/// run/alloc-dependent. For each such descriptor, this checks whether
/// the raw address deltas between the consecutive elements are
/// constant, and if so credits that byte stride.
///
/// `objects` is the OMC's object table (live and archived records).
#[must_use]
pub fn cross_object_strides(
    profile: &LeapProfile,
    objects: &[orp_core::ObjectRecord],
) -> StrideStats {
    use std::collections::BTreeMap;

    // (group, serial) -> base address.
    let bases: std::collections::HashMap<(orp_core::GroupId, u64), u64> = objects
        .iter()
        .map(|o| ((o.group, o.serial.0), o.base))
        .collect();

    let mut histograms: BTreeMap<InstrId, HashMap<i64, u64>> = BTreeMap::new();
    let mut execs: BTreeMap<InstrId, u64> = BTreeMap::new();
    for &instr in profile.instructions().keys() {
        execs.insert(instr, profile.execs(instr));
    }

    for ((instr, group), stream) in profile.streams() {
        for lmad in stream.loc.lmads() {
            let (d_obj, d_off) = (lmad.stride[0], lmad.stride[1]);
            if lmad.count < 3 || d_obj == 0 {
                continue;
            }
            // Raw address of element k = base(object_k) + offset_k.
            let addr = |k: u64| -> Option<i64> {
                let obj = lmad.value_at(0, k);
                let off = lmad.value_at(1, k);
                let base = bases.get(&(*group, u64::try_from(obj).ok()?))?;
                Some(i64::try_from(*base).ok()? + off)
            };
            let Some(first) = addr(0) else { continue };
            let Some(second) = addr(1) else { continue };
            let byte_stride = second - first;
            let consistent = (2..lmad.count).all(
                |k| matches!((addr(k - 1), addr(k)), (Some(a), Some(b)) if b - a == byte_stride),
            );
            if consistent {
                let _ = d_off;
                *histograms
                    .entry(*instr)
                    .or_default()
                    .entry(byte_stride)
                    .or_default() += lmad.count - 1;
            }
        }
    }
    StrideStats::from_parts(histograms, execs)
}

#[cfg(test)]
mod cross_object_tests {
    use super::*;
    use crate::LeapProfiler;
    use orp_core::{GroupId, ObjectRecord, ObjectSerial, OrSink, OrTuple, Timestamp};
    use orp_trace::AccessKind;

    fn record(group: u32, serial: u64, base: u64) -> ObjectRecord {
        ObjectRecord {
            group: GroupId(group),
            serial: ObjectSerial(serial),
            base,
            size: 32,
            alloc_time: Timestamp(0),
            free_time: None,
        }
    }

    fn feed(p: &mut LeapProfiler, obj: u64, off: u64, time: u64) {
        p.tuple(&OrTuple {
            instr: InstrId(0),
            kind: AccessKind::Load,
            group: GroupId(0),
            object: ObjectSerial(obj),
            offset: off,
            time: Timestamp(time),
            size: 8,
        });
    }

    #[test]
    fn contiguous_objects_yield_a_byte_stride() {
        // One access per object at offset 8; objects bump-allocated 48
        // bytes apart: raw stride 48.
        let mut p = LeapProfiler::new();
        for k in 0..100u64 {
            feed(&mut p, k, 8, k);
        }
        let objects: Vec<ObjectRecord> = (0..100).map(|k| record(0, k, 0x1000 + k * 48)).collect();
        let stats = cross_object_strides(&p.into_profile(), &objects);
        assert_eq!(stats.dominant_stride(InstrId(0)), Some((48, 99)));
        assert_eq!(stats.strongly_strided(0.7), vec![(InstrId(0), 48)]);
    }

    #[test]
    fn scattered_objects_yield_nothing() {
        let mut p = LeapProfiler::new();
        for k in 0..100u64 {
            feed(&mut p, k, 8, k);
        }
        // Irregular placement: deltas vary.
        let objects: Vec<ObjectRecord> = (0..100)
            .map(|k| record(0, k, 0x1000 + k * 48 + (k % 3) * 16))
            .collect();
        let stats = cross_object_strides(&p.into_profile(), &objects);
        assert!(stats.histogram(InstrId(0)).is_none());
    }

    #[test]
    fn within_object_descriptors_are_ignored_here() {
        let mut p = LeapProfiler::new();
        for k in 0..100u64 {
            feed(&mut p, 0, 8 * k, k);
        }
        let stats = cross_object_strides(&p.into_profile(), &[record(0, 0, 0x1000)]);
        assert!(
            stats.histogram(InstrId(0)).is_none(),
            "object stride is zero"
        );
    }

    #[test]
    fn unknown_objects_are_skipped_gracefully() {
        let mut p = LeapProfiler::new();
        for k in 0..50u64 {
            feed(&mut p, k, 0, k);
        }
        // Object table is empty: nothing to resolve, nothing to panic.
        let stats = cross_object_strides(&p.into_profile(), &[]);
        assert!(stats.histogram(InstrId(0)).is_none());
    }
}
