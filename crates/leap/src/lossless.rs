//! Lossless ground-truth profilers (the paper's "extremely slow, huge
//! profile" baselines used to score LEAP).

use std::collections::{BTreeMap, HashMap};

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple};
use orp_trace::InstrId;

use crate::DependenceProfile;

/// One profiled memory location at access-start granularity.
type Loc = (GroupId, ObjectSerial, u64);

/// The lossless dependence profiler: records, for every location, the
/// set of store instructions that have written it, and counts for every
/// load execution one conflict per such store — the exact semantics the
/// paper defines ("the st accesses location A at time t₁ while the ld
/// accesses A at a later time t₂").
///
/// Memory grows with the number of distinct locations touched; this is
/// precisely why it is a calibration baseline and not a practical
/// profiler.
#[derive(Debug, Clone, Default)]
pub struct LosslessDependenceProfiler {
    /// Location → store instructions that wrote it so far.
    writers: HashMap<Loc, Vec<InstrId>>,
    /// (store, load) → conflicting load executions.
    conflicts: BTreeMap<(InstrId, InstrId), u64>,
    /// Load execution counts.
    load_execs: BTreeMap<InstrId, u64>,
}

impl LosslessDependenceProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finalizes into a [`DependenceProfile`].
    #[must_use]
    pub fn into_profile(self) -> DependenceProfile {
        let mut out = DependenceProfile::new();
        for ((st, ld), count) in self.conflicts {
            let execs = self.load_execs.get(&ld).copied().unwrap_or(0);
            if execs > 0 {
                out.record(st, ld, count as f64 / execs as f64);
            }
        }
        for (ld, execs) in self.load_execs {
            out.set_load_execs(ld, execs);
        }
        out
    }
}

impl OrSink for LosslessDependenceProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        let loc: Loc = (t.group, t.object, t.offset);
        if t.kind.is_store() {
            let writers = self.writers.entry(loc).or_default();
            if !writers.contains(&t.instr) {
                writers.push(t.instr);
            }
        } else {
            *self.load_execs.entry(t.instr).or_default() += 1;
            if let Some(writers) = self.writers.get(&loc) {
                for &st in writers {
                    *self.conflicts.entry((st, t.instr)).or_default() += 1;
                }
            }
        }
    }
}

/// The lossless stride profiler: tracks, per instruction, the exact
/// histogram of consecutive within-object offset deltas — the paper's
/// "setting to make [the stride profiler of Wu, PLDI'02] lossless and
/// track all the strides for a given instruction".
#[derive(Debug, Clone, Default)]
pub struct LosslessStrideProfiler {
    /// Per instruction: last (group, object, offset) accessed.
    last: HashMap<InstrId, (GroupId, ObjectSerial, u64)>,
    /// Per instruction: stride → occurrences.
    histograms: BTreeMap<InstrId, HashMap<i64, u64>>,
    /// Per instruction: execution count.
    execs: BTreeMap<InstrId, u64>,
}

impl LosslessStrideProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finalizes into per-instruction stride statistics.
    #[must_use]
    pub fn into_profile(self) -> StrideStats {
        StrideStats {
            histograms: self.histograms,
            execs: self.execs,
        }
    }
}

impl OrSink for LosslessStrideProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        *self.execs.entry(t.instr).or_default() += 1;
        let cur = (t.group, t.object, t.offset);
        if let Some(prev) = self.last.insert(t.instr, cur) {
            // Strides are defined within one object only.
            if prev.0 == t.group && prev.1 == t.object {
                let delta = t.offset as i64 - prev.2 as i64;
                *self
                    .histograms
                    .entry(t.instr)
                    .or_default()
                    .entry(delta)
                    .or_default() += 1;
            }
        }
    }
}

/// Per-instruction stride histograms plus execution counts — the common
/// output shape of the lossless and the LEAP-derived stride analyses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrideStats {
    pub(crate) histograms: BTreeMap<InstrId, HashMap<i64, u64>>,
    pub(crate) execs: BTreeMap<InstrId, u64>,
}

impl StrideStats {
    /// Builds stats from raw parts (used by the LEAP-side analysis).
    #[must_use]
    pub fn from_parts(
        histograms: BTreeMap<InstrId, HashMap<i64, u64>>,
        execs: BTreeMap<InstrId, u64>,
    ) -> Self {
        StrideStats { histograms, execs }
    }

    /// The stride histogram of one instruction.
    #[must_use]
    pub fn histogram(&self, instr: InstrId) -> Option<&HashMap<i64, u64>> {
        self.histograms.get(&instr)
    }

    /// The dominant stride of an instruction and its occurrence count.
    #[must_use]
    pub fn dominant_stride(&self, instr: InstrId) -> Option<(i64, u64)> {
        let h = self.histograms.get(&instr)?;
        h.iter()
            .map(|(&s, &c)| (s, c))
            .max_by_key(|&(s, c)| (c, std::cmp::Reverse(s)))
    }

    /// Instructions for which a single stride accounts for at least
    /// `threshold` (e.g. 0.7) of their executions — the paper's
    /// *strongly strided* set.
    #[must_use]
    pub fn strongly_strided(&self, threshold: f64) -> Vec<(InstrId, i64)> {
        let mut out = Vec::new();
        for &instr in self.histograms.keys() {
            let execs = self.execs.get(&instr).copied().unwrap_or(0);
            if execs == 0 {
                continue;
            }
            if let Some((stride, count)) = self.dominant_stride(instr) {
                if count as f64 >= threshold * execs as f64 {
                    out.push((instr, stride));
                }
            }
        }
        out
    }

    /// Execution count of an instruction.
    #[must_use]
    pub fn execs(&self, instr: InstrId) -> u64 {
        self.execs.get(&instr).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::Timestamp;
    use orp_trace::AccessKind;

    fn tuple(instr: u32, kind: AccessKind, obj: u64, off: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(instr),
            kind,
            group: GroupId(0),
            object: ObjectSerial(obj),
            offset: off,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn dependence_counts_any_earlier_writer() {
        let mut p = LosslessDependenceProfiler::new();
        // Two different stores write the same location, then 4 loads.
        p.tuple(&tuple(1, AccessKind::Store, 0, 0, 0));
        p.tuple(&tuple(2, AccessKind::Store, 0, 0, 1));
        for t in 2..6 {
            p.tuple(&tuple(0, AccessKind::Load, 0, 0, t));
        }
        let deps = p.into_profile();
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 1.0).abs() < 1e-9);
        assert!((deps.frequency(InstrId(2), InstrId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loads_without_prior_store_do_not_conflict() {
        let mut p = LosslessDependenceProfiler::new();
        p.tuple(&tuple(0, AccessKind::Load, 0, 0, 0));
        p.tuple(&tuple(1, AccessKind::Store, 0, 0, 1));
        p.tuple(&tuple(0, AccessKind::Load, 0, 0, 2));
        let deps = p.into_profile();
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_locations_are_independent() {
        let mut p = LosslessDependenceProfiler::new();
        p.tuple(&tuple(1, AccessKind::Store, 0, 0, 0));
        p.tuple(&tuple(0, AccessKind::Load, 0, 8, 1)); // other offset
        p.tuple(&tuple(0, AccessKind::Load, 1, 0, 2)); // other object
        let deps = p.into_profile();
        assert!(deps.pairs().is_empty());
    }

    #[test]
    fn stride_profiler_detects_constant_stride() {
        let mut p = LosslessStrideProfiler::new();
        for k in 0..100u64 {
            p.tuple(&tuple(0, AccessKind::Load, 0, 8 * k, k));
        }
        let stats = p.into_profile();
        assert_eq!(stats.dominant_stride(InstrId(0)), Some((8, 99)));
        assert_eq!(stats.strongly_strided(0.7), vec![(InstrId(0), 8)]);
    }

    #[test]
    fn stride_resets_across_objects() {
        let mut p = LosslessStrideProfiler::new();
        // Alternating objects: no within-object consecutive pair exists.
        for k in 0..100u64 {
            p.tuple(&tuple(0, AccessKind::Load, k % 2, 8 * k, k));
        }
        let stats = p.into_profile();
        assert!(stats.histogram(InstrId(0)).is_none());
        assert!(stats.strongly_strided(0.7).is_empty());
    }

    #[test]
    fn weakly_strided_instruction_is_excluded() {
        let mut p = LosslessStrideProfiler::new();
        // Half the deltas are 8, half are pseudo-random.
        let mut off = 0u64;
        for k in 0..100u64 {
            off = if k % 2 == 0 {
                off + 8
            } else {
                (off * 2654435761) % 4096
            };
            p.tuple(&tuple(0, AccessKind::Load, 0, off, k));
        }
        let stats = p.into_profile();
        assert!(stats.strongly_strided(0.7).is_empty());
    }

    #[test]
    fn stride_stats_parts_round_trip() {
        let mut h = BTreeMap::new();
        h.insert(InstrId(0), HashMap::from([(8i64, 90u64), (0, 5)]));
        let mut e = BTreeMap::new();
        e.insert(InstrId(0), 100u64);
        let stats = StrideStats::from_parts(h, e);
        assert_eq!(stats.execs(InstrId(0)), 100);
        assert_eq!(stats.dominant_stride(InstrId(0)), Some((8, 90)));
        assert_eq!(stats.strongly_strided(0.9), vec![(InstrId(0), 8)]);
        assert!(stats.strongly_strided(0.95).is_empty());
    }
}
