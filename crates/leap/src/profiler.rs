//! The online LEAP profiler: vertical decomposition into bounded
//! linear compressors.

use std::collections::BTreeMap;

use orp_core::{GroupId, OrSink, OrTuple};
use orp_trace::{AccessKind, InstrId};

use crate::{LeapProfile, LeapStream, DEFAULT_LMAD_BUDGET};

/// The LEAP profiler: an [`OrSink`] that demultiplexes the
/// object-relative stream by `(instruction, group)` and feeds each
/// sub-stream's `(object, offset, time)` points to bounded linear
/// compressors.
#[derive(Debug, Clone)]
pub struct LeapProfiler {
    budget: usize,
    streams: BTreeMap<(InstrId, GroupId), LeapStream>,
    execs: BTreeMap<InstrId, u64>,
    kinds: BTreeMap<InstrId, AccessKind>,
}

impl LeapProfiler {
    /// Creates a profiler with the paper's LMAD budget
    /// ([`DEFAULT_LMAD_BUDGET`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_LMAD_BUDGET)
    }

    /// Creates a profiler with a custom per-stream LMAD budget (used by
    /// the budget-sweep ablation).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        assert!(budget > 0, "LMAD budget must be positive");
        LeapProfiler {
            budget,
            streams: BTreeMap::new(),
            execs: BTreeMap::new(),
            kinds: BTreeMap::new(),
        }
    }

    /// The configured per-stream budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of `(instruction, group)` streams opened so far.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Finalizes into an immutable [`LeapProfile`].
    #[must_use]
    pub fn into_profile(self) -> LeapProfile {
        LeapProfile::from_parts(self.streams, self.execs, self.kinds)
    }
}

impl Default for LeapProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl OrSink for LeapProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        *self.execs.entry(t.instr).or_default() += 1;
        self.kinds.entry(t.instr).or_insert(t.kind);
        let stream = self
            .streams
            .entry((t.instr, t.group))
            .or_insert_with(|| LeapStream::new(self.budget));
        stream.push(
            i64::try_from(t.object.0).expect("object serial fits i64"),
            i64::try_from(t.offset).expect("offset fits i64"),
            i64::try_from(t.time.0).expect("time fits i64"),
        );
    }
}

impl orp_core::ShardableSink for LeapProfiler {
    /// LEAP's vertical-decomposition key: compressor state is per
    /// `(instruction, group)` stream.
    fn shard_key(t: &OrTuple) -> u64 {
        orp_core::sharded::instr_group_key(t.instr, t.group)
    }

    /// Union of the disjoint stream maps. The per-instruction `execs`
    /// and `kinds` maps *can* span shards (one instruction touching two
    /// groups); executions merge by sum, and the access kind is a
    /// static property of the instruction so any shard's value is the
    /// value.
    fn merge(parts: Vec<Self>) -> Self {
        let mut merged = match parts.first() {
            Some(first) => LeapProfiler::with_budget(first.budget),
            None => LeapProfiler::new(),
        };
        for part in parts {
            debug_assert_eq!(part.budget, merged.budget, "shards must share one budget");
            for ((instr, group), stream) in part.streams {
                let clash = merged.streams.insert((instr, group), stream);
                debug_assert!(clash.is_none(), "stream ({instr}, {group}) on two shards");
            }
            for (instr, execs) in part.execs {
                *merged.execs.entry(instr).or_default() += execs;
            }
            for (instr, kind) in part.kinds {
                let prev = merged.kinds.entry(instr).or_insert(kind);
                debug_assert_eq!(*prev, kind, "access kind is static per instruction");
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{ObjectSerial, Timestamp};

    fn tuple(instr: u32, group: u32, object: u64, offset: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(instr),
            kind: if instr.is_multiple_of(2) {
                AccessKind::Load
            } else {
                AccessKind::Store
            },
            group: GroupId(group),
            object: ObjectSerial(object),
            offset,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn streams_split_by_instruction_and_group() {
        let mut p = LeapProfiler::new();
        p.tuple(&tuple(0, 0, 0, 0, 0));
        p.tuple(&tuple(0, 1, 0, 0, 1));
        p.tuple(&tuple(1, 0, 0, 0, 2));
        assert_eq!(p.stream_count(), 3);
        let profile = p.into_profile();
        assert_eq!(profile.execs(InstrId(0)), 2);
        assert_eq!(profile.execs(InstrId(1)), 1);
        assert_eq!(profile.kind(InstrId(0)), Some(AccessKind::Load));
        assert_eq!(profile.kind(InstrId(1)), Some(AccessKind::Store));
    }

    #[test]
    fn linear_stream_stays_within_one_lmad() {
        let mut p = LeapProfiler::new();
        for k in 0..1000u64 {
            p.tuple(&tuple(0, 0, k, 8, 3 * k));
        }
        let profile = p.into_profile();
        let stream = &profile.streams()[&(InstrId(0), GroupId(0))];
        assert_eq!(stream.full.lmads().len(), 1);
        assert_eq!(stream.full.lmads()[0].count, 1000);
        assert_eq!(stream.full.lmads()[0].stride, vec![1, 0, 3]);
        assert!(stream.loc.fully_captured());
    }

    #[test]
    fn custom_budget_is_respected() {
        let mut p = LeapProfiler::with_budget(2);
        assert_eq!(p.budget(), 2);
        for k in 0..20u64 {
            // Alternating wild offsets exhaust a budget of 2.
            p.tuple(&tuple(0, 0, 0, (k * 7919) % 997, k));
        }
        let profile = p.into_profile();
        let stream = &profile.streams()[&(InstrId(0), GroupId(0))];
        assert!(stream.full.lmads().len() <= 2);
        assert!(!stream.full.fully_captured());
        // Execution counts stay exact even though the stream overflowed.
        assert_eq!(profile.execs(InstrId(0)), 20);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_panics() {
        let _ = LeapProfiler::with_budget(0);
    }
}
