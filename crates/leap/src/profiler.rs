//! The online LEAP profiler: vertical decomposition into bounded
//! linear compressors.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use orp_core::{GroupId, OrSink, OrTuple, SessionSink};
use orp_format::{read_varint, write_varint};
use orp_lmad::LinearCompressor;
use orp_trace::{AccessKind, InstrId};

use crate::{LeapProfile, LeapStream, DEFAULT_LMAD_BUDGET};

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The LEAP profiler: an [`OrSink`] that demultiplexes the
/// object-relative stream by `(instruction, group)` and feeds each
/// sub-stream's `(object, offset, time)` points to bounded linear
/// compressors.
#[derive(Debug, Clone)]
pub struct LeapProfiler {
    budget: usize,
    streams: BTreeMap<(InstrId, GroupId), LeapStream>,
    execs: BTreeMap<InstrId, u64>,
    kinds: BTreeMap<InstrId, AccessKind>,
}

impl LeapProfiler {
    /// Creates a profiler with the paper's LMAD budget
    /// ([`DEFAULT_LMAD_BUDGET`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_LMAD_BUDGET)
    }

    /// Creates a profiler with a custom per-stream LMAD budget (used by
    /// the budget-sweep ablation).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        assert!(budget > 0, "LMAD budget must be positive");
        LeapProfiler {
            budget,
            streams: BTreeMap::new(),
            execs: BTreeMap::new(),
            kinds: BTreeMap::new(),
        }
    }

    /// The configured per-stream budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of `(instruction, group)` streams opened so far.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Publishes the profiler's growth counters onto `rec`.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("leap.streams", self.streams.len() as u64);
        rec.counter("leap.instructions", self.kinds.len() as u64);
    }

    /// Finalizes into an immutable [`LeapProfile`].
    #[must_use]
    pub fn into_profile(self) -> LeapProfile {
        LeapProfile::from_parts(self.streams, self.execs, self.kinds)
    }
}

impl Default for LeapProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl OrSink for LeapProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        *self.execs.entry(t.instr).or_default() += 1;
        self.kinds.entry(t.instr).or_insert(t.kind);
        let stream = self
            .streams
            .entry((t.instr, t.group))
            .or_insert_with(|| LeapStream::new(self.budget));
        stream.push(
            i64::try_from(t.object.0).expect("object serial fits i64"),
            i64::try_from(t.offset).expect("offset fits i64"),
            i64::try_from(t.time.0).expect("time fits i64"),
        );
    }
}

impl SessionSink for LeapProfiler {
    const STATE_NAME: &'static str = "leap";

    fn save_state(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.budget as u64)?;
        write_varint(w, self.execs.len() as u64)?;
        for (&instr, &execs) in &self.execs {
            let kind = self.kinds.get(&instr).expect("kind recorded with execs");
            write_varint(w, u64::from(instr.0))?;
            w.write_all(&[u8::from(kind.is_store())])?;
            write_varint(w, execs)?;
        }
        write_varint(w, self.streams.len() as u64)?;
        for (&(instr, group), stream) in &self.streams {
            write_varint(w, u64::from(instr.0))?;
            write_varint(w, u64::from(group.0))?;
            stream.full.write_to(w)?;
            stream.loc.write_to(w)?;
        }
        Ok(())
    }

    fn restore_state(r: &mut impl Read) -> io::Result<Self> {
        let budget = usize::try_from(read_varint(r)?)
            .map_err(|_| bad_data("LMAD budget does not fit usize"))?;
        if budget == 0 {
            return Err(bad_data("LMAD budget must be positive"));
        }
        let instr_count = read_varint(r)?;
        let mut execs = BTreeMap::new();
        let mut kinds = BTreeMap::new();
        let mut prev: Option<u32> = None;
        for _ in 0..instr_count {
            let instr = u32::try_from(read_varint(r)?)
                .map_err(|_| bad_data("instruction id does not fit u32"))?;
            if prev.is_some_and(|p| p >= instr) {
                return Err(bad_data("instruction table not strictly sorted"));
            }
            prev = Some(instr);
            let mut kind1 = [0u8; 1];
            r.read_exact(&mut kind1)?;
            let kind = match kind1[0] {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => return Err(bad_data("bad access kind")),
            };
            let count = read_varint(r)?;
            kinds.insert(InstrId(instr), kind);
            execs.insert(InstrId(instr), count);
        }
        let stream_count = read_varint(r)?;
        let mut streams = BTreeMap::new();
        let mut prev: Option<(u32, u32)> = None;
        for _ in 0..stream_count {
            let instr = u32::try_from(read_varint(r)?)
                .map_err(|_| bad_data("instruction id does not fit u32"))?;
            let group = u32::try_from(read_varint(r)?)
                .map_err(|_| bad_data("group id does not fit u32"))?;
            if prev.is_some_and(|p| p >= (instr, group)) {
                return Err(bad_data("stream table not strictly sorted"));
            }
            prev = Some((instr, group));
            if !kinds.contains_key(&InstrId(instr)) {
                return Err(bad_data("stream references unknown instruction"));
            }
            let full = LinearCompressor::read_from(r)?;
            let loc = LinearCompressor::read_from(r)?;
            if full.dims() != 3 || loc.dims() != 2 {
                return Err(bad_data("stream compressors have wrong dimensionality"));
            }
            if full.budget() != budget || loc.budget() != budget {
                return Err(bad_data("stream budget disagrees with profiler budget"));
            }
            streams.insert((InstrId(instr), GroupId(group)), LeapStream { full, loc });
        }
        Ok(LeapProfiler {
            budget,
            streams,
            execs,
            kinds,
        })
    }

    /// The per-stream partition keys, matching
    /// [`ShardableSink::shard_key`](orp_core::ShardableSink::shard_key).
    fn state_keys(&self) -> Vec<u64> {
        self.streams
            .keys()
            .map(|&(instr, group)| orp_core::sharded::instr_group_key(instr, group))
            .collect()
    }

    fn finalize_profile(self, w: &mut impl Write) -> io::Result<()> {
        self.into_profile().write_to(w)
    }
}

impl orp_core::ShardableSink for LeapProfiler {
    /// LEAP's vertical-decomposition key: compressor state is per
    /// `(instruction, group)` stream.
    fn shard_key(t: &OrTuple) -> u64 {
        orp_core::sharded::instr_group_key(t.instr, t.group)
    }

    /// Union of the disjoint stream maps. The per-instruction `execs`
    /// and `kinds` maps *can* span shards (one instruction touching two
    /// groups); executions merge by sum, and the access kind is a
    /// static property of the instruction so any shard's value is the
    /// value.
    fn merge(parts: Vec<Self>) -> Self {
        let mut merged = match parts.first() {
            Some(first) => LeapProfiler::with_budget(first.budget),
            None => LeapProfiler::new(),
        };
        for part in parts {
            debug_assert_eq!(part.budget, merged.budget, "shards must share one budget");
            for ((instr, group), stream) in part.streams {
                let clash = merged.streams.insert((instr, group), stream);
                debug_assert!(clash.is_none(), "stream ({instr}, {group}) on two shards");
            }
            for (instr, execs) in part.execs {
                *merged.execs.entry(instr).or_default() += execs;
            }
            for (instr, kind) in part.kinds {
                let prev = merged.kinds.entry(instr).or_insert(kind);
                debug_assert_eq!(*prev, kind, "access kind is static per instruction");
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{ObjectSerial, Timestamp};

    fn tuple(instr: u32, group: u32, object: u64, offset: u64, time: u64) -> OrTuple {
        OrTuple {
            instr: InstrId(instr),
            kind: if instr.is_multiple_of(2) {
                AccessKind::Load
            } else {
                AccessKind::Store
            },
            group: GroupId(group),
            object: ObjectSerial(object),
            offset,
            time: Timestamp(time),
            size: 8,
        }
    }

    #[test]
    fn streams_split_by_instruction_and_group() {
        let mut p = LeapProfiler::new();
        p.tuple(&tuple(0, 0, 0, 0, 0));
        p.tuple(&tuple(0, 1, 0, 0, 1));
        p.tuple(&tuple(1, 0, 0, 0, 2));
        assert_eq!(p.stream_count(), 3);
        let profile = p.into_profile();
        assert_eq!(profile.execs(InstrId(0)), 2);
        assert_eq!(profile.execs(InstrId(1)), 1);
        assert_eq!(profile.kind(InstrId(0)), Some(AccessKind::Load));
        assert_eq!(profile.kind(InstrId(1)), Some(AccessKind::Store));
    }

    #[test]
    fn linear_stream_stays_within_one_lmad() {
        let mut p = LeapProfiler::new();
        for k in 0..1000u64 {
            p.tuple(&tuple(0, 0, k, 8, 3 * k));
        }
        let profile = p.into_profile();
        let stream = &profile.streams()[&(InstrId(0), GroupId(0))];
        assert_eq!(stream.full.lmads().len(), 1);
        assert_eq!(stream.full.lmads()[0].count, 1000);
        assert_eq!(stream.full.lmads()[0].stride, vec![1, 0, 3]);
        assert!(stream.loc.fully_captured());
    }

    #[test]
    fn custom_budget_is_respected() {
        let mut p = LeapProfiler::with_budget(2);
        assert_eq!(p.budget(), 2);
        for k in 0..20u64 {
            // Alternating wild offsets exhaust a budget of 2.
            p.tuple(&tuple(0, 0, 0, (k * 7919) % 997, k));
        }
        let profile = p.into_profile();
        let stream = &profile.streams()[&(InstrId(0), GroupId(0))];
        assert!(stream.full.lmads().len() <= 2);
        assert!(!stream.full.fully_captured());
        // Execution counts stay exact even though the stream overflowed.
        assert_eq!(profile.execs(InstrId(0)), 20);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_panics() {
        let _ = LeapProfiler::with_budget(0);
    }

    fn probe_events() -> Vec<orp_trace::ProbeEvent> {
        use orp_trace::{AccessEvent, AllocEvent, AllocSiteId, ProbeEvent, RawAddress};
        let mut events = Vec::new();
        for k in 0..24u64 {
            events.push(ProbeEvent::Alloc(AllocEvent {
                site: AllocSiteId((k % 4) as u32),
                base: RawAddress(0x8000 + k * 256),
                size: 192,
            }));
        }
        for p in 0..20u64 {
            for k in 0..24u64 {
                events.push(ProbeEvent::Access(AccessEvent::load(
                    InstrId(((k + p) % 5) as u32),
                    RawAddress(0x8000 + k * 256 + 8 * (p % 24)),
                    8,
                )));
            }
        }
        events
    }

    #[test]
    fn state_roundtrip_is_verbatim() {
        use orp_core::Session;
        let mut session = Session::new(LeapProfiler::with_budget(4));
        session.feed(&probe_events());
        let mut state = Vec::new();
        session.cdc().sink().save_state(&mut state).unwrap();
        let restored = LeapProfiler::restore_state(&mut state.as_slice()).unwrap();
        assert_eq!(restored.budget(), 4);
        let mut again = Vec::new();
        restored.save_state(&mut again).unwrap();
        assert_eq!(state, again);
    }

    #[test]
    fn mismatched_stream_budget_is_rejected() {
        let mut p = LeapProfiler::with_budget(4);
        p.tuple(&tuple(0, 0, 0, 0, 0));
        let mut state = Vec::new();
        p.save_state(&mut state).unwrap();
        // Bump the leading budget varint so it disagrees with the
        // streams' embedded budgets.
        state[0] += 1;
        assert!(LeapProfiler::restore_state(&mut state.as_slice()).is_err());
    }

    #[test]
    fn checkpoint_hands_off_to_the_sharded_pipeline_byte_identically() {
        use orp_core::Session;
        use orp_trace::ProbeSink;

        let events = probe_events();
        let cut = events.len() / 2;

        let mut uninterrupted = Session::new(LeapProfiler::new());
        uninterrupted.feed(&events);
        let mut reference = Vec::new();
        uninterrupted.finalize(&mut reference).unwrap();

        let mut first = Session::new(LeapProfiler::new());
        first.feed(&events[..cut]);
        let mut snapshot = Vec::new();
        first.checkpoint(&mut snapshot).unwrap();

        let mut resumed = Session::<LeapProfiler>::resume(&mut snapshot.as_slice()).unwrap();
        resumed.feed(&events[cut..]);
        let mut profile = Vec::new();
        resumed.finalize(&mut profile).unwrap();
        assert_eq!(profile, reference, "single-threaded resume");

        for shards in [1, 2, 4] {
            let mut sharded =
                Session::<LeapProfiler>::resume_sharded(&mut snapshot.as_slice(), shards, |_| {
                    LeapProfiler::new()
                })
                .unwrap();
            for &ev in &events[cut..] {
                sharded.event(ev);
            }
            let cdc = sharded.try_join().expect("pipeline healthy");
            let mut profile = Vec::new();
            Session::from_cdc(cdc).finalize(&mut profile).unwrap();
            assert_eq!(profile, reference, "resume onto {shards} shards");
        }
    }
}
