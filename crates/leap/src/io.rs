//! Binary serialization for LEAP profiles.
//!
//! A profile lives in a `.orp` container ([`orp_format`]) of kind
//! `Leap`. The payload is fixed-width little-endian:
//!
//! ```text
//! instr_count:u64 { instr:u32 kind:u8 execs:u64 }*
//! stream_count:u64 { instr:u32 group:u32 full:LinearCompressor loc:LinearCompressor }*
//! ```

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use orp_core::GroupId;
use orp_format::{
    read_single_chunk, read_u32_le, read_u64_le, write_single_chunk, write_u32_le, write_u64_le,
    FormatError, ProfileKind,
};
use orp_lmad::LinearCompressor;
use orp_trace::{AccessKind, InstrId};

use crate::{LeapProfile, LeapStream};

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl LeapProfile {
    /// Serializes the profile payload (no container framing —
    /// [`LeapProfile::write_to`] adds that).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64_le(w, self.instructions().len() as u64)?;
        for (&instr, &kind) in self.instructions() {
            write_u32_le(w, instr.0)?;
            w.write_all(&[u8::from(kind.is_store())])?;
            write_u64_le(w, self.execs(instr))?;
        }

        write_u64_le(w, self.streams().len() as u64)?;
        for ((instr, group), stream) in self.streams() {
            write_u32_le(w, instr.0)?;
            write_u32_le(w, group.0)?;
            stream.full.write_to(w)?;
            stream.loc.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a payload written by [`LeapProfile::write_payload`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects streams referencing unknown
    /// instructions and compressors of the wrong dimensionality.
    pub fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let instr_count = read_u64_le(r)?;
        let mut execs = BTreeMap::new();
        let mut kinds = BTreeMap::new();
        for _ in 0..instr_count {
            let instr = InstrId(read_u32_le(r)?);
            let mut kind1 = [0u8; 1];
            r.read_exact(&mut kind1)?;
            let [kind_byte] = kind1;
            let kind = match kind_byte {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => return Err(bad_data("bad access kind")),
            };
            kinds.insert(instr, kind);
            execs.insert(instr, read_u64_le(r)?);
        }

        let stream_count = read_u64_le(r)?;
        let mut streams = BTreeMap::new();
        for _ in 0..stream_count {
            let instr = InstrId(read_u32_le(r)?);
            let group = GroupId(read_u32_le(r)?);
            if !kinds.contains_key(&instr) {
                return Err(bad_data("stream references unknown instruction"));
            }
            let full = LinearCompressor::read_from(r)?;
            let loc = LinearCompressor::read_from(r)?;
            if full.dims() != 3 || loc.dims() != 2 {
                return Err(bad_data("stream compressors have wrong dimensionality"));
            }
            streams.insert((instr, group), LeapStream { full, loc });
        }
        Ok(LeapProfile::from_parts(streams, execs, kinds))
    }

    /// Writes the profile as a `.orp` container of kind `Leap`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::Leap, &payload)
    }

    /// Reads a container written by [`LeapProfile::write_to`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage (wrong kind, bad
    /// checksum, truncation); payload validation errors from
    /// [`LeapProfile::read_payload`].
    pub fn read_from(r: &mut impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::Leap)?;
        let mut cursor = payload.as_slice();
        let profile = LeapProfile::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes after LEAP payload"));
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeapProfiler;
    use orp_core::{ObjectSerial, OrSink, OrTuple, Timestamp};

    fn sample_profile() -> LeapProfile {
        let mut p = LeapProfiler::with_budget(4);
        for k in 0..200u64 {
            p.tuple(&OrTuple {
                instr: InstrId((k % 3) as u32),
                kind: if k % 3 == 2 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                group: GroupId((k % 2) as u32),
                object: ObjectSerial(k / 7),
                offset: (k * 13) % 512,
                time: Timestamp(k),
                size: 8,
            });
        }
        p.into_profile()
    }

    #[test]
    fn profile_roundtrip_preserves_everything() {
        let profile = sample_profile();
        let mut buf = Vec::new();
        profile.write_to(&mut buf).unwrap();
        let back = LeapProfile::read_from(&mut buf.as_slice()).unwrap();

        assert_eq!(back.instructions(), profile.instructions());
        assert_eq!(back.total_accesses(), profile.total_accesses());
        assert_eq!(back.streams().len(), profile.streams().len());
        for (key, stream) in profile.streams() {
            let other = &back.streams()[key];
            assert_eq!(other.full, stream.full);
            assert_eq!(other.loc, stream.loc);
        }
        // Derived metrics survive the trip.
        let (a, b) = (profile.sample_quality(), back.sample_quality());
        assert_eq!(a.accesses_captured, b.accesses_captured);
        assert_eq!(profile.encoded_bytes(), back.encoded_bytes());
        // Post-processing gives identical answers.
        let d1 = crate::mdf::dependence_frequencies(&profile);
        let d2 = crate::mdf::dependence_frequencies(&back);
        assert_eq!(d1, d2);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut buf = Vec::new();
        orp_format::write_single_chunk(&mut buf, ProfileKind::Omsg, &[]).unwrap();
        assert!(matches!(
            LeapProfile::read_from(&mut buf.as_slice()),
            Err(FormatError::WrongKind { .. })
        ));
    }

    #[test]
    fn payload_bit_flip_is_caught_by_the_envelope() {
        let mut buf = Vec::new();
        sample_profile().write_to(&mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x04;
        assert!(LeapProfile::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let mut buf = Vec::new();
        sample_profile().write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                LeapProfile::read_from(&mut &buf[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn empty_profile_roundtrips() {
        let profile = LeapProfiler::new().into_profile();
        let mut buf = Vec::new();
        profile.write_to(&mut buf).unwrap();
        let back = LeapProfile::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.total_accesses(), 0);
        assert!(back.streams().is_empty());
    }
}
