//! Re-implementation of Connors' window-based memory dependence
//! profiler (the paper's Figure 7 comparison point).
//!
//! Connors' profiler works on raw addresses and keeps only a small
//! history window of recent stores; a load is checked against the
//! window and a dependence is recorded when its address matches a
//! windowed store. It therefore *never overestimates* a dependence
//! frequency, but misses any dependence whose store has already slid
//! out of the window — the systematic error the paper contrasts with
//! LEAP.

use std::collections::{BTreeMap, HashMap, VecDeque};

use orp_trace::{AccessEvent, InstrId, ProbeSink};

use crate::DependenceProfile;

/// Default window size (stores remembered); chosen, like the paper's,
/// so the running time and memory footprint are comparable to LEAP's.
pub const DEFAULT_WINDOW: usize = 8192;

/// The window-based dependence profiler. Implements [`ProbeSink`]:
/// it consumes raw `(instruction, address)` events directly, with no
/// object translation.
///
/// # Examples
///
/// ```
/// use orp_leap::connors::ConnorsProfiler;
/// use orp_trace::{AccessEvent, InstrId, ProbeSink, RawAddress};
///
/// let mut p = ConnorsProfiler::with_window(8);
/// p.access(AccessEvent::store(InstrId(1), RawAddress(0x100), 8));
/// p.access(AccessEvent::load(InstrId(0), RawAddress(0x100), 8));
/// let deps = p.into_profile();
/// assert_eq!(deps.frequency(InstrId(1), InstrId(0)), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ConnorsProfiler {
    window: usize,
    /// FIFO of (address, sequence) for eviction.
    ring: VecDeque<(u64, u64)>,
    /// Address → (store instr, sequence) for the most recent windowed
    /// store to that address.
    recent: HashMap<u64, (InstrId, u64)>,
    seq: u64,
    conflicts: BTreeMap<(InstrId, InstrId), u64>,
    load_execs: BTreeMap<InstrId, u64>,
}

impl ConnorsProfiler {
    /// Creates a profiler with the default window.
    #[must_use]
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// Creates a profiler remembering the last `window` stores.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        ConnorsProfiler {
            window,
            ring: VecDeque::with_capacity(window),
            recent: HashMap::new(),
            seq: 0,
            conflicts: BTreeMap::new(),
            load_execs: BTreeMap::new(),
        }
    }

    /// The configured window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Finalizes into a [`DependenceProfile`].
    #[must_use]
    pub fn into_profile(self) -> DependenceProfile {
        let mut out = DependenceProfile::new();
        for ((st, ld), count) in self.conflicts {
            let execs = self.load_execs.get(&ld).copied().unwrap_or(0);
            if execs > 0 {
                out.record(st, ld, count as f64 / execs as f64);
            }
        }
        for (ld, execs) in self.load_execs {
            out.set_load_execs(ld, execs);
        }
        out
    }
}

impl Default for ConnorsProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeSink for ConnorsProfiler {
    fn access(&mut self, ev: AccessEvent) {
        if ev.kind.is_store() {
            self.seq += 1;
            self.ring.push_back((ev.addr.0, self.seq));
            self.recent.insert(ev.addr.0, (ev.instr, self.seq));
            if self.ring.len() > self.window {
                let (addr, seq) = self.ring.pop_front().expect("non-empty ring");
                if self.recent.get(&addr).is_some_and(|&(_, s)| s == seq) {
                    self.recent.remove(&addr);
                }
            }
        } else {
            *self.load_execs.entry(ev.instr).or_default() += 1;
            if let Some(&(st, _)) = self.recent.get(&ev.addr.0) {
                *self.conflicts.entry((st, ev.instr)).or_default() += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_trace::RawAddress;

    fn store(instr: u32, addr: u64) -> AccessEvent {
        AccessEvent::store(InstrId(instr), RawAddress(addr), 8)
    }

    fn load(instr: u32, addr: u64) -> AccessEvent {
        AccessEvent::load(InstrId(instr), RawAddress(addr), 8)
    }

    #[test]
    fn immediate_dependence_is_caught() {
        let mut p = ConnorsProfiler::with_window(8);
        for k in 0..100 {
            p.access(store(1, 0x1000 + 8 * k));
            p.access(load(0, 0x1000 + 8 * k));
        }
        let deps = p.into_profile();
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependences_beyond_the_window_are_missed() {
        let mut p = ConnorsProfiler::with_window(8);
        // 100 stores first; by load time only the last 8 remain.
        for k in 0..100 {
            p.access(store(1, 0x1000 + 8 * k));
        }
        for k in 0..100 {
            p.access(load(0, 0x1000 + 8 * k));
        }
        let deps = p.into_profile();
        let f = deps.frequency(InstrId(1), InstrId(0));
        assert!(
            (f - 0.08).abs() < 1e-9,
            "only 8 of 100 stores windowed, got {f}"
        );
    }

    #[test]
    fn never_overestimates() {
        // Loads to addresses never stored report nothing.
        let mut p = ConnorsProfiler::with_window(8);
        p.access(store(1, 0x100));
        for k in 0..10 {
            p.access(load(0, 0x2000 + k * 8));
        }
        let deps = p.into_profile();
        assert!(deps.pairs().is_empty());
        assert_eq!(deps.load_execs(InstrId(0)), Some(10));
    }

    #[test]
    fn eviction_keeps_latest_writer_per_address() {
        let mut p = ConnorsProfiler::with_window(2);
        p.access(store(1, 0x100));
        p.access(store(2, 0x100)); // supersedes instr 1 at 0x100
        p.access(load(0, 0x100));
        let deps = p.into_profile();
        assert_eq!(deps.frequency(InstrId(1), InstrId(0)), 0.0);
        assert!((deps.frequency(InstrId(2), InstrId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stale_map_entries_are_purged() {
        let mut p = ConnorsProfiler::with_window(1);
        p.access(store(1, 0x100));
        p.access(store(2, 0x200)); // evicts 0x100
        p.access(load(0, 0x100));
        let deps = p.into_profile();
        assert_eq!(deps.frequency(InstrId(1), InstrId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = ConnorsProfiler::with_window(0);
    }
}
