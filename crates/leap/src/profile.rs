//! The LEAP profile: per-stream LMAD sets plus bookkeeping.

use std::collections::BTreeMap;

use orp_core::GroupId;
use orp_lmad::LinearCompressor;
use orp_trace::{AccessKind, InstrId};

/// One vertically decomposed `(instruction, group)` stream's compressed
/// state.
///
/// Following the paper's Section 4.1, the `(object, offset, time)`
/// stream is compressed as a whole (`full`, used by the dependence
/// post-processor, which needs timing) *and* horizontally re-decomposed
/// to the `(object, offset)` projection (`loc`, "at the level of
/// offsets inside objects (not including the timing information)" —
/// used by the stride post-processor and the accesses-captured metric).
#[derive(Debug, Clone)]
pub struct LeapStream {
    /// The 3-dimensional `(object, offset, time)` compressor.
    pub full: LinearCompressor,
    /// The 2-dimensional `(object, offset)` projection compressor.
    pub loc: LinearCompressor,
}

impl LeapStream {
    /// Creates a stream with the given per-compressor LMAD budget.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        LeapStream {
            full: LinearCompressor::new(3, budget),
            loc: LinearCompressor::new(2, budget),
        }
    }

    /// Feeds one access's `(object, offset, time)` point.
    pub fn push(&mut self, object: i64, offset: i64, time: i64) {
        self.full.push(&[object, offset, time]);
        self.loc.push(&[object, offset]);
    }

    /// Serialized size in bytes of this stream's descriptors and
    /// summaries.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.full.encoded_bytes() + self.loc.encoded_bytes()
    }
}

/// The paper's Table 1 sample-quality pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleQuality {
    /// Fraction (0..=1) of memory accesses captured by LMADs at the
    /// object/offset level.
    pub accesses_captured: f64,
    /// Fraction (0..=1) of instructions whose entire behavior was
    /// captured (no stream of theirs overflowed).
    pub instructions_captured: f64,
}

/// A finalized LEAP profile.
#[derive(Debug, Clone)]
pub struct LeapProfile {
    /// Per-`(instruction, group)` compressed streams.
    streams: BTreeMap<(InstrId, GroupId), LeapStream>,
    /// Exact execution counts per instruction (the probe counts them
    /// even when the compressor overflows).
    execs: BTreeMap<InstrId, u64>,
    /// Access kind per instruction.
    kinds: BTreeMap<InstrId, AccessKind>,
}

impl LeapProfile {
    pub(crate) fn from_parts(
        streams: BTreeMap<(InstrId, GroupId), LeapStream>,
        execs: BTreeMap<InstrId, u64>,
        kinds: BTreeMap<InstrId, AccessKind>,
    ) -> Self {
        LeapProfile {
            streams,
            execs,
            kinds,
        }
    }

    /// The compressed streams, keyed by `(instruction, group)`.
    #[must_use]
    pub fn streams(&self) -> &BTreeMap<(InstrId, GroupId), LeapStream> {
        &self.streams
    }

    /// Exact execution count of an instruction.
    #[must_use]
    pub fn execs(&self, instr: InstrId) -> u64 {
        self.execs.get(&instr).copied().unwrap_or(0)
    }

    /// All instructions with their kinds, in id order.
    #[must_use]
    pub fn instructions(&self) -> &BTreeMap<InstrId, AccessKind> {
        &self.kinds
    }

    /// The kind of an instruction, if profiled.
    #[must_use]
    pub fn kind(&self, instr: InstrId) -> Option<AccessKind> {
        self.kinds.get(&instr).copied()
    }

    /// Total accesses profiled.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.execs.values().sum()
    }

    /// Serialized profile size in bytes: every stream's descriptors and
    /// summaries plus a fixed 24-byte header per stream (instruction
    /// id, group id, counts).
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.streams.values().map(|s| 24 + s.encoded_bytes()).sum()
    }

    /// Publishes the finished profile's shape onto `rec`: totals plus a
    /// per-group stream-count distribution.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("leap.total_accesses", self.total_accesses());
        rec.counter("leap.streams", self.streams.len() as u64);
        rec.counter("leap.instructions", self.kinds.len() as u64);
        rec.counter("leap.encoded_bytes", self.encoded_bytes());
        let mut per_group: BTreeMap<GroupId, u64> = BTreeMap::new();
        for &(_, group) in self.streams.keys() {
            *per_group.entry(group).or_default() += 1;
        }
        rec.counter("leap.groups", per_group.len() as u64);
        for &count in per_group.values() {
            rec.observe("leap.streams_per_group", count);
        }
    }

    /// Table 1's compression ratio: raw `(instruction, address)` trace
    /// bytes over profile bytes.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let profile = self.encoded_bytes();
        if profile == 0 {
            return 0.0;
        }
        orp_trace::raw_trace_bytes(self.total_accesses()) as f64 / profile as f64
    }

    /// Table 1's sample-quality metrics.
    #[must_use]
    pub fn sample_quality(&self) -> SampleQuality {
        let mut seen = 0u64;
        let mut captured = 0u64;
        for stream in self.streams.values() {
            seen += stream.loc.seen();
            captured += stream.loc.captured();
        }
        let accesses_captured = if seen == 0 {
            0.0
        } else {
            captured as f64 / seen as f64
        };

        let mut full_instrs = 0usize;
        for &instr in self.kinds.keys() {
            let all_captured = self
                .streams
                .range((instr, GroupId(0))..=(instr, GroupId(u32::MAX)))
                .all(|(_, s)| s.full.fully_captured());
            if all_captured {
                full_instrs += 1;
            }
        }
        let instructions_captured = if self.kinds.is_empty() {
            0.0
        } else {
            full_instrs as f64 / self.kinds.len() as f64
        };
        SampleQuality {
            accesses_captured,
            instructions_captured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type RawStream = ((u32, u32), Vec<[i64; 3]>);

    fn profile_with(streams: Vec<RawStream>, budget: usize) -> LeapProfile {
        let mut map = BTreeMap::new();
        let mut execs: BTreeMap<InstrId, u64> = BTreeMap::new();
        let mut kinds = BTreeMap::new();
        for ((i, g), points) in streams {
            let mut s = LeapStream::new(budget);
            for p in &points {
                s.push(p[0], p[1], p[2]);
            }
            *execs.entry(InstrId(i)).or_default() += points.len() as u64;
            kinds.insert(InstrId(i), AccessKind::Load);
            map.insert((InstrId(i), GroupId(g)), s);
        }
        LeapProfile::from_parts(map, execs, kinds)
    }

    #[test]
    fn sample_quality_full_capture() {
        let points: Vec<[i64; 3]> = (0..100).map(|k| [k, 8, 2 * k]).collect();
        let p = profile_with(vec![((0, 0), points)], 30);
        let q = p.sample_quality();
        assert_eq!(q.accesses_captured, 1.0);
        assert_eq!(q.instructions_captured, 1.0);
        assert_eq!(p.total_accesses(), 100);
        assert!(p.compression_ratio() > 1.0);
    }

    #[test]
    fn sample_quality_degrades_on_overflow() {
        // Alternating offsets blow a budget of 1 quickly.
        let points: Vec<[i64; 3]> = (0..100)
            .map(|k| [0, if k % 2 == 0 { 0 } else { 1000 + k }, k])
            .collect();
        let p = profile_with(vec![((0, 0), points)], 1);
        let q = p.sample_quality();
        assert!(q.accesses_captured < 1.0);
        assert_eq!(q.instructions_captured, 0.0);
    }

    #[test]
    fn instruction_capture_requires_all_groups() {
        let linear: Vec<[i64; 3]> = (0..50).map(|k| [k, 0, k]).collect();
        let wild: Vec<[i64; 3]> = (0..50).map(|k| [0, (k * 7919) % 997, 50 + k]).collect();
        // Instruction 0 is linear in group 0 but wild in group 1.
        let p = profile_with(vec![((0, 0), linear), ((0, 1), wild)], 2);
        assert_eq!(p.sample_quality().instructions_captured, 0.0);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = profile_with(vec![], 30);
        assert_eq!(p.total_accesses(), 0);
        assert_eq!(p.compression_ratio(), 0.0);
        let q = p.sample_quality();
        assert_eq!(q.accesses_captured, 0.0);
        assert_eq!(q.instructions_captured, 0.0);
    }
}
