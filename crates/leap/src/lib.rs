//! LEAP: the loss-enhanced access profiler, with its post-processors
//! and the baselines it is evaluated against.
//!
//! LEAP (paper Section 4) trades completeness for compactness: the
//! object-relative stream is vertically decomposed by
//! `(instruction, group)`, and each resulting `(object, offset, time)`
//! sub-stream is compressed into a *bounded* set of LMADs (30 per
//! stream, as in the paper). Streams that outgrow the budget lose their
//! tail — quantified as *sample quality* — yet the captured linear
//! skeleton suffices for the two target optimizations:
//!
//! * **memory dependence frequency** ([`mdf`]): how often each load
//!   reads a location previously written by each store, computed from
//!   LMAD pairs with exact integer ("omega-test-like") intersection —
//!   input to speculative load reordering;
//! * **strongly-strided instructions** ([`strides`]): instructions
//!   dominated by a single within-object stride — input to
//!   stride-based prefetching.
//!
//! Both post-processors are evaluated against lossless ground truth
//! ([`lossless`]) and, for dependences, against a re-implementation of
//! Connors' window-based profiler ([`connors`]), reproducing the
//! paper's Figures 6–9 and Table 1.
//!
//! # Examples
//!
//! ```
//! use orp_core::{Cdc, Omc};
//! use orp_leap::{mdf, LeapProfiler};
//! use orp_workloads::{micro, RunConfig, Workload};
//!
//! let mut cdc = Cdc::new(Omc::new(), LeapProfiler::new());
//! micro::HashChurn::new(64, 4).run_with(&RunConfig::default(), &mut cdc);
//! let profile = cdc.into_parts().1.into_profile();
//! let deps = mdf::dependence_frequencies(&profile);
//! // The hash table is read-after-write heavy: dependences exist.
//! assert!(!deps.pairs().is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod connors;
pub mod errors;
pub mod lossless;
pub mod mdf;
pub mod strides;

mod io;
mod profile;
mod profiler;

pub use profile::{LeapProfile, LeapStream, SampleQuality};
pub use profiler::LeapProfiler;

use std::collections::BTreeMap;

use orp_trace::InstrId;

/// The LMAD budget per `(instruction, group)` stream — the paper's
/// choice of 30.
pub const DEFAULT_LMAD_BUDGET: usize = 30;

/// A dependence-frequency profile: for each `(store, load)` instruction
/// pair, the fraction of the load's executions that conflict with the
/// store (read-after-write), plus per-load execution counts.
///
/// Produced by all three dependence analyses (LEAP, lossless ground
/// truth, Connors), which makes them directly comparable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DependenceProfile {
    pairs: BTreeMap<(InstrId, InstrId), f64>,
    load_execs: BTreeMap<InstrId, u64>,
}

impl DependenceProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the frequency for a `(store, load)` pair (dropping
    /// zero-frequency pairs).
    pub fn record(&mut self, store: InstrId, load: InstrId, frequency: f64) {
        debug_assert!(
            (0.0..=1.0 + 1e-9).contains(&frequency),
            "frequency out of range"
        );
        if frequency > 0.0 {
            self.pairs.insert((store, load), frequency);
        }
    }

    /// Sets the execution count of a load instruction.
    pub fn set_load_execs(&mut self, load: InstrId, execs: u64) {
        self.load_execs.insert(load, execs);
    }

    /// The dependence frequency for a pair, or 0 when not dependent.
    #[must_use]
    pub fn frequency(&self, store: InstrId, load: InstrId) -> f64 {
        self.pairs.get(&(store, load)).copied().unwrap_or(0.0)
    }

    /// All dependent pairs with their frequencies, in id order.
    #[must_use]
    pub fn pairs(&self) -> &BTreeMap<(InstrId, InstrId), f64> {
        &self.pairs
    }

    /// Execution count of a load instruction, if known.
    #[must_use]
    pub fn load_execs(&self, load: InstrId) -> Option<u64> {
        self.load_execs.get(&load).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_profile_roundtrip() {
        let mut p = DependenceProfile::new();
        p.record(InstrId(2), InstrId(1), 0.1);
        p.record(InstrId(3), InstrId(1), 0.9);
        p.record(InstrId(4), InstrId(1), 0.0); // dropped
        p.set_load_execs(InstrId(1), 100);
        assert_eq!(p.frequency(InstrId(3), InstrId(1)), 0.9);
        assert_eq!(p.frequency(InstrId(4), InstrId(1)), 0.0);
        assert_eq!(p.pairs().len(), 2);
        assert_eq!(p.load_execs(InstrId(1)), Some(100));
        assert_eq!(p.load_execs(InstrId(9)), None);
    }
}
