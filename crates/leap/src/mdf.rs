//! Memory dependence frequency from LMADs (paper Section 4.2.1).
//!
//! A `(store, load)` pair *conflicts* on a load execution when the load
//! reads a location some execution of the store wrote earlier (read
//! after write). The memory dependence frequency is
//!
//! ```text
//! MDF(st, ld) = #load executions of ld conflicting with st / #executions of ld
//! ```
//!
//! With LMAD-compressed streams this reduces to integer intersection of
//! descriptor pairs: for a store descriptor and a load descriptor of
//! the same group, the conflicting load elements are those equal in the
//! `(object, offset)` dimensions with a time-earlier store element —
//! solved exactly by [`orp_lmad::solver::conflicting_k2`], the
//! "omega-test-like" step of the paper. Distinct load executions are
//! unioned per load descriptor with a bitset, so overlapping store
//! descriptors never double-count.
//!
//! Conflicts use access-start granularity (two accesses conflict when
//! they start at the same offset of the same object); the lossless and
//! Connors baselines use the same granularity, so the comparison is
//! apples to apples.

use orp_core::GroupId;
use orp_lmad::solver::conflicting_k2;
use orp_lmad::Lmad;
use orp_trace::InstrId;

use crate::{DependenceProfile, LeapProfile};

/// Dimension indices of a LEAP `full` stream.
const DIM_OBJECT: usize = 0;
const DIM_OFFSET: usize = 1;
const DIM_TIME: usize = 2;

/// A growable bitset over load-element indices.
#[derive(Debug)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(len: u64) -> Self {
        BitSet {
            words: vec![0; usize::try_from(len.div_ceil(64)).expect("bitset fits memory")],
        }
    }

    fn set(&mut self, idx: u64) {
        self.words[(idx / 64) as usize] |= 1 << (idx % 64);
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

/// Computes dependence frequencies for every `(store, load)` pair in
/// the profile.
///
/// Pairs with zero observed conflicts are omitted. Frequencies are
/// relative to the load's *captured* execution count: the LMADs are "a
/// sample of the initial part of the original data stream" (paper
/// Section 4.1), so the conflict rate within the sample is the
/// estimator. Behavior the sample genuinely missed (stores whose
/// descriptors overflowed) still surfaces as underestimation — the
/// lossy profile's characteristic error (Figure 6).
///
/// # Examples
///
/// ```
/// use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
/// use orp_leap::{mdf, LeapProfiler};
/// use orp_trace::{AccessKind, InstrId};
///
/// let mut p = LeapProfiler::new();
/// // Store I1 writes object k, load I0 reads it right after.
/// for k in 0..50u64 {
///     for (instr, kind, t) in [(1, AccessKind::Store, 2 * k), (0, AccessKind::Load, 2 * k + 1)] {
///         p.tuple(&OrTuple {
///             instr: InstrId(instr),
///             kind,
///             group: GroupId(0),
///             object: ObjectSerial(k),
///             offset: 0,
///             time: Timestamp(t),
///             size: 8,
///         });
///     }
/// }
/// let deps = mdf::dependence_frequencies(&p.into_profile());
/// assert_eq!(deps.frequency(InstrId(1), InstrId(0)), 1.0);
/// ```
#[must_use]
pub fn dependence_frequencies(profile: &LeapProfile) -> DependenceProfile {
    let mut out = DependenceProfile::new();

    // Captured load executions per instruction (the sample sizes).
    let mut captured_execs: std::collections::BTreeMap<InstrId, u64> =
        std::collections::BTreeMap::new();
    for ((instr, _), stream) in profile.streams() {
        *captured_execs.entry(*instr).or_default() += stream.full.captured();
    }

    // Group the streams by group id, split into stores and loads.
    use std::collections::BTreeMap;
    type InstrLmads<'a> = Vec<(InstrId, &'a [Lmad])>;
    let mut by_group: BTreeMap<GroupId, (InstrLmads<'_>, InstrLmads<'_>)> = BTreeMap::new();
    for ((instr, group), stream) in profile.streams() {
        let kind = profile.kind(*instr).expect("stream instr has a kind");
        let entry = by_group.entry(*group).or_default();
        if kind.is_store() {
            entry.0.push((*instr, stream.full.lmads()));
        } else {
            entry.1.push((*instr, stream.full.lmads()));
        }
    }

    // Accumulate conflict counts per (store, load) pair across groups.
    let mut conflicts: BTreeMap<(InstrId, InstrId), u64> = BTreeMap::new();
    for (stores, loads) in by_group.values() {
        for &(ld, ld_lmads) in loads {
            for &(st, st_lmads) in stores {
                let mut total = 0u64;
                for ld_lmad in ld_lmads {
                    let mut hit = BitSet::new(ld_lmad.count);
                    for st_lmad in st_lmads {
                        let set =
                            conflicting_k2(st_lmad, ld_lmad, &[DIM_OBJECT, DIM_OFFSET], DIM_TIME);
                        for k2 in set.iter() {
                            hit.set(k2);
                        }
                    }
                    total += hit.count();
                }
                if total > 0 {
                    *conflicts.entry((st, ld)).or_default() += total;
                }
            }
        }
    }

    for ((st, ld), count) in conflicts {
        let execs = captured_execs.get(&ld).copied().unwrap_or(0);
        if execs > 0 {
            // Descriptor endpoints can make the union marginally exceed
            // the sample on pathological inputs; clamp to a frequency.
            out.record(st, ld, (count as f64 / execs as f64).min(1.0));
        }
    }
    for (&instr, kind) in profile.instructions() {
        if kind.is_load() {
            out.set_load_execs(instr, profile.execs(instr));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeapProfiler;
    use orp_core::{ObjectSerial, OrSink, OrTuple, Timestamp};
    use orp_trace::AccessKind;

    fn feed(p: &mut LeapProfiler, instr: u32, kind: AccessKind, obj: u64, off: u64, time: u64) {
        p.tuple(&OrTuple {
            instr: InstrId(instr),
            kind,
            group: GroupId(0),
            object: ObjectSerial(obj),
            offset: off,
            time: Timestamp(time),
            size: 8,
        });
    }

    #[test]
    fn perfect_producer_consumer_is_full_frequency() {
        // Store writes object k at offset 0, load reads it right after.
        let mut p = LeapProfiler::new();
        for k in 0..100 {
            feed(&mut p, 1, AccessKind::Store, k, 0, 2 * k);
            feed(&mut p, 0, AccessKind::Load, k, 0, 2 * k + 1);
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loads_before_stores_do_not_conflict() {
        let mut p = LeapProfiler::new();
        for k in 0..50 {
            feed(&mut p, 0, AccessKind::Load, k, 0, k);
        }
        for k in 0..50 {
            feed(&mut p, 1, AccessKind::Store, k, 0, 100 + k);
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert!(deps.pairs().is_empty());
    }

    #[test]
    fn partial_overlap_gives_partial_frequency() {
        // Store covers objects 0..50; load reads objects 0..100 after.
        let mut p = LeapProfiler::new();
        for k in 0..50 {
            feed(&mut p, 1, AccessKind::Store, k, 8, k);
        }
        for k in 0..100 {
            feed(&mut p, 0, AccessKind::Load, k, 8, 100 + k);
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 0.5).abs() < 1e-9);
        assert_eq!(deps.load_execs(InstrId(0)), Some(100));
    }

    #[test]
    fn different_offsets_do_not_conflict() {
        let mut p = LeapProfiler::new();
        for k in 0..50 {
            feed(&mut p, 1, AccessKind::Store, k, 0, k);
            feed(&mut p, 0, AccessKind::Load, k, 8, 100 + k);
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert_eq!(deps.frequency(InstrId(1), InstrId(0)), 0.0);
    }

    #[test]
    fn overlapping_store_descriptors_do_not_double_count() {
        // Two passes of the same store instruction write the same
        // locations (two LMADs), then one load pass reads them: each
        // load execution must count once.
        let mut p = LeapProfiler::new();
        let mut t = 0;
        for _ in 0..2 {
            for k in 0..50 {
                feed(&mut p, 1, AccessKind::Store, k, 0, t);
                t += 1;
            }
        }
        for k in 0..50 {
            feed(&mut p, 0, AccessKind::Load, k, 0, t);
            t += 1;
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_stores_to_one_load_report_separately() {
        // Store 1 writes even objects, store 2 writes odd objects; the
        // load reads everything.
        let mut p = LeapProfiler::new();
        let mut t = 0;
        for k in 0..50 {
            feed(&mut p, 1, AccessKind::Store, 2 * k, 0, t);
            t += 1;
            feed(&mut p, 2, AccessKind::Store, 2 * k + 1, 0, t);
            t += 1;
        }
        for k in 0..100 {
            feed(&mut p, 0, AccessKind::Load, k, 0, t);
            t += 1;
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 0.5).abs() < 1e-9);
        assert!((deps.frequency(InstrId(2), InstrId(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn budget_overflow_underestimates() {
        // The store stream starts wild (exhausting the budget), and the
        // stores that actually feed the loads all sit in the discarded
        // tail: the conflicts are invisible to the sample, so the lossy
        // estimate undershoots the truth of 1.0. Missed — never
        // invented.
        let mut p = LeapProfiler::with_budget(2);
        let mut t = 0;
        for k in 0..100u64 {
            let mut x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            x ^= x << 13;
            x ^= x >> 7;
            feed(&mut p, 1, AccessKind::Store, 10_000 + x % 5000, 0, t);
            t += 1;
        }
        for k in 0..100u64 {
            feed(&mut p, 1, AccessKind::Store, k, 0, t);
            t += 1;
        }
        for k in 0..100u64 {
            feed(&mut p, 0, AccessKind::Load, k, 0, t);
            t += 1;
        }
        let deps = dependence_frequencies(&p.into_profile());
        let f = deps.frequency(InstrId(1), InstrId(0));
        assert!(
            f < 0.5,
            "conflicts in the discarded tail must be missed, got {f}"
        );
    }

    #[test]
    fn frequency_is_relative_to_the_captured_sample() {
        // Store writes every object once (one descriptor, fully
        // captured). The load's object sequence is wild: only its first
        // few executions are captured, but within that sample every
        // load conflicts — the estimate is 1.0, matching the truth,
        // instead of being diluted by the uncaptured tail.
        let mut p = LeapProfiler::with_budget(2);
        let mut t = 0;
        for k in 0..500u64 {
            feed(&mut p, 1, AccessKind::Store, k, 0, t);
            t += 1;
        }
        for k in 0..500u64 {
            let mut x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            x ^= x << 13;
            x ^= x >> 7;
            feed(&mut p, 0, AccessKind::Load, x % 500, 0, t);
            t += 1;
        }
        let deps = dependence_frequencies(&p.into_profile());
        assert!((deps.frequency(InstrId(1), InstrId(0)) - 1.0).abs() < 1e-9);
        // Exact execution counts are still reported for consumers.
        assert_eq!(deps.load_execs(InstrId(0)), Some(500));
    }
}
