//! Model-checked interleavings of the grammar-worker pipeline.
//!
//! Built only under `RUSTFLAGS="--cfg loom"` (see DESIGN.md §10 and
//! §13):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p orp-whomp --test loom_grammar --release
//! ```
//!
//! The models drive the real pipeline code — `orp_core::sync` resolves
//! to loom's instrumented channels and threads, and the batch/queue
//! constants shrink to 2/1 so a handful of symbols crosses every
//! boundary. Checked under *all* interleavings: feed → flush → drop
//! senders → join reassembles a profiler whose serialized state is
//! byte-identical to sequential construction.

#![cfg(loom)]

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, SessionSink, Timestamp};
use orp_trace::{AccessEvent, AccessKind, InstrId, ProbeSink, RawAddress};
use orp_whomp::{PipelinedRasg, PipelinedWhomp, RasgProfiler, WhompProfiler};

/// Three tuples: with the loom-sized symbol batch of 2, each dimension
/// stream flushes once mid-feed and once more at `finish`, so the model
/// exercises both the flush path and the finalize drain.
fn tuples() -> Vec<OrTuple> {
    (0..3u64)
        .map(|t| OrTuple {
            instr: InstrId((t % 2) as u32),
            kind: AccessKind::Load,
            group: GroupId(0),
            object: ObjectSerial(t % 2),
            offset: t * 8,
            time: Timestamp(t),
            size: 8,
        })
        .collect()
}

#[test]
fn grammar_worker_feed_drain_finalize_matches_sequential_under_all_schedules() {
    let tuples = tuples();

    let mut sequential = WhompProfiler::new();
    for t in &tuples {
        sequential.tuple(t);
    }
    let mut expected = Vec::new();
    sequential.save_state(&mut expected).expect("state bytes");

    loom::model(move || {
        let mut pipe = PipelinedWhomp::spawn(1);
        for t in &tuples {
            pipe.tuple(t);
        }
        pipe.finish();
        let (profiler, stats) = pipe.try_join().expect("pipeline healthy");
        let mut produced = Vec::new();
        profiler.save_state(&mut produced).expect("state bytes");
        assert_eq!(
            produced, expected,
            "grammar state must be schedule-independent"
        );
        assert_eq!(
            stats.streams.iter().map(|s| s.symbols).sum::<u64>(),
            4 * tuples.len() as u64
        );
    });
    assert!(
        loom::explored_executions() > 1,
        "feeder and grammar worker must admit more than one schedule"
    );
}

#[test]
fn rasg_worker_matches_sequential_under_all_schedules() {
    let events: Vec<AccessEvent> = (0..3u64)
        .map(|t| AccessEvent::load(InstrId((t % 2) as u32), RawAddress(0x100 + t * 8), 8))
        .collect();

    let mut sequential = RasgProfiler::new();
    for &ev in &events {
        sequential.access(ev);
    }
    let mut expected = Vec::new();
    sequential
        .into_rasg()
        .write_to(&mut expected)
        .expect("container bytes");

    loom::model(move || {
        let mut pipe = PipelinedRasg::spawn();
        for &ev in &events {
            pipe.access(ev);
        }
        pipe.finish();
        let (profiler, _) = pipe.try_join().expect("pipeline healthy");
        let mut produced = Vec::new();
        profiler
            .into_rasg()
            .write_to(&mut produced)
            .expect("container bytes");
        assert_eq!(produced, expected);
    });
    assert!(loom::explored_executions() > 1);
}
