//! Property tests: WHOMP's OMSG is lossless on arbitrary tuple streams
//! and survives serialization, and the hybrid profiler's merged
//! expansion reproduces global order.

use orp_core::{GroupId, ObjectSerial, OrSink, OrTuple, Timestamp};
use orp_trace::{AccessKind, InstrId};
use orp_whomp::{HybridProfiler, Omsg, WhompProfiler};
use proptest::prelude::*;

fn arb_tuple_parts() -> impl Strategy<Value = (u8, u8, u8, u8)> {
    (0u8..8, 0u8..3, 0u8..10, 0u8..6)
}

fn stream(parts: &[(u8, u8, u8, u8)]) -> Vec<OrTuple> {
    parts
        .iter()
        .enumerate()
        .map(|(t, &(instr, group, object, offset))| OrTuple {
            instr: InstrId(u32::from(instr)),
            kind: AccessKind::Load,
            group: GroupId(u32::from(group)),
            object: ObjectSerial(u64::from(object)),
            offset: u64::from(offset) * 4,
            time: Timestamp(t as u64),
            size: 4,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn omsg_expand_is_lossless(
        parts in proptest::collection::vec(arb_tuple_parts(), 0..300)
    ) {
        let tuples = stream(&parts);
        let mut profiler = WhompProfiler::new();
        for t in &tuples {
            profiler.tuple(t);
        }
        let omsg = profiler.into_omsg();
        let expanded = omsg.expand();
        prop_assert_eq!(expanded.len(), tuples.len());
        for (got, want) in expanded.iter().zip(&tuples) {
            prop_assert_eq!(
                *got,
                (
                    u64::from(want.instr.0),
                    u64::from(want.group.0),
                    want.object.0,
                    want.offset
                )
            );
        }
    }

    #[test]
    fn omsg_serialization_roundtrips(
        parts in proptest::collection::vec(arb_tuple_parts(), 0..200)
    ) {
        let tuples = stream(&parts);
        let mut profiler = WhompProfiler::new();
        for t in &tuples {
            profiler.tuple(t);
        }
        let omsg = profiler.into_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        let back = Omsg::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.expand(), omsg.expand());
        prop_assert_eq!(back.total_size(), omsg.total_size());
        prop_assert_eq!(back.encoded_bytes(), omsg.encoded_bytes());
    }

    #[test]
    fn hybrid_merged_expansion_is_the_original_stream(
        parts in proptest::collection::vec(arb_tuple_parts(), 0..300)
    ) {
        let tuples = stream(&parts);
        let mut profiler = HybridProfiler::new();
        for t in &tuples {
            profiler.tuple(t);
        }
        let merged = profiler.into_profile().expand_merged();
        prop_assert_eq!(merged.len(), tuples.len());
        for (got, want) in merged.iter().zip(&tuples) {
            prop_assert_eq!(
                *got,
                (
                    u64::from(want.instr.0),
                    u64::from(want.group.0),
                    want.object.0,
                    want.offset,
                    want.time.0
                )
            );
        }
    }
}
