//! Differential tests: the pipelined grammar profilers must produce
//! byte-identical output to sequential construction — container bytes,
//! checkpoint state, and across a checkpoint/resume that crosses the
//! grammar-worker boundary.

use orp_core::{Cdc, GroupId, ObjectSerial, Omc, OrSink, OrTuple, Session, SessionSink, Timestamp};
use orp_trace::{
    AccessEvent, AccessKind, AllocEvent, AllocSiteId, InstrId, ProbeEvent, ProbeSink, RawAddress,
};
use orp_whomp::{
    HybridProfiler, PipelinedHybrid, PipelinedRasg, PipelinedWhomp, RasgProfiler, WhompProfiler,
};
use proptest::prelude::*;

/// A probe script long enough to cross several symbol-batch boundaries
/// (the non-loom batch is 8192 symbols) with repetitive structure the
/// grammars actually compress.
fn probe_events() -> Vec<ProbeEvent> {
    let mut events = Vec::new();
    for k in 0..64u64 {
        events.push(ProbeEvent::Alloc(AllocEvent {
            site: AllocSiteId((k % 4) as u32),
            base: RawAddress(0x8000 + k * 256),
            size: 192,
        }));
    }
    for p in 0..400u64 {
        for k in 0..64u64 {
            events.push(ProbeEvent::Access(AccessEvent::load(
                InstrId(((k + p) % 9) as u32),
                RawAddress(0x8000 + k * 256 + 8 * (p % 24)),
                8,
            )));
        }
    }
    events
}

fn drive(sink: &mut impl ProbeSink, events: &[ProbeEvent]) {
    for &ev in events {
        sink.event(ev);
    }
    sink.finish();
}

#[test]
fn pipelined_whomp_omsg_bytes_match_sequential() {
    let events = probe_events();

    let mut inline = Cdc::new(Omc::new(), WhompProfiler::new());
    drive(&mut inline, &events);
    let mut reference = Vec::new();
    let (_, profiler) = inline.into_parts();
    profiler.into_omsg().write_to(&mut reference).unwrap();

    for workers in [1, 2, 3, 4, 8] {
        let mut cdc = Cdc::new(Omc::new(), PipelinedWhomp::spawn(workers));
        drive(&mut cdc, &events);
        let (_, pipe) = cdc.into_parts();
        let (profiler, stats) = pipe.try_join().expect("pipeline healthy");
        let mut produced = Vec::new();
        profiler.into_omsg().write_to(&mut produced).unwrap();
        assert_eq!(produced, reference, "{workers} workers");

        assert_eq!(stats.workers, workers.min(4) as u64);
        assert_eq!(stats.streams.len(), 4, "one stream per OMSG dimension");
        for s in &stats.streams {
            assert_eq!(
                s.symbols, 25_600,
                "stream {} must count every collected tuple",
                s.stream
            );
            assert!(s.batches > 0, "stream {} never flushed", s.stream);
        }
    }
}

#[test]
fn pipelined_rasg_bytes_match_sequential() {
    let events = probe_events();

    let mut inline = RasgProfiler::new();
    drive(&mut inline, &events);
    let mut reference = Vec::new();
    inline.into_rasg().write_to(&mut reference).unwrap();

    let mut pipe = PipelinedRasg::spawn();
    drive(&mut pipe, &events);
    let (profiler, stats) = pipe.try_join().expect("pipeline healthy");
    let mut produced = Vec::new();
    profiler.into_rasg().write_to(&mut produced).unwrap();
    assert_eq!(produced, reference);

    assert_eq!(stats.workers, 1);
    assert_eq!(stats.streams[0].stream, "records");
    assert_eq!(stats.streams[0].symbols, 25_600);
}

#[test]
fn pipelined_hybrid_bytes_match_sequential() {
    let events = probe_events();

    let mut inline = Cdc::new(Omc::new(), HybridProfiler::new());
    drive(&mut inline, &events);
    let mut reference = Vec::new();
    inline
        .into_parts()
        .1
        .into_profile()
        .write_to(&mut reference)
        .unwrap();

    for workers in [1, 2, 3] {
        let mut cdc = Cdc::new(Omc::new(), PipelinedHybrid::spawn(workers));
        drive(&mut cdc, &events);
        let (profiler, stats) = cdc.into_parts().1.try_join().expect("pipeline healthy");
        let mut produced = Vec::new();
        profiler.into_profile().write_to(&mut produced).unwrap();
        assert_eq!(produced, reference, "{workers} workers");
        assert_eq!(stats.streams[0].symbols, 25_600);
    }
}

/// The satellite case: checkpoint a sequential run, resume it *onto*
/// grammar workers, and the rejoined profiler must be state- and
/// container-identical to an uninterrupted (and to a sequentially
/// resumed) run.
#[test]
fn checkpoint_resume_crosses_the_grammar_worker_boundary() {
    let events = probe_events();
    let cut = events.len() / 2;

    let mut uninterrupted = Session::new(WhompProfiler::new());
    uninterrupted.feed(&events);
    let mut reference = Vec::new();
    uninterrupted.finalize(&mut reference).unwrap();

    let mut first = Session::new(WhompProfiler::new());
    first.feed(&events[..cut]);
    let mut snapshot = Vec::new();
    first.checkpoint(&mut snapshot).unwrap();

    // Sequential resume: the state-level reference for the tail.
    let mut resumed = Session::<WhompProfiler>::resume(&mut snapshot.as_slice()).unwrap();
    resumed.feed(&events[cut..]);
    let mut sequential_state = Vec::new();
    resumed
        .into_cdc()
        .sink()
        .save_state(&mut sequential_state)
        .unwrap();

    // Pipelined resume: unpack the restored session, wrap the profiler
    // in grammar workers, drive the tail, rejoin — the same dance the
    // CLI performs for `run --resume --grammar-workers N`.
    for workers in [1, 2, 4] {
        let session = Session::<WhompProfiler>::resume(&mut snapshot.as_slice()).unwrap();
        let cdc = session.into_cdc();
        let (time, untracked, anomalies) = (cdc.time(), cdc.untracked(), cdc.probe_anomalies());
        let (omc, profiler) = cdc.into_parts();
        let mut cdc = Cdc::from_parts(
            omc,
            PipelinedWhomp::from_profiler(profiler, workers),
            time,
            untracked,
            anomalies,
        );
        drive(&mut cdc, &events[cut..]);
        let (time, untracked, anomalies) = (cdc.time(), cdc.untracked(), cdc.probe_anomalies());
        let (omc, pipe) = cdc.into_parts();
        let (profiler, _) = pipe.try_join().expect("pipeline healthy");

        let mut state = Vec::new();
        profiler.save_state(&mut state).unwrap();
        assert_eq!(state, sequential_state, "state drift at {workers} workers");

        let rebuilt = Cdc::from_parts(omc, profiler, time, untracked, anomalies);
        let mut produced = Vec::new();
        Session::from_cdc(rebuilt).finalize(&mut produced).unwrap();
        assert_eq!(produced, reference, "container drift at {workers} workers");
    }
}

fn arb_tuple_parts() -> impl Strategy<Value = (u8, u8, u8, u8)> {
    (0u8..8, 0u8..3, 0u8..10, 0u8..6)
}

fn stream(parts: &[(u8, u8, u8, u8)]) -> Vec<OrTuple> {
    parts
        .iter()
        .enumerate()
        .map(|(t, &(instr, group, object, offset))| OrTuple {
            instr: InstrId(u32::from(instr)),
            kind: AccessKind::Load,
            group: GroupId(u32::from(group)),
            object: ObjectSerial(u64::from(object)),
            offset: u64::from(offset) * 4,
            time: Timestamp(t as u64),
            size: 4,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary tuple streams: the pipelined profiler's full internal
    /// state (not just the finished grammar) must match sequential
    /// construction byte for byte.
    #[test]
    fn pipelined_whomp_state_matches_sequential_on_arbitrary_streams(
        parts in proptest::collection::vec(arb_tuple_parts(), 0..300)
    ) {
        let tuples = stream(&parts);

        let mut sequential = WhompProfiler::new();
        for t in &tuples {
            sequential.tuple(t);
        }
        let mut reference = Vec::new();
        sequential.save_state(&mut reference).unwrap();

        let mut pipe = PipelinedWhomp::spawn(3);
        for t in &tuples {
            pipe.tuple(t);
        }
        pipe.finish();
        let (profiler, stats) = pipe.try_join().expect("pipeline healthy");
        let mut produced = Vec::new();
        profiler.save_state(&mut produced).unwrap();
        prop_assert_eq!(produced, reference);
        prop_assert_eq!(stats.streams.iter().map(|s| s.symbols).sum::<u64>(), 4 * tuples.len() as u64);
    }
}
