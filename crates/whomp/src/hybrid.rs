//! The hybrid-decomposition lossless profiler.
//!
//! Section 2.2: "Multi-purpose memory profilers can employ a hybrid of
//! both techniques." This profiler decomposes *vertically by
//! instruction* first, then *horizontally* within each sub-stream: per
//! instruction, three Sequitur grammars over its group, object and
//! offset streams (the instruction dimension is implicit — it is the
//! partition key).
//!
//! Compared to WHOMP's purely horizontal OMSG, the hybrid gives
//! per-instruction grammars that instruction-indexed consumers (like
//! dependence or stride analyses) can read directly, at the price of
//! losing cross-instruction correlation in the compressed form. The
//! per-tuple time-stamps that vertical decomposition needs to stay
//! globally ordered are kept as a per-instruction time grammar.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use orp_core::{OrSink, OrTuple, SessionSink};
use orp_format::{
    read_single_chunk, read_varint, write_single_chunk, write_varint, FormatError, ProfileKind,
};
use orp_sequitur::{Grammar, Sequitur};
use orp_trace::InstrId;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One instruction's compressed sub-streams.
#[derive(Debug, Clone, Default)]
struct InstrStreams {
    group: Sequitur,
    object: Sequitur,
    offset: Sequitur,
    time: Sequitur,
}

/// The hybrid vertical-then-horizontal lossless profiler.
#[derive(Debug, Clone, Default)]
pub struct HybridProfiler {
    streams: BTreeMap<InstrId, InstrStreams>,
    tuples: u64,
}

impl HybridProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples consumed.
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Publishes the profiler's growth counters onto `rec`.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("hybrid.tuples", self.tuples);
        rec.counter("hybrid.instructions", self.streams.len() as u64);
    }

    /// Publishes the grammar stage's shape (`grammar.*`) onto `rec`:
    /// rules and right-hand-side symbols totalled across every
    /// per-instruction grammar, including the time streams the hybrid
    /// carries for global ordering.
    pub fn record_grammar_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        let mut rules = 0u64;
        let mut symbols = 0u64;
        for s in self.streams.values() {
            for seq in [&s.group, &s.object, &s.offset, &s.time] {
                rules += seq.rule_count() as u64;
                symbols += seq.size();
            }
        }
        rec.counter("grammar.rules.instructions", rules);
        rec.counter("grammar.symbols.instructions", symbols);
    }

    /// Finalizes into per-instruction grammars.
    #[must_use]
    pub fn into_profile(self) -> HybridProfile {
        HybridProfile {
            instrs: self
                .streams
                .into_iter()
                .map(|(instr, s)| {
                    (
                        instr,
                        InstrGrammars {
                            group: s.group.grammar(),
                            object: s.object.grammar(),
                            offset: s.offset.grammar(),
                            time: s.time.grammar(),
                        },
                    )
                })
                .collect(),
            tuples: self.tuples,
        }
    }
}

impl OrSink for HybridProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        let s = self.streams.entry(t.instr).or_default();
        s.group.push(u64::from(t.group.0));
        s.object.push(t.object.0);
        s.offset.push(t.offset);
        s.time.push(t.time.0);
        self.tuples += 1;
    }
}

impl SessionSink for HybridProfiler {
    const STATE_NAME: &'static str = "whomp-hybrid";

    fn save_state(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.tuples)?;
        write_varint(w, self.streams.len() as u64)?;
        for (instr, s) in &self.streams {
            write_varint(w, u64::from(instr.0))?;
            s.group.save_state(w)?;
            s.object.save_state(w)?;
            s.offset.save_state(w)?;
            s.time.save_state(w)?;
        }
        Ok(())
    }

    fn restore_state(r: &mut impl Read) -> io::Result<Self> {
        let tuples = read_varint(r)?;
        let count = read_varint(r)?;
        let mut streams = BTreeMap::new();
        let mut prev: Option<u32> = None;
        let mut total = 0u64;
        for _ in 0..count {
            let instr = u32::try_from(read_varint(r)?)
                .map_err(|_| bad_data("instruction id does not fit u32"))?;
            if prev.is_some_and(|p| p >= instr) {
                return Err(bad_data("instruction streams not strictly sorted"));
            }
            prev = Some(instr);
            let group = Sequitur::restore_state(r)?;
            let object = Sequitur::restore_state(r)?;
            let offset = Sequitur::restore_state(r)?;
            let time = Sequitur::restore_state(r)?;
            let len = group.input_len();
            if object.input_len() != len || offset.input_len() != len || time.input_len() != len {
                return Err(bad_data("per-instruction streams must be aligned"));
            }
            total += len;
            streams.insert(
                InstrId(instr),
                InstrStreams {
                    group,
                    object,
                    offset,
                    time,
                },
            );
        }
        if total != tuples {
            return Err(bad_data("stream lengths disagree with tuple count"));
        }
        Ok(HybridProfiler { streams, tuples })
    }

    /// The per-instruction partition keys, matching
    /// [`ShardableSink::shard_key`](orp_core::ShardableSink::shard_key).
    fn state_keys(&self) -> Vec<u64> {
        self.streams.keys().map(|i| u64::from(i.0)).collect()
    }

    fn finalize_profile(self, w: &mut impl Write) -> io::Result<()> {
        self.into_profile().write_to(w)
    }
}

impl orp_core::ShardableSink for HybridProfiler {
    /// The profiler's own vertical-decomposition key: every state the
    /// sink keeps is per-instruction.
    fn shard_key(t: &OrTuple) -> u64 {
        u64::from(t.instr.0)
    }

    /// Union of the disjoint per-instruction maps. Each shard saw its
    /// instructions' complete sub-streams in collection order, so the
    /// union equals the single-threaded profiler state exactly.
    fn merge(parts: Vec<Self>) -> Self {
        let mut merged = HybridProfiler::new();
        for part in parts {
            merged.tuples += part.tuples;
            for (instr, streams) in part.streams {
                let clash = merged.streams.insert(instr, streams);
                debug_assert!(clash.is_none(), "instruction {instr} on two shards");
            }
        }
        merged
    }
}

/// One instruction's four grammars in a [`HybridProfile`].
#[derive(Debug, Clone)]
pub struct InstrGrammars {
    /// Grammar of the instruction's group stream.
    pub group: Grammar,
    /// Grammar of the instruction's object stream.
    pub object: Grammar,
    /// Grammar of the instruction's offset stream.
    pub offset: Grammar,
    /// Grammar of the instruction's time-stamp stream (keeps the
    /// sub-streams globally ordered, per §2.2).
    pub time: Grammar,
}

impl InstrGrammars {
    /// Total grammar size across the instruction's dimensions,
    /// excluding the time stream (comparable to OMSG's size, which has
    /// no time dimension either).
    #[must_use]
    pub fn size(&self) -> u64 {
        self.group.size() + self.object.size() + self.offset.size()
    }

    /// Re-zips this instruction's sub-streams into
    /// `(group, object, offset, time)` quadruples.
    #[must_use]
    pub fn expand(&self) -> Vec<(u64, u64, u64, u64)> {
        let g = self.group.expand();
        let o = self.object.expand();
        let f = self.offset.expand();
        let t = self.time.expand();
        assert!(
            g.len() == o.len() && o.len() == f.len() && f.len() == t.len(),
            "per-instruction streams must be aligned"
        );
        g.into_iter()
            .zip(o)
            .zip(f)
            .zip(t)
            .map(|(((g, o), f), t)| (g, o, f, t))
            .collect()
    }
}

/// The hybrid profiler's output: per-instruction grammars.
#[derive(Debug, Clone)]
pub struct HybridProfile {
    instrs: BTreeMap<InstrId, InstrGrammars>,
    tuples: u64,
}

impl HybridProfile {
    /// Number of accesses covered.
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// The grammars of one instruction.
    #[must_use]
    pub fn instr(&self, instr: InstrId) -> Option<&InstrGrammars> {
        self.instrs.get(&instr)
    }

    /// Iterates over `(instruction, grammars)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstrId, &InstrGrammars)> {
        self.instrs.iter().map(|(&i, g)| (i, g))
    }

    /// Total size across all instructions (location dimensions only).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.instrs.values().map(InstrGrammars::size).sum()
    }

    /// Publishes the finished profile's shape onto `rec`: totals plus a
    /// per-instruction grammar-size distribution.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("hybrid.tuples", self.tuples);
        rec.counter("hybrid.instructions", self.instrs.len() as u64);
        rec.counter("hybrid.grammar_symbols", self.total_size());
        for grammars in self.instrs.values() {
            rec.observe("hybrid.symbols_per_instruction", grammars.size());
        }
    }

    /// Reconstructs the full object-relative stream in global time
    /// order by merging the per-instruction sub-streams on their
    /// time-stamps — the §2.2 point of carrying the time dimension.
    #[must_use]
    pub fn expand_merged(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let mut all: Vec<(u64, u64, u64, u64, u64)> = Vec::with_capacity(self.tuples as usize);
        for (instr, grammars) in &self.instrs {
            for (g, o, f, t) in grammars.expand() {
                all.push((t, u64::from(instr.0), g, o, f));
            }
        }
        all.sort_unstable();
        all.into_iter()
            .map(|(t, i, g, o, f)| (i, g, o, f, t))
            .collect()
    }

    /// Serializes the per-instruction grammar payload (no container
    /// framing — [`HybridProfile::write_to`] adds that).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.tuples)?;
        write_varint(w, self.instrs.len() as u64)?;
        for (instr, g) in &self.instrs {
            write_varint(w, u64::from(instr.0))?;
            g.group.write_to(w)?;
            g.object.write_to(w)?;
            g.offset.write_to(w)?;
            g.time.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a payload written by [`HybridProfile::write_payload`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects payloads whose instruction keys
    /// are not strictly sorted or whose per-instruction grammars expand
    /// to different lengths.
    pub fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let tuples = read_varint(r)?;
        let count = read_varint(r)?;
        let mut instrs = BTreeMap::new();
        let mut prev: Option<u32> = None;
        let mut total = 0u64;
        for _ in 0..count {
            let instr = u32::try_from(read_varint(r)?)
                .map_err(|_| bad_data("instruction id does not fit u32"))?;
            if prev.is_some_and(|p| p >= instr) {
                return Err(bad_data("instruction grammars not strictly sorted"));
            }
            prev = Some(instr);
            let group = Grammar::read_from(r)?;
            let object = Grammar::read_from(r)?;
            let offset = Grammar::read_from(r)?;
            let time = Grammar::read_from(r)?;
            let len = group.expanded_len();
            if object.expanded_len() != len
                || offset.expanded_len() != len
                || time.expanded_len() != len
            {
                return Err(bad_data("per-instruction streams must be aligned"));
            }
            total += len;
            instrs.insert(
                InstrId(instr),
                InstrGrammars {
                    group,
                    object,
                    offset,
                    time,
                },
            );
        }
        if total != tuples {
            return Err(bad_data("stream lengths disagree with tuple count"));
        }
        Ok(HybridProfile { instrs, tuples })
    }

    /// Writes the profile as a `.orp` container of kind `Hybrid`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::Hybrid, &payload)
    }

    /// Reads a container written by [`HybridProfile::write_to`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage (wrong kind, bad
    /// checksum, truncation); payload validation errors from
    /// [`HybridProfile::read_payload`].
    pub fn read_from(r: &mut impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::Hybrid)?;
        let mut cursor = payload.as_slice();
        let profile = HybridProfile::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed(
                "trailing bytes after hybrid payload",
            ));
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{GroupId, ObjectSerial, Timestamp};
    use orp_trace::AccessKind;

    fn feed(p: &mut HybridProfiler, instr: u32, obj: u64, off: u64, time: u64) {
        p.tuple(&OrTuple {
            instr: InstrId(instr),
            kind: AccessKind::Load,
            group: GroupId(0),
            object: ObjectSerial(obj),
            offset: off,
            time: Timestamp(time),
            size: 8,
        });
    }

    fn interleaved() -> HybridProfiler {
        let mut p = HybridProfiler::new();
        let mut t = 0;
        for k in 0..50 {
            feed(&mut p, 0, k, 0, t);
            feed(&mut p, 1, k, 8, t + 1);
            t += 2;
        }
        p
    }

    #[test]
    fn substreams_split_by_instruction() {
        let profile = interleaved().into_profile();
        assert_eq!(profile.tuples(), 100);
        let i0 = profile.instr(InstrId(0)).unwrap();
        assert_eq!(i0.offset.expand(), vec![0; 50], "instr 0 always offset 0");
        let i1 = profile.instr(InstrId(1)).unwrap();
        assert_eq!(i1.offset.expand(), vec![8; 50]);
        assert!(profile.instr(InstrId(9)).is_none());
        assert_eq!(profile.iter().count(), 2);
    }

    #[test]
    fn merged_expansion_restores_global_order() {
        let profile = interleaved().into_profile();
        let merged = profile.expand_merged();
        assert_eq!(merged.len(), 100);
        // Time strictly increasing, instructions alternating.
        for (i, row) in merged.iter().enumerate() {
            assert_eq!(row.4, i as u64, "time order restored");
            assert_eq!(row.0, (i % 2) as u64);
        }
    }

    #[test]
    fn per_instruction_streams_are_simpler_than_the_mix() {
        // Each instruction's offset stream is constant, so its grammar
        // compresses logarithmically (Sequitur builds a doubling
        // hierarchy over the run of identical symbols).
        let profile = interleaved().into_profile();
        let i0 = profile.instr(InstrId(0)).unwrap();
        assert!(i0.offset.size() <= 16, "got {}", i0.offset.size());
    }

    #[test]
    fn empty_profiler_finalizes() {
        let profile = HybridProfiler::new().into_profile();
        assert_eq!(profile.tuples(), 0);
        assert_eq!(profile.total_size(), 0);
        assert!(profile.expand_merged().is_empty());
    }

    #[test]
    fn profile_container_roundtrip() {
        let profile = interleaved().into_profile();
        let mut buf = Vec::new();
        profile.write_to(&mut buf).unwrap();
        let back = HybridProfile::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.tuples(), profile.tuples());
        assert_eq!(back.total_size(), profile.total_size());
        assert_eq!(back.expand_merged(), profile.expand_merged());

        // Truncation of any prefix is a typed error, never a panic.
        for cut in 0..buf.len() {
            assert!(
                HybridProfile::read_from(&mut &buf[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn state_roundtrip_is_verbatim() {
        let profiler = interleaved();
        let mut state = Vec::new();
        profiler.save_state(&mut state).unwrap();
        let restored = HybridProfiler::restore_state(&mut state.as_slice()).unwrap();
        let mut again = Vec::new();
        restored.save_state(&mut again).unwrap();
        assert_eq!(state, again);
        assert_eq!(
            restored.state_keys(),
            vec![0, 1],
            "one key per instruction stream"
        );
    }

    fn probe_events() -> Vec<orp_trace::ProbeEvent> {
        use orp_trace::{AllocEvent, AllocSiteId, ProbeEvent, RawAddress};
        let mut events = Vec::new();
        for k in 0..32u64 {
            events.push(ProbeEvent::Alloc(AllocEvent {
                site: AllocSiteId((k % 3) as u32),
                base: RawAddress(0x4000 + k * 128),
                size: 96,
            }));
        }
        for p in 0..25u64 {
            for k in 0..32u64 {
                events.push(ProbeEvent::Access(orp_trace::AccessEvent::load(
                    InstrId(((k + p) % 6) as u32),
                    RawAddress(0x4000 + k * 128 + 8 * (p % 12)),
                    8,
                )));
            }
        }
        events
    }

    #[test]
    fn checkpoint_hands_off_to_the_sharded_pipeline_byte_identically() {
        use orp_core::Session;
        use orp_trace::ProbeSink;

        let events = probe_events();
        let cut = events.len() / 2;

        let mut uninterrupted = Session::new(HybridProfiler::new());
        uninterrupted.feed(&events);
        let mut reference = Vec::new();
        uninterrupted.finalize(&mut reference).unwrap();

        let mut first = Session::new(HybridProfiler::new());
        first.feed(&events[..cut]);
        let mut snapshot = Vec::new();
        first.checkpoint(&mut snapshot).unwrap();

        // Single-threaded resume.
        let mut resumed = Session::<HybridProfiler>::resume(&mut snapshot.as_slice()).unwrap();
        resumed.feed(&events[cut..]);
        let mut profile = Vec::new();
        resumed.finalize(&mut profile).unwrap();
        assert_eq!(profile, reference, "single-threaded resume");

        // Sharded resume: the restored state becomes shard 0, its
        // instruction keys stay pinned there, and the merge reproduces
        // the single-threaded container byte for byte.
        for shards in [1, 2, 4] {
            let mut sharded =
                Session::<HybridProfiler>::resume_sharded(&mut snapshot.as_slice(), shards, |_| {
                    HybridProfiler::new()
                })
                .unwrap();
            for &ev in &events[cut..] {
                sharded.event(ev);
            }
            let cdc = sharded.try_join().expect("pipeline healthy");
            let mut profile = Vec::new();
            Session::from_cdc(cdc).finalize(&mut profile).unwrap();
            assert_eq!(profile, reference, "resume onto {shards} shards");
        }
    }
}
