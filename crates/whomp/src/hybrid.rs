//! The hybrid-decomposition lossless profiler.
//!
//! Section 2.2: "Multi-purpose memory profilers can employ a hybrid of
//! both techniques." This profiler decomposes *vertically by
//! instruction* first, then *horizontally* within each sub-stream: per
//! instruction, three Sequitur grammars over its group, object and
//! offset streams (the instruction dimension is implicit — it is the
//! partition key).
//!
//! Compared to WHOMP's purely horizontal OMSG, the hybrid gives
//! per-instruction grammars that instruction-indexed consumers (like
//! dependence or stride analyses) can read directly, at the price of
//! losing cross-instruction correlation in the compressed form. The
//! per-tuple time-stamps that vertical decomposition needs to stay
//! globally ordered are kept as a per-instruction time grammar.

use std::collections::BTreeMap;

use orp_core::{OrSink, OrTuple};
use orp_sequitur::{Grammar, Sequitur};
use orp_trace::InstrId;

/// One instruction's compressed sub-streams.
#[derive(Debug, Clone, Default)]
struct InstrStreams {
    group: Sequitur,
    object: Sequitur,
    offset: Sequitur,
    time: Sequitur,
}

/// The hybrid vertical-then-horizontal lossless profiler.
#[derive(Debug, Clone, Default)]
pub struct HybridProfiler {
    streams: BTreeMap<InstrId, InstrStreams>,
    tuples: u64,
}

impl HybridProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples consumed.
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Finalizes into per-instruction grammars.
    #[must_use]
    pub fn into_profile(self) -> HybridProfile {
        HybridProfile {
            instrs: self
                .streams
                .into_iter()
                .map(|(instr, s)| {
                    (
                        instr,
                        InstrGrammars {
                            group: s.group.grammar(),
                            object: s.object.grammar(),
                            offset: s.offset.grammar(),
                            time: s.time.grammar(),
                        },
                    )
                })
                .collect(),
            tuples: self.tuples,
        }
    }
}

impl OrSink for HybridProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        let s = self.streams.entry(t.instr).or_default();
        s.group.push(u64::from(t.group.0));
        s.object.push(t.object.0);
        s.offset.push(t.offset);
        s.time.push(t.time.0);
        self.tuples += 1;
    }
}

impl orp_core::ShardableSink for HybridProfiler {
    /// The profiler's own vertical-decomposition key: every state the
    /// sink keeps is per-instruction.
    fn shard_key(t: &OrTuple) -> u64 {
        u64::from(t.instr.0)
    }

    /// Union of the disjoint per-instruction maps. Each shard saw its
    /// instructions' complete sub-streams in collection order, so the
    /// union equals the single-threaded profiler state exactly.
    fn merge(parts: Vec<Self>) -> Self {
        let mut merged = HybridProfiler::new();
        for part in parts {
            merged.tuples += part.tuples;
            for (instr, streams) in part.streams {
                let clash = merged.streams.insert(instr, streams);
                debug_assert!(clash.is_none(), "instruction {instr} on two shards");
            }
        }
        merged
    }
}

/// One instruction's four grammars in a [`HybridProfile`].
#[derive(Debug, Clone)]
pub struct InstrGrammars {
    /// Grammar of the instruction's group stream.
    pub group: Grammar,
    /// Grammar of the instruction's object stream.
    pub object: Grammar,
    /// Grammar of the instruction's offset stream.
    pub offset: Grammar,
    /// Grammar of the instruction's time-stamp stream (keeps the
    /// sub-streams globally ordered, per §2.2).
    pub time: Grammar,
}

impl InstrGrammars {
    /// Total grammar size across the instruction's dimensions,
    /// excluding the time stream (comparable to OMSG's size, which has
    /// no time dimension either).
    #[must_use]
    pub fn size(&self) -> u64 {
        self.group.size() + self.object.size() + self.offset.size()
    }

    /// Re-zips this instruction's sub-streams into
    /// `(group, object, offset, time)` quadruples.
    #[must_use]
    pub fn expand(&self) -> Vec<(u64, u64, u64, u64)> {
        let g = self.group.expand();
        let o = self.object.expand();
        let f = self.offset.expand();
        let t = self.time.expand();
        assert!(
            g.len() == o.len() && o.len() == f.len() && f.len() == t.len(),
            "per-instruction streams must be aligned"
        );
        g.into_iter()
            .zip(o)
            .zip(f)
            .zip(t)
            .map(|(((g, o), f), t)| (g, o, f, t))
            .collect()
    }
}

/// The hybrid profiler's output: per-instruction grammars.
#[derive(Debug, Clone)]
pub struct HybridProfile {
    instrs: BTreeMap<InstrId, InstrGrammars>,
    tuples: u64,
}

impl HybridProfile {
    /// Number of accesses covered.
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// The grammars of one instruction.
    #[must_use]
    pub fn instr(&self, instr: InstrId) -> Option<&InstrGrammars> {
        self.instrs.get(&instr)
    }

    /// Iterates over `(instruction, grammars)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstrId, &InstrGrammars)> {
        self.instrs.iter().map(|(&i, g)| (i, g))
    }

    /// Total size across all instructions (location dimensions only).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.instrs.values().map(InstrGrammars::size).sum()
    }

    /// Reconstructs the full object-relative stream in global time
    /// order by merging the per-instruction sub-streams on their
    /// time-stamps — the §2.2 point of carrying the time dimension.
    #[must_use]
    pub fn expand_merged(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let mut all: Vec<(u64, u64, u64, u64, u64)> = Vec::with_capacity(self.tuples as usize);
        for (instr, grammars) in &self.instrs {
            for (g, o, f, t) in grammars.expand() {
                all.push((t, u64::from(instr.0), g, o, f));
            }
        }
        all.sort_unstable();
        all.into_iter()
            .map(|(t, i, g, o, f)| (i, g, o, f, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{GroupId, ObjectSerial, Timestamp};
    use orp_trace::AccessKind;

    fn feed(p: &mut HybridProfiler, instr: u32, obj: u64, off: u64, time: u64) {
        p.tuple(&OrTuple {
            instr: InstrId(instr),
            kind: AccessKind::Load,
            group: GroupId(0),
            object: ObjectSerial(obj),
            offset: off,
            time: Timestamp(time),
            size: 8,
        });
    }

    fn interleaved() -> HybridProfiler {
        let mut p = HybridProfiler::new();
        let mut t = 0;
        for k in 0..50 {
            feed(&mut p, 0, k, 0, t);
            feed(&mut p, 1, k, 8, t + 1);
            t += 2;
        }
        p
    }

    #[test]
    fn substreams_split_by_instruction() {
        let profile = interleaved().into_profile();
        assert_eq!(profile.tuples(), 100);
        let i0 = profile.instr(InstrId(0)).unwrap();
        assert_eq!(i0.offset.expand(), vec![0; 50], "instr 0 always offset 0");
        let i1 = profile.instr(InstrId(1)).unwrap();
        assert_eq!(i1.offset.expand(), vec![8; 50]);
        assert!(profile.instr(InstrId(9)).is_none());
        assert_eq!(profile.iter().count(), 2);
    }

    #[test]
    fn merged_expansion_restores_global_order() {
        let profile = interleaved().into_profile();
        let merged = profile.expand_merged();
        assert_eq!(merged.len(), 100);
        // Time strictly increasing, instructions alternating.
        for (i, row) in merged.iter().enumerate() {
            assert_eq!(row.4, i as u64, "time order restored");
            assert_eq!(row.0, (i % 2) as u64);
        }
    }

    #[test]
    fn per_instruction_streams_are_simpler_than_the_mix() {
        // Each instruction's offset stream is constant, so its grammar
        // compresses logarithmically (Sequitur builds a doubling
        // hierarchy over the run of identical symbols).
        let profile = interleaved().into_profile();
        let i0 = profile.instr(InstrId(0)).unwrap();
        assert!(i0.offset.size() <= 16, "got {}", i0.offset.size());
    }

    #[test]
    fn empty_profiler_finalizes() {
        let profile = HybridProfiler::new().into_profile();
        assert_eq!(profile.tuples(), 0);
        assert_eq!(profile.total_size(), 0);
        assert!(profile.expand_merged().is_empty());
    }
}
