//! Checkpoint support: WHOMP behind the streaming session layer.
//!
//! The profiler's state is its four in-progress Sequitur instances plus
//! the tuple count; [`Sequitur::save_state`] captures a compressor
//! verbatim (nodes, rules, digram index), so a restored profiler
//! continues the stream exactly where the original stopped and the
//! finished grammar is byte-identical to an uninterrupted run's.

use std::io::{self, Read, Write};

use orp_core::SessionSink;
use orp_format::{read_varint, write_varint};
use orp_sequitur::Sequitur;

use crate::WhompProfiler;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl SessionSink for WhompProfiler {
    const STATE_NAME: &'static str = "whomp-omsg";

    fn save_state(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.tuples)?;
        self.instr.save_state(w)?;
        self.group.save_state(w)?;
        self.object.save_state(w)?;
        self.offset.save_state(w)
    }

    fn restore_state(r: &mut impl Read) -> io::Result<Self> {
        let tuples = read_varint(r)?;
        let instr = Sequitur::restore_state(r)?;
        let group = Sequitur::restore_state(r)?;
        let object = Sequitur::restore_state(r)?;
        let offset = Sequitur::restore_state(r)?;
        for s in [&instr, &group, &object, &offset] {
            if s.input_len() != tuples {
                return Err(bad_data("dimension stream length disagrees with tuples"));
            }
        }
        Ok(WhompProfiler {
            instr,
            group,
            object,
            offset,
            tuples,
        })
    }

    fn finalize_profile(self, w: &mut impl Write) -> io::Result<()> {
        self.into_omsg().write_to(w)
    }
}

#[cfg(test)]
mod tests {
    use orp_core::{Session, SessionSink};
    use orp_trace::{AccessEvent, AllocEvent, AllocSiteId, InstrId, ProbeEvent, RawAddress};

    use crate::WhompProfiler;

    fn workload_events() -> Vec<ProbeEvent> {
        let mut events = Vec::new();
        for k in 0..40u64 {
            events.push(ProbeEvent::Alloc(AllocEvent {
                site: AllocSiteId((k % 2) as u32),
                base: RawAddress(0x1000 + k * 64),
                size: 48,
            }));
        }
        for p in 0..30u64 {
            for k in 0..40u64 {
                events.push(ProbeEvent::Access(AccessEvent::load(
                    InstrId(((k + p) % 5) as u32),
                    RawAddress(0x1000 + k * 64 + 8 * (p % 6)),
                    8,
                )));
            }
        }
        events
    }

    #[test]
    fn checkpointed_whomp_run_finalizes_byte_identically() {
        let events = workload_events();

        let mut uninterrupted = Session::new(WhompProfiler::new());
        uninterrupted.feed(&events);
        let mut reference = Vec::new();
        uninterrupted.finalize(&mut reference).unwrap();

        for cut in [1, events.len() / 3, events.len() / 2, events.len() - 1] {
            let mut first = Session::new(WhompProfiler::new());
            first.feed(&events[..cut]);
            let mut snapshot = Vec::new();
            first.checkpoint(&mut snapshot).unwrap();

            let mut resumed = Session::<WhompProfiler>::resume(&mut snapshot.as_slice())
                .unwrap_or_else(|e| panic!("resume at {cut}: {e}"));
            resumed.feed(&events[cut..]);
            let mut profile = Vec::new();
            resumed.finalize(&mut profile).unwrap();
            assert_eq!(profile, reference, "cut at event {cut}");
        }
    }

    #[test]
    fn state_roundtrip_is_verbatim() {
        let mut session = Session::new(WhompProfiler::new());
        session.feed(&workload_events());
        let mut state = Vec::new();
        session.cdc().sink().save_state(&mut state).unwrap();
        let restored = WhompProfiler::restore_state(&mut state.as_slice()).unwrap();
        let mut again = Vec::new();
        restored.save_state(&mut again).unwrap();
        assert_eq!(state, again);
    }

    #[test]
    fn inconsistent_tuple_count_is_rejected() {
        let mut session = Session::new(WhompProfiler::new());
        session.feed(&workload_events());
        let mut state = Vec::new();
        session.cdc().sink().save_state(&mut state).unwrap();
        // Bump the leading tuple-count varint to disagree with the
        // grammar states behind it.
        state[0] ^= 0x01;
        assert!(WhompProfiler::restore_state(&mut state.as_slice()).is_err());
    }
}
