//! WHOMP: the lossless whole-stream memory profiler.
//!
//! WHOMP records the *entire* object-relative access stream of a run.
//! Following the paper's Section 3, the separation-and-compression
//! component horizontally decomposes the stream into its four
//! dimensions — instruction, group, object, offset — and feeds each to
//! its own Sequitur compressor. The result is the **object-relative
//! multi-dimensional Sequitur grammar** ([`Omsg`]): lossless (each
//! dimension expands back exactly), more compact than a raw-address
//! grammar, and directly useful per dimension (the offset grammar for
//! field reordering, the object grammar for clustering, …).
//!
//! The baseline it is evaluated against (Figure 5) is the conventional
//! **raw-address Sequitur grammar** ([`Rasg`]): Sequitur over the
//! classic trace representation, a stream of `(instruction, address)`
//! records compressed as fused symbols (the record shape used by the
//! raw-address profilers the paper cites). The comparison therefore
//! isolates the paper's claim: decomposing into object-relative
//! dimensions exposes regularity that the fused raw records hide —
//! novelty in one dimension (a data-dependent address, say) no longer
//! poisons the perfectly regular instruction/group/offset context
//! around it.
//!
//! # Examples
//!
//! ```
//! use orp_core::{Cdc, Omc};
//! use orp_trace::ProbeSink;
//! use orp_whomp::WhompProfiler;
//! use orp_workloads::{micro, RunConfig, Workload};
//!
//! let mut cdc = Cdc::new(Omc::new(), WhompProfiler::new());
//! micro::LinkedList::new(64, 8).run_with(&RunConfig::default(), &mut cdc);
//! let omsg = cdc.into_parts().1.into_omsg();
//! assert!(omsg.total_size() < omsg.tuples());       // it compressed
//! assert_eq!(omsg.offset.expanded_len(), omsg.tuples()); // losslessly
//! ```

#![forbid(unsafe_code)]

mod hybrid;
mod io;
mod pipeline;
mod session;

pub use hybrid::{HybridProfile, HybridProfiler, InstrGrammars};
pub use pipeline::{
    GrammarPipelineStats, GrammarStreamStats, PipelinedHybrid, PipelinedRasg, PipelinedWhomp,
};

use orp_core::{OrSink, OrTuple};
use orp_sequitur::{Grammar, Sequitur};
use orp_trace::{AccessEvent, ProbeSink};

/// The lossless object-relative profiler: one Sequitur compressor per
/// horizontal dimension.
///
/// Implements [`OrSink`], so it plugs directly behind a
/// [`Cdc`](orp_core::Cdc).
#[derive(Debug, Clone, Default)]
pub struct WhompProfiler {
    instr: Sequitur,
    group: Sequitur,
    object: Sequitur,
    offset: Sequitur,
    tuples: u64,
}

impl WhompProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples consumed so far.
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Current total grammar size across the four dimensions.
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.instr.size() + self.group.size() + self.object.size() + self.offset.size()
    }

    /// Publishes the profiler's growth counters onto `rec`. Call at a
    /// phase boundary — the tuple path only bumps plain integers.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("whomp.tuples", self.tuples);
        rec.counter("whomp.grammar_symbols", self.total_size());
        rec.counter("whomp.grammar_symbols.instruction", self.instr.size());
        rec.counter("whomp.grammar_symbols.group", self.group.size());
        rec.counter("whomp.grammar_symbols.object", self.object.size());
        rec.counter("whomp.grammar_symbols.offset", self.offset.size());
    }

    /// Publishes the grammar stage's per-dimension shape (`grammar.*`)
    /// onto `rec`: live rules and right-hand-side symbols per
    /// dimension. Works identically in sequential and pipelined runs —
    /// worker timings come separately from
    /// [`GrammarPipelineStats::record_metrics`].
    pub fn record_grammar_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("grammar.rules.instruction", self.instr.rule_count() as u64);
        rec.counter("grammar.rules.group", self.group.rule_count() as u64);
        rec.counter("grammar.rules.object", self.object.rule_count() as u64);
        rec.counter("grammar.rules.offset", self.offset.rule_count() as u64);
        rec.counter("grammar.symbols.instruction", self.instr.size());
        rec.counter("grammar.symbols.group", self.group.size());
        rec.counter("grammar.symbols.object", self.object.size());
        rec.counter("grammar.symbols.offset", self.offset.size());
    }

    /// Finalizes the profile into an [`Omsg`].
    #[must_use]
    pub fn into_omsg(self) -> Omsg {
        Omsg {
            instr: self.instr.grammar(),
            group: self.group.grammar(),
            object: self.object.grammar(),
            offset: self.offset.grammar(),
            tuples: self.tuples,
        }
    }
}

impl OrSink for WhompProfiler {
    fn tuple(&mut self, t: &OrTuple) {
        self.instr.push(u64::from(t.instr.0));
        self.group.push(u64::from(t.group.0));
        self.object.push(t.object.0);
        self.offset.push(t.offset);
        self.tuples += 1;
    }
}

/// The object-relative multi-dimensional Sequitur grammar: WHOMP's
/// output, one grammar per horizontal dimension.
#[derive(Debug, Clone)]
pub struct Omsg {
    /// Grammar of the instruction-id stream.
    pub instr: Grammar,
    /// Grammar of the group stream.
    pub group: Grammar,
    /// Grammar of the object-serial stream.
    pub object: Grammar,
    /// Grammar of the offset stream.
    pub offset: Grammar,
    tuples: u64,
}

impl Omsg {
    /// Rebuilds a profile from its parts (used by deserialization).
    #[must_use]
    pub fn from_parts(
        instr: Grammar,
        group: Grammar,
        object: Grammar,
        offset: Grammar,
        tuples: u64,
    ) -> Self {
        Omsg {
            instr,
            group,
            object,
            offset,
            tuples,
        }
    }

    /// Number of accesses the profile covers.
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Total grammar size (right-hand-side symbols across all four
    /// grammars) — the Figure 5 metric.
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.instr.size() + self.group.size() + self.object.size() + self.offset.size()
    }

    /// Serialized size in bytes under the shared symbol cost model.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.instr.encoded_bytes()
            + self.group.encoded_bytes()
            + self.object.encoded_bytes()
            + self.offset.encoded_bytes()
    }

    /// The per-dimension grammars as `(name, grammar)` pairs.
    #[must_use]
    pub fn dimensions(&self) -> [(&'static str, &Grammar); 4] {
        [
            ("instruction", &self.instr),
            ("group", &self.group),
            ("object", &self.object),
            ("offset", &self.offset),
        ]
    }

    /// Publishes the finished profile's shape onto `rec`: totals plus
    /// per-dimension rule and symbol counts.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("omsg.tuples", self.tuples);
        rec.counter("omsg.grammar_symbols", self.total_size());
        rec.counter("omsg.encoded_bytes", self.encoded_bytes());
        for (_, grammar) in self.dimensions() {
            rec.observe("omsg.rules_per_dimension", grammar.rule_count() as u64);
            rec.observe("omsg.symbols_per_dimension", grammar.size());
        }
        rec.counter("omsg.rules.instruction", self.instr.rule_count() as u64);
        rec.counter("omsg.rules.group", self.group.rule_count() as u64);
        rec.counter("omsg.rules.object", self.object.rule_count() as u64);
        rec.counter("omsg.rules.offset", self.offset.rule_count() as u64);
    }

    /// Expands all four grammars and re-zips them into the original
    /// `(instr, group, object, offset)` quadruples — the lossless
    /// round-trip.
    #[must_use]
    pub fn expand(&self) -> Vec<(u64, u64, u64, u64)> {
        let i = self.instr.expand();
        let g = self.group.expand();
        let o = self.object.expand();
        let f = self.offset.expand();
        assert!(
            i.len() == g.len() && g.len() == o.len() && o.len() == f.len(),
            "dimension streams must be aligned"
        );
        i.into_iter()
            .zip(g)
            .zip(o)
            .zip(f)
            .map(|(((i, g), o), f)| (i, g, o, f))
            .collect()
    }
}

/// The raw-address baseline profiler: Sequitur over the stream of
/// `(instruction, address)` trace records, each fused into one symbol.
///
/// Implements [`ProbeSink`] directly — no object translation is
/// involved, exactly like pre-object-relative profilers.
#[derive(Debug, Clone, Default)]
pub struct RasgProfiler {
    records: Sequitur,
    accesses: u64,
}

/// Fuses an `(instruction, address)` record into one Sequitur symbol.
///
/// The simulated address space stays below 2⁴⁷ and instruction ids
/// below 2¹⁶, so the fusion is collision-free.
fn fuse(instr: u32, addr: u64) -> u64 {
    debug_assert!(addr < 1 << 48, "address exceeds the fused-symbol space");
    debug_assert!(
        instr < 1 << 16,
        "instruction id exceeds the fused-symbol space"
    );
    (u64::from(instr) << 48) | addr
}

impl RasgProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accesses consumed so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Current grammar size of the record stream.
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.records.size()
    }

    /// Publishes the baseline profiler's growth counters onto `rec`.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("rasg.accesses", self.accesses);
        rec.counter("rasg.grammar_symbols", self.total_size());
    }

    /// Publishes the grammar stage's shape (`grammar.*`) onto `rec` —
    /// the RASG baseline has a single record stream.
    pub fn record_grammar_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("grammar.rules.records", self.records.rule_count() as u64);
        rec.counter("grammar.symbols.records", self.records.size());
    }

    /// Finalizes the profile into a [`Rasg`].
    #[must_use]
    pub fn into_rasg(self) -> Rasg {
        Rasg {
            records: self.records.grammar(),
            accesses: self.accesses,
        }
    }
}

impl ProbeSink for RasgProfiler {
    fn access(&mut self, ev: AccessEvent) {
        self.records.push(fuse(ev.instr.0, ev.addr.0));
        self.accesses += 1;
    }
}

/// The conventional raw-address Sequitur grammar: the Figure 5 baseline.
#[derive(Debug, Clone)]
pub struct Rasg {
    /// Grammar of the fused `(instruction, address)` record stream.
    pub records: Grammar,
    accesses: u64,
}

impl Rasg {
    /// Rebuilds a profile from its parts (used by deserialization).
    #[must_use]
    pub fn from_parts(records: Grammar, accesses: u64) -> Self {
        Rasg { records, accesses }
    }

    /// Number of accesses the profile covers.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total grammar size (the Figure 5 metric's denominator).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.records.size()
    }

    /// Serialized size in bytes under the shared symbol cost model.
    ///
    /// Fused record symbols carry 12 bytes of payload (4 of instruction
    /// id, 8 of address) against the 4 bytes of a decomposed dimension
    /// symbol; using the same per-symbol cost for both sides is
    /// *generous to the baseline*.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.records.encoded_bytes()
    }

    /// Publishes the finished baseline profile's shape onto `rec`.
    pub fn record_metrics(&self, rec: &mut dyn orp_obs::Recorder) {
        rec.counter("rasg.accesses", self.accesses);
        rec.counter("rasg.grammar_symbols", self.total_size());
        rec.counter("rasg.rules", self.records.rule_count() as u64);
        rec.counter("rasg.encoded_bytes", self.encoded_bytes());
    }
}

/// Figure 5's y-axis: the percentage by which the OMSG profile is
/// smaller than the RASG profile on disk, with RASG as the base
/// (`(1 - omsg/rasg) · 100`).
///
/// Positive means object-relativity compressed better. Both profiles
/// are costed with the same varint serialization; decomposition wins
/// through grammar structure *and* through its small-integer symbol
/// alphabets (offsets, serials, group ids) against the baseline's wide
/// fused raw-address records. Zero-size RASGs (empty traces) yield 0.
#[must_use]
pub fn compression_gain_percent(omsg: &Omsg, rasg: &Rasg) -> f64 {
    let rasg_bytes = rasg.encoded_bytes();
    if rasg.accesses() == 0 || rasg_bytes == 0 {
        return 0.0;
    }
    (1.0 - omsg.encoded_bytes() as f64 / rasg_bytes as f64) * 100.0
}

/// The same comparison on grammar *symbol counts* (structure only,
/// ignoring symbol width). Reported alongside the byte gain so the two
/// effects can be separated.
#[must_use]
pub fn symbol_gain_percent(omsg: &Omsg, rasg: &Rasg) -> f64 {
    let rasg_size = rasg.total_size();
    if rasg.accesses() == 0 || rasg_size == 0 {
        return 0.0;
    }
    (1.0 - omsg.total_size() as f64 / rasg_size as f64) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::{Cdc, Omc};
    use orp_trace::{AllocEvent, AllocSiteId, InstrId, RawAddress};

    /// Feeds a churn-free linked-list-like trace: two instructions
    /// alternating over `n` nodes, repeated `passes` times.
    fn list_trace(n: u64, passes: u64) -> (Omsg, Rasg) {
        let mut whomp = Cdc::new(Omc::new(), WhompProfiler::new());
        let mut rasg = RasgProfiler::new();
        let site = AllocSiteId(0);
        // Scattered raw addresses (stride 48 with a jitter pattern).
        let bases: Vec<u64> = (0..n).map(|k| 0x1000 + k * 48 + (k % 3) * 16).collect();
        for &b in &bases {
            whomp.alloc(AllocEvent {
                site,
                base: RawAddress(b),
                size: 16,
            });
        }
        for _ in 0..passes {
            for &b in &bases {
                for (instr, off) in [(0u32, 0u64), (1, 8)] {
                    let ev = AccessEvent::load(InstrId(instr), RawAddress(b + off), 8);
                    whomp.access(ev);
                    rasg.access(ev);
                }
            }
        }
        (whomp.into_parts().1.into_omsg(), rasg.into_rasg())
    }

    #[test]
    fn omsg_round_trips_losslessly() {
        let (omsg, _) = list_trace(16, 3);
        let quads = omsg.expand();
        assert_eq!(quads.len() as u64, omsg.tuples());
        // First pass: objects in order, offsets alternating 0/8.
        assert_eq!(quads[0], (0, 0, 0, 0));
        assert_eq!(quads[1], (1, 0, 0, 8));
        assert_eq!(quads[2], (0, 0, 1, 0));
    }

    #[test]
    fn omsg_compresses_repeated_traversals() {
        let (omsg, _) = list_trace(64, 10);
        assert!(
            omsg.total_size() < omsg.tuples() / 2,
            "10 identical traversals must compress well: size {} for {} tuples",
            omsg.total_size(),
            omsg.tuples()
        );
    }

    #[test]
    fn omsg_beats_rasg_when_novelty_is_dimension_local() {
        // A regular node walk interleaved with a data-dependent table
        // probe: in the fused record stream every probe is a novel
        // symbol that breaks the repetition around it; decomposed, the
        // novelty is confined to the offset dimension while instruction,
        // group and object streams stay perfectly regular.
        let mut whomp = Cdc::new(Omc::new(), WhompProfiler::new());
        let mut rasg = RasgProfiler::new();
        let node_site = AllocSiteId(0);
        let table_site = AllocSiteId(1);
        let table_base = 0x8000u64;
        whomp.alloc(AllocEvent {
            site: table_site,
            base: RawAddress(table_base),
            size: 1 << 20,
        });
        let bases: Vec<u64> = (0..64u64).map(|k| 0x100000 + k * 48).collect();
        for &b in &bases {
            whomp.alloc(AllocEvent {
                site: node_site,
                base: RawAddress(b),
                size: 16,
            });
        }
        // Deterministic pseudo-random probe offsets (xorshift).
        let mut x = 0x9E37_79B9u64;
        for _ in 0..10 {
            for &b in &bases {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let probe = table_base + (x % (1 << 17)) * 8;
                for ev in [
                    AccessEvent::load(InstrId(0), RawAddress(b), 8),
                    AccessEvent::load(InstrId(1), RawAddress(b + 8), 8),
                    AccessEvent::load(InstrId(2), RawAddress(probe), 8),
                ] {
                    whomp.access(ev);
                    rasg.access(ev);
                }
            }
        }
        let omsg = whomp.into_parts().1.into_omsg();
        let rasg = rasg.into_rasg();
        assert_eq!(omsg.tuples(), rasg.accesses());
        let gain = compression_gain_percent(&omsg, &rasg);
        assert!(
            gain > 10.0,
            "expected OMSG to win clearly, gain = {gain:.1}%"
        );
        // Structure-only comparison exists too (sign may differ).
        let _ = symbol_gain_percent(&omsg, &rasg);
    }

    #[test]
    fn dimension_accessors_are_consistent() {
        let (omsg, rasg) = list_trace(8, 2);
        let total: u64 = omsg.dimensions().iter().map(|(_, g)| g.size()).sum();
        assert_eq!(total, omsg.total_size());
        assert!(omsg.encoded_bytes() > 0);
        assert!(rasg.encoded_bytes() > 0);
        assert_eq!(rasg.total_size(), rasg.records.size());
    }

    #[test]
    fn empty_profiles_are_well_behaved() {
        let omsg = WhompProfiler::new().into_omsg();
        let rasg = RasgProfiler::new().into_rasg();
        assert_eq!(omsg.total_size(), 0);
        assert_eq!(omsg.expand().len(), 0);
        assert_eq!(compression_gain_percent(&omsg, &rasg), 0.0);
    }

    #[test]
    fn profiler_running_size_matches_final() {
        let mut p = WhompProfiler::new();
        let t = orp_core::OrTuple {
            instr: InstrId(0),
            kind: orp_trace::AccessKind::Load,
            group: orp_core::GroupId(0),
            object: orp_core::ObjectSerial(0),
            offset: 0,
            time: orp_core::Timestamp(0),
            size: 8,
        };
        for _ in 0..100 {
            p.tuple(&t);
        }
        let running = p.total_size();
        assert_eq!(running, p.into_omsg().total_size());
    }
}
