//! Parallel pipelined grammar construction.
//!
//! `BENCH_throughput.json` put raw collection near 29 MEPS while every
//! grammar-backed mode sat at ~0.44 MEPS: single-threaded Sequitur
//! construction was the wall, and sharding the *collection* side could
//! not move it. This module parallelizes the grammar stage itself,
//! exploiting the decomposition structure the paper already gives us:
//!
//! * WHOMP's OMSG keeps one **independent** Sequitur per horizontal
//!   dimension (instruction/group/object/offset) — four embarrassingly
//!   parallel consumers ([`PipelinedWhomp`]);
//! * RASG keeps a single record grammar, which still overlaps with the
//!   probe side when moved off-thread ([`PipelinedRasg`]);
//! * the hybrid profiler is partitioned by instruction, so tuple
//!   batches route to workers by the same vertical-decomposition key
//!   the sharded pipeline uses, and the existing
//!   [`ShardableSink::merge`](orp_core::ShardableSink) reassembles the
//!   result ([`PipelinedHybrid`]).
//!
//! # Batching contract
//!
//! The feed side buffers per-stream symbol vectors and ships them as
//! batches over **bounded** channels (back-pressure, not unbounded
//! memory), recycling spent buffers through return channels exactly
//! like [`orp_core::sharded`]. A stream's symbols reach exactly one
//! worker, in collection order, whatever the batch size — so batch
//! boundaries and thread scheduling are unobservable in the output.
//!
//! # Determinism argument
//!
//! Sequitur is a deterministic function of its input stream. Each
//! dimension's stream arrives at one worker complete and in order, so
//! every per-dimension grammar — and therefore the OMSG/RASG/hybrid
//! container bytes — is byte-identical to sequential construction.
//! The differential tests and golden fixtures pin this down.
//!
//! # Degraded shutdown
//!
//! A grammar worker's death cannot be salvaged the way a dead *shard*
//! lane can (PR 5): the in-progress grammar state dies with the
//! worker's thread, and a replacement could not re-derive it without
//! the already-consumed prefix. The pipeline therefore reuses the
//! salvage path's *containment* contract instead: the feed side keeps
//! accepting (and dropping) symbols after a worker dies — no deadlock,
//! no cascading panic mid-collection — and the failure surfaces as a
//! [`PipelineError`] naming the worker at join, exactly like
//! [`ShardedCdc::try_join`](orp_core::ShardedCdc::try_join).

use std::time::Instant;

use orp_core::sharded::panic_message;
use orp_core::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use orp_core::sync::thread::{self, JoinHandle};
use orp_core::{OrSink, OrTuple, PipelineError, ShardableSink};
use orp_obs::Recorder;
use orp_sequitur::Sequitur;
use orp_trace::{AccessEvent, ProbeSink};

use crate::{fuse, HybridProfiler, RasgProfiler, WhompProfiler};

/// Symbols per batch shipped to a grammar worker.
#[cfg(not(loom))]
const SYMBOL_BATCH: usize = 8192;
/// Model-checking build: tiny batches so a handful of symbols crosses
/// several channel transitions without exploding the schedule space.
#[cfg(loom)]
const SYMBOL_BATCH: usize = 2;

/// Bounded queue depth, in batches, of every grammar-worker channel.
#[cfg(not(loom))]
const QUEUE_BATCHES: usize = 32;
/// Model-checking build: depth 1 makes back-pressure reachable.
#[cfg(loom)]
const QUEUE_BATCHES: usize = 1;

/// The OMSG dimension names, in stream order.
const DIMS: [&str; 4] = ["instruction", "group", "object", "offset"];

/// One symbol stream's feed-side totals, counted on the collection
/// thread; plain integers bumped inline, published only at join.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GrammarStreamStats {
    /// Stream name: an OMSG dimension, `"records"` (RASG), or
    /// `"instructions"` (hybrid, aggregated over workers).
    pub stream: &'static str,
    /// Symbols shipped into this stream's grammar.
    pub symbols: u64,
    /// Batches flushed onto the worker's queue.
    pub batches: u64,
    /// Flushes that found the queue full and had to block (collection
    /// out-ran grammar construction).
    pub stalls: u64,
    /// Wall-clock nanoseconds the worker spent inside `push_batch` for
    /// this stream.
    pub busy_ns: u64,
}

/// Per-stream grammar-worker totals harvested at join.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GrammarPipelineStats {
    /// Number of grammar workers the pipeline ran.
    pub workers: u64,
    /// One entry per symbol stream.
    pub streams: Vec<GrammarStreamStats>,
}

/// The `(busy, batches, stalls)` counter names for one stream — the
/// [`Recorder`] interface wants `&'static str`, so the known streams
/// are enumerated instead of formatted.
fn stream_counter_names(stream: &str) -> Option<(&'static str, &'static str, &'static str)> {
    match stream {
        "instruction" => Some((
            "grammar.worker_busy_ns.instruction",
            "grammar.batches.instruction",
            "grammar.stalls.instruction",
        )),
        "group" => Some((
            "grammar.worker_busy_ns.group",
            "grammar.batches.group",
            "grammar.stalls.group",
        )),
        "object" => Some((
            "grammar.worker_busy_ns.object",
            "grammar.batches.object",
            "grammar.stalls.object",
        )),
        "offset" => Some((
            "grammar.worker_busy_ns.offset",
            "grammar.batches.offset",
            "grammar.stalls.offset",
        )),
        "records" => Some((
            "grammar.worker_busy_ns.records",
            "grammar.batches.records",
            "grammar.stalls.records",
        )),
        "instructions" => Some((
            "grammar.worker_busy_ns.instructions",
            "grammar.batches.instructions",
            "grammar.stalls.instructions",
        )),
        _ => None,
    }
}

impl GrammarPipelineStats {
    /// Publishes the pipeline's totals (`grammar.*`) onto `rec`. Call
    /// at a phase boundary, after join.
    pub fn record_metrics(&self, rec: &mut dyn Recorder) {
        rec.counter("grammar.workers", self.workers);
        for s in &self.streams {
            if let Some((busy, batches, stalls)) = stream_counter_names(s.stream) {
                rec.span(busy, s.busy_ns);
                rec.counter(batches, s.batches);
                rec.counter(stalls, s.stalls);
            }
        }
    }

    /// Total worker-busy nanoseconds across all streams.
    #[must_use]
    pub fn total_busy_ns(&self) -> u64 {
        self.streams.iter().map(|s| s.busy_ns).sum()
    }
}

/// What a grammar worker hands back at shutdown: each stream it owned,
/// with the grammar state and the time spent growing it.
#[derive(Debug)]
struct WorkerStream {
    stream: u8,
    seq: Sequitur,
    busy_ns: u64,
}

/// One worker's inbound lane: its symbol channel, the buffer-recycling
/// return channel, and the hung-up flag.
#[derive(Debug)]
struct SymbolLane {
    tx: Option<SyncSender<(u8, Vec<u64>)>>,
    recycled: Receiver<Vec<u64>>,
}

impl SymbolLane {
    /// Ships `batch` for stream `stream`, returning a fresh (recycled
    /// or new) buffer. Stall and batch totals land in `stats`; a dead
    /// worker marks the lane and the batch is dropped — the panic
    /// surfaces at join.
    fn ship(&mut self, stream: u8, batch: Vec<u64>, stats: &mut GrammarStreamStats) -> Vec<u64> {
        let fresh = self
            .recycled
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(SYMBOL_BATCH));
        let Some(tx) = &self.tx else {
            return fresh;
        };
        // Non-blocking first, so a full queue — the worker
        // back-pressuring collection — is observable as a stall before
        // the blocking send parks this thread.
        match tx.try_send((stream, batch)) {
            Ok(()) => stats.batches += 1,
            Err(TrySendError::Full(batch)) => {
                stats.stalls += 1;
                match tx.send(batch) {
                    Ok(()) => stats.batches += 1,
                    Err(mpsc::SendError(_)) => self.tx = None,
                }
            }
            Err(TrySendError::Disconnected(_)) => self.tx = None,
        }
        fresh
    }
}

/// Spawns one grammar worker owning the given `(stream, Sequitur)`
/// pairs; it drains its lane, feeds each batch to the right grammar
/// with [`Sequitur::push_batch`], and returns the streams at shutdown.
fn spawn_grammar_worker(
    index: usize,
    streams: Vec<(u8, Sequitur)>,
) -> (SymbolLane, JoinHandle<Vec<WorkerStream>>) {
    let (tx, rx) = mpsc::sync_channel::<(u8, Vec<u64>)>(QUEUE_BATCHES);
    let (recycle_tx, recycle_rx) = mpsc::sync_channel::<Vec<u64>>(QUEUE_BATCHES);
    let handle = thread::Builder::new()
        .name(format!("orp-grammar-{index}"))
        .spawn(move || {
            let mut streams: Vec<WorkerStream> = streams
                .into_iter()
                .map(|(stream, seq)| WorkerStream {
                    stream,
                    seq,
                    busy_ns: 0,
                })
                .collect();
            while let Ok((stream, batch)) = rx.recv() {
                let slot = streams
                    .iter_mut()
                    .find(|s| s.stream == stream)
                    .expect("batch routed to a worker that does not own its stream");
                let start = Instant::now();
                slot.seq.push_batch(&batch);
                slot.busy_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let mut spent = batch;
                spent.clear();
                let _ = recycle_tx.try_send(spent);
            }
            streams
        })
        .expect("spawn grammar worker");
    (
        SymbolLane {
            tx: Some(tx),
            recycled: recycle_rx,
        },
        handle,
    )
}

/// Joins grammar workers, reporting the first panic as a
/// [`PipelineError`] named `grammar worker <i>`.
fn join_grammar_workers(
    workers: Vec<JoinHandle<Vec<WorkerStream>>>,
) -> Result<Vec<WorkerStream>, PipelineError> {
    let mut streams = Vec::new();
    let mut first_error: Option<PipelineError> = None;
    for (i, handle) in workers.into_iter().enumerate() {
        match handle.join() {
            Ok(mut s) => streams.append(&mut s),
            Err(payload) => {
                let err = PipelineError {
                    worker: format!("grammar worker {i}"),
                    message: panic_message(payload),
                };
                first_error.get_or_insert(err);
            }
        }
    }
    match first_error {
        Some(err) => Err(err),
        None => Ok(streams),
    }
}

/// [`WhompProfiler`] with grammar construction moved onto worker
/// threads: an [`OrSink`] whose four dimension streams feed
/// per-dimension Sequitur workers over bounded channels.
///
/// Output is byte-identical to the sequential profiler (see the
/// [module docs](self)); [`PipelinedWhomp::try_join`] hands the
/// reassembled [`WhompProfiler`] back, so checkpointing and
/// finalization reuse the sequential paths unchanged.
///
/// # Examples
///
/// ```
/// use orp_core::{Cdc, Omc};
/// use orp_trace::{AccessEvent, AllocEvent, AllocSiteId, InstrId, ProbeSink, RawAddress};
/// use orp_whomp::PipelinedWhomp;
///
/// let mut cdc = Cdc::new(Omc::new(), PipelinedWhomp::spawn(4));
/// cdc.alloc(AllocEvent { site: AllocSiteId(0), base: RawAddress(0x100), size: 16 });
/// cdc.access(AccessEvent::load(InstrId(0), RawAddress(0x108), 8));
/// cdc.finish();
/// let (profiler, stats) = cdc.into_parts().1.try_join().unwrap();
/// assert_eq!(profiler.tuples(), 1);
/// assert_eq!(stats.streams.len(), 4);
/// ```
#[derive(Debug)]
pub struct PipelinedWhomp {
    /// Per-dimension batch under construction; all four grow in
    /// lockstep (one symbol per dimension per tuple).
    pending: [Vec<u64>; 4],
    /// Per-dimension feed totals.
    stats: [GrammarStreamStats; 4],
    /// Which lane each dimension routes to (`dim % workers`).
    route: [usize; 4],
    lanes: Vec<SymbolLane>,
    workers: Vec<JoinHandle<Vec<WorkerStream>>>,
    tuples: u64,
}

impl PipelinedWhomp {
    /// Spawns an empty pipelined profiler with `workers` grammar
    /// workers (clamped to the four dimensions; at least one).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a thread cannot be spawned.
    #[must_use]
    pub fn spawn(workers: usize) -> Self {
        Self::from_profiler(WhompProfiler::new(), workers)
    }

    /// Continues a (possibly restored) [`WhompProfiler`] on `workers`
    /// grammar workers — the resume half of checkpointing through a
    /// grammar-worker boundary. Dimension `d` routes to worker
    /// `d % workers`, which owns that dimension's Sequitur.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a thread cannot be spawned.
    #[must_use]
    pub fn from_profiler(profiler: WhompProfiler, workers: usize) -> Self {
        assert!(workers > 0, "at least one grammar worker is required");
        let workers = workers.min(DIMS.len());
        let WhompProfiler {
            instr,
            group,
            object,
            offset,
            tuples,
        } = profiler;
        let mut per_worker: Vec<Vec<(u8, Sequitur)>> = (0..workers).map(|_| Vec::new()).collect();
        let mut route = [0usize; 4];
        for (dim, seq) in [instr, group, object, offset].into_iter().enumerate() {
            route[dim] = dim % workers;
            per_worker[dim % workers].push((dim as u8, seq));
        }
        let mut lanes = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (i, streams) in per_worker.into_iter().enumerate() {
            let (lane, handle) = spawn_grammar_worker(i, streams);
            lanes.push(lane);
            handles.push(handle);
        }
        let mut stats = [GrammarStreamStats::default(); 4];
        for (dim, s) in stats.iter_mut().enumerate() {
            s.stream = DIMS[dim];
        }
        PipelinedWhomp {
            pending: std::array::from_fn(|_| Vec::with_capacity(SYMBOL_BATCH)),
            stats,
            route,
            lanes,
            workers: handles,
            tuples,
        }
    }

    /// Tuples consumed so far (including any restored prefix).
    #[must_use]
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    fn flush(&mut self) {
        for dim in 0..4 {
            if self.pending[dim].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.pending[dim]);
            self.pending[dim] =
                self.lanes[self.route[dim]].ship(dim as u8, batch, &mut self.stats[dim]);
        }
    }

    /// Flushes remaining symbols, shuts the workers down and
    /// reassembles the sequential [`WhompProfiler`] plus the worker
    /// totals.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the worker when a grammar
    /// worker panicked (see the module docs on degraded shutdown).
    pub fn try_join(mut self) -> Result<(WhompProfiler, GrammarPipelineStats), PipelineError> {
        self.flush();
        for lane in &mut self.lanes {
            drop(lane.tx.take());
        }
        let streams = join_grammar_workers(std::mem::take(&mut self.workers))?;
        let mut stats = GrammarPipelineStats {
            workers: self.lanes.len() as u64,
            streams: self.stats.to_vec(),
        };
        let mut dims: [Option<Sequitur>; 4] = [None, None, None, None];
        for ws in streams {
            stats.streams[ws.stream as usize].busy_ns = ws.busy_ns;
            dims[ws.stream as usize] = Some(ws.seq);
        }
        let [Some(instr), Some(group), Some(object), Some(offset)] = dims else {
            unreachable!("every dimension has exactly one worker stream");
        };
        Ok((
            WhompProfiler {
                instr,
                group,
                object,
                offset,
                tuples: self.tuples,
            },
            stats,
        ))
    }
}

impl OrSink for PipelinedWhomp {
    fn tuple(&mut self, t: &OrTuple) {
        self.pending[0].push(u64::from(t.instr.0));
        self.pending[1].push(u64::from(t.group.0));
        self.pending[2].push(t.object.0);
        self.pending[3].push(t.offset);
        self.tuples += 1;
        for s in &mut self.stats {
            s.symbols += 1;
        }
        if self.pending[0].len() >= SYMBOL_BATCH {
            self.flush();
        }
    }

    fn finish(&mut self) {
        self.flush();
    }
}

impl Drop for PipelinedWhomp {
    fn drop(&mut self) {
        // Unblock and reap the workers if `try_join` was never called.
        for lane in &mut self.lanes {
            drop(lane.tx.take());
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// [`RasgProfiler`] with grammar construction moved onto one worker
/// thread, overlapping record-grammar growth with the probe side.
///
/// Implements [`ProbeSink`] directly, like the sequential RASG
/// baseline — no object translation is involved.
#[derive(Debug)]
pub struct PipelinedRasg {
    pending: Vec<u64>,
    stats: GrammarStreamStats,
    lane: SymbolLane,
    worker: Option<JoinHandle<Vec<WorkerStream>>>,
    accesses: u64,
}

impl PipelinedRasg {
    /// Spawns an empty pipelined RASG profiler (always one worker —
    /// there is a single record stream).
    ///
    /// # Panics
    ///
    /// Panics if the worker thread cannot be spawned.
    #[must_use]
    pub fn spawn() -> Self {
        let (lane, handle) = spawn_grammar_worker(0, vec![(0, Sequitur::new())]);
        PipelinedRasg {
            pending: Vec::with_capacity(SYMBOL_BATCH),
            stats: GrammarStreamStats {
                stream: "records",
                ..GrammarStreamStats::default()
            },
            lane,
            worker: Some(handle),
            accesses: 0,
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        self.pending = self.lane.ship(0, batch, &mut self.stats);
    }

    /// Flushes remaining records, shuts the worker down and returns
    /// the sequential [`RasgProfiler`] plus the worker totals.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the grammar worker panicked.
    pub fn try_join(mut self) -> Result<(RasgProfiler, GrammarPipelineStats), PipelineError> {
        self.flush();
        drop(self.lane.tx.take());
        let mut streams = join_grammar_workers(self.worker.take().into_iter().collect())?;
        let ws = streams.pop().expect("the RASG worker owns one stream");
        let mut stats = self.stats;
        stats.busy_ns = ws.busy_ns;
        Ok((
            RasgProfiler {
                records: ws.seq,
                accesses: self.accesses,
            },
            GrammarPipelineStats {
                workers: 1,
                streams: vec![stats],
            },
        ))
    }
}

impl ProbeSink for PipelinedRasg {
    fn access(&mut self, ev: AccessEvent) {
        self.pending.push(fuse(ev.instr.0, ev.addr.0));
        self.accesses += 1;
        self.stats.symbols += 1;
        if self.pending.len() >= SYMBOL_BATCH {
            self.flush();
        }
    }

    fn finish(&mut self) {
        self.flush();
    }
}

impl Drop for PipelinedRasg {
    fn drop(&mut self) {
        drop(self.lane.tx.take());
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

/// One hybrid worker's inbound lane: tuple batches instead of symbol
/// batches (each tuple fans into four grammars *inside* the worker).
#[derive(Debug)]
struct TupleLane {
    tx: Option<SyncSender<Vec<OrTuple>>>,
    recycled: Receiver<Vec<OrTuple>>,
    pending: Vec<OrTuple>,
    batches: u64,
    stalls: u64,
    tuples: u64,
}

/// [`HybridProfiler`] with grammar construction spread over `workers`
/// threads, partitioned by the profiler's own vertical-decomposition
/// key (the instruction). Each instruction's sub-stream reaches one
/// worker complete and in order, so the
/// [`ShardableSink::merge`] at join reassembles state byte-identical
/// to sequential construction — the same argument as the sharded
/// collection pipeline, applied to the grammar stage.
#[derive(Debug)]
pub struct PipelinedHybrid {
    lanes: Vec<TupleLane>,
    workers: Vec<JoinHandle<(HybridProfiler, u64)>>,
}

impl PipelinedHybrid {
    /// Spawns `workers` hybrid grammar workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a thread cannot be spawned.
    #[must_use]
    pub fn spawn(workers: usize) -> Self {
        assert!(workers > 0, "at least one grammar worker is required");
        let mut lanes = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<Vec<OrTuple>>(QUEUE_BATCHES);
            let (recycle_tx, recycle_rx) = mpsc::sync_channel::<Vec<OrTuple>>(QUEUE_BATCHES);
            let handle = thread::Builder::new()
                .name(format!("orp-grammar-{i}"))
                .spawn(move || {
                    let mut sink = HybridProfiler::new();
                    let mut busy_ns = 0u64;
                    while let Ok(batch) = rx.recv() {
                        let start = Instant::now();
                        sink.tuple_batch(&batch);
                        busy_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        let mut spent = batch;
                        spent.clear();
                        let _ = recycle_tx.try_send(spent);
                    }
                    (sink, busy_ns)
                })
                .expect("spawn grammar worker");
            lanes.push(TupleLane {
                tx: Some(tx),
                recycled: recycle_rx,
                pending: Vec::with_capacity(SYMBOL_BATCH),
                batches: 0,
                stalls: 0,
                tuples: 0,
            });
            handles.push(handle);
        }
        PipelinedHybrid {
            lanes,
            workers: handles,
        }
    }

    fn flush_lane(lane: &mut TupleLane) {
        if lane.pending.is_empty() {
            return;
        }
        let fresh = lane
            .recycled
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(SYMBOL_BATCH));
        let batch = std::mem::replace(&mut lane.pending, fresh);
        let Some(tx) = &lane.tx else {
            return;
        };
        match tx.try_send(batch) {
            Ok(()) => lane.batches += 1,
            Err(TrySendError::Full(batch)) => {
                lane.stalls += 1;
                match tx.send(batch) {
                    Ok(()) => lane.batches += 1,
                    Err(mpsc::SendError(_)) => lane.tx = None,
                }
            }
            Err(TrySendError::Disconnected(_)) => lane.tx = None,
        }
    }

    /// Flushes remaining tuples, shuts the workers down and merges the
    /// per-worker profilers into the sequential-equivalent
    /// [`HybridProfiler`].
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the worker when a grammar
    /// worker panicked.
    pub fn try_join(mut self) -> Result<(HybridProfiler, GrammarPipelineStats), PipelineError> {
        for lane in &mut self.lanes {
            Self::flush_lane(lane);
            drop(lane.tx.take());
        }
        let mut parts = Vec::with_capacity(self.workers.len());
        let mut busy_ns = 0u64;
        let mut first_error: Option<PipelineError> = None;
        for (i, handle) in self.workers.drain(..).enumerate() {
            match handle.join() {
                Ok((sink, busy)) => {
                    parts.push(sink);
                    busy_ns += busy;
                }
                Err(payload) => {
                    let err = PipelineError {
                        worker: format!("grammar worker {i}"),
                        message: panic_message(payload),
                    };
                    first_error.get_or_insert(err);
                }
            }
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        let stats = GrammarPipelineStats {
            workers: self.lanes.len() as u64,
            streams: vec![GrammarStreamStats {
                stream: "instructions",
                symbols: self.lanes.iter().map(|l| l.tuples).sum(),
                batches: self.lanes.iter().map(|l| l.batches).sum(),
                stalls: self.lanes.iter().map(|l| l.stalls).sum(),
                busy_ns,
            }],
        };
        Ok((HybridProfiler::merge(parts), stats))
    }
}

impl OrSink for PipelinedHybrid {
    fn tuple(&mut self, t: &OrTuple) {
        let lane_idx = (HybridProfiler::shard_key(t) % self.lanes.len() as u64) as usize;
        let lane = &mut self.lanes[lane_idx];
        lane.tuples += 1;
        lane.pending.push(*t);
        if lane.pending.len() >= SYMBOL_BATCH {
            Self::flush_lane(lane);
        }
    }

    fn finish(&mut self) {
        for lane in &mut self.lanes {
            Self::flush_lane(lane);
        }
    }
}

impl Drop for PipelinedHybrid {
    fn drop(&mut self) {
        for lane in &mut self.lanes {
            drop(lane.tx.take());
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dead grammar worker must not take the feed side with it: the
    /// lane goes quiet (batches drop), later ships stay panic-free, and
    /// the panic surfaces at join as a named [`PipelineError`]. This is
    /// the same containment contract the sharded pipeline's salvage
    /// path provides — see the module docs for why the grammar itself
    /// is not salvageable.
    #[test]
    fn dead_worker_is_contained_and_named_at_join() {
        let (mut lane, handle) = spawn_grammar_worker(0, vec![(0, Sequitur::new())]);
        let mut stats = GrammarStreamStats {
            stream: "records",
            ..GrammarStreamStats::default()
        };

        // Stream 7 is not owned by this worker: the routing `expect`
        // inside the worker loop panics it.
        lane.ship(7, vec![1, 2, 3], &mut stats);

        // The feed side keeps shipping into the dying lane without
        // panicking or deadlocking; once the hangup is observed the
        // lane is marked dead and batches are dropped.
        for _ in 0..64 {
            lane.ship(0, vec![4, 5], &mut stats);
        }

        drop(lane.tx.take());
        let err = join_grammar_workers(vec![handle]).expect_err("worker panicked");
        assert_eq!(err.worker, "grammar worker 0");
        assert!(
            err.message.contains("does not own its stream"),
            "panic payload lost: {}",
            err.message
        );
    }

    /// Healthy path through the raw worker primitives: everything
    /// shipped arrives, buffers recycle, and join returns the grammar.
    #[test]
    fn worker_builds_the_same_grammar_as_inline_push() {
        let symbols: Vec<u64> = (0..200u64).map(|i| i % 7).collect();
        let mut reference = Sequitur::new();
        reference.push_batch(&symbols);

        let (mut lane, handle) = spawn_grammar_worker(0, vec![(3, Sequitur::new())]);
        let mut stats = GrammarStreamStats {
            stream: "records",
            ..GrammarStreamStats::default()
        };
        let mut buf = Vec::new();
        for chunk in symbols.chunks(9) {
            buf.clear();
            buf.extend_from_slice(chunk);
            buf = lane.ship(3, std::mem::take(&mut buf), &mut stats);
        }
        drop(lane.tx.take());
        let streams = join_grammar_workers(vec![handle]).expect("healthy worker");
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].stream, 3);
        assert_eq!(stats.batches, symbols.chunks(9).len() as u64);

        let mut got = Vec::new();
        streams[0].seq.save_state(&mut got).unwrap();
        let mut want = Vec::new();
        reference.save_state(&mut want).unwrap();
        assert_eq!(got, want);
    }
}
