//! Binary serialization for WHOMP (OMSG) and RASG profiles.
//!
//! Both profiles live in `.orp` containers ([`orp_format`]). The OMSG
//! payload is `varint(tuples)` followed by the four dimension grammars
//! (instruction, group, object, offset); the RASG payload is
//! `varint(accesses)` followed by the fused record grammar. Grammar
//! payload bytes are exactly [`Grammar::serialized_len`] long, keeping
//! the paper's compression accounting intact.

use std::io::{self, Read, Write};

use orp_format::{
    read_single_chunk, read_varint, write_single_chunk, write_varint, FormatError, ProfileKind,
};
use orp_sequitur::Grammar;

use crate::{Omsg, Rasg};

impl Omsg {
    /// Serializes the four-dimensional grammar payload (no container
    /// framing — [`Omsg::write_to`] adds that).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.tuples())?;
        for (_, grammar) in self.dimensions() {
            grammar.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a payload written by [`Omsg::write_payload`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects profiles whose dimension
    /// streams expand to different lengths.
    pub fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let tuples = read_varint(r)?;
        let instr = Grammar::read_from(r)?;
        let group = Grammar::read_from(r)?;
        let object = Grammar::read_from(r)?;
        let offset = Grammar::read_from(r)?;
        for g in [&instr, &group, &object, &offset] {
            if g.expanded_len() != tuples {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "dimension stream length disagrees with tuple count",
                ));
            }
        }
        Ok(Omsg::from_parts(instr, group, object, offset, tuples))
    }

    /// Writes the profile as a `.orp` container of kind `Omsg`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::Omsg, &payload)
    }

    /// Reads a container written by [`Omsg::write_to`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage (wrong kind, bad
    /// checksum, truncation); payload validation errors from
    /// [`Omsg::read_payload`].
    pub fn read_from(r: &mut impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::Omsg)?;
        let mut cursor = payload.as_slice();
        let omsg = Omsg::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes after OMSG payload"));
        }
        Ok(omsg)
    }
}

impl Rasg {
    /// Serializes the raw-record grammar payload (no container
    /// framing).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_varint(w, self.accesses())?;
        self.records.write_to(w)
    }

    /// Deserializes a payload written by [`Rasg::write_payload`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects profiles whose record stream
    /// expands to the wrong length.
    pub fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let accesses = read_varint(r)?;
        let records = Grammar::read_from(r)?;
        if records.expanded_len() != accesses {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record stream length disagrees with access count",
            ));
        }
        Ok(Rasg::from_parts(records, accesses))
    }

    /// Writes the profile as a `.orp` container of kind `Rasg`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        self.write_payload(&mut payload)?;
        write_single_chunk(w, ProfileKind::Rasg, &payload)
    }

    /// Reads a container written by [`Rasg::write_to`].
    ///
    /// # Errors
    ///
    /// Typed [`FormatError`]s for envelope damage; payload validation
    /// errors from [`Rasg::read_payload`].
    pub fn read_from(r: &mut impl Read) -> Result<Self, FormatError> {
        let payload = read_single_chunk(r, ProfileKind::Rasg)?;
        let mut cursor = payload.as_slice();
        let rasg = Rasg::read_payload(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(FormatError::Malformed("trailing bytes after RASG payload"));
        }
        Ok(rasg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RasgProfiler, WhompProfiler};
    use orp_core::OrSink;
    use orp_trace::{AccessEvent, InstrId, ProbeSink, RawAddress};

    fn sample_omsg() -> Omsg {
        let mut p = WhompProfiler::new();
        for k in 0..200u64 {
            p.tuple(&orp_core::OrTuple {
                instr: InstrId((k % 4) as u32),
                kind: orp_trace::AccessKind::Load,
                group: orp_core::GroupId((k % 2) as u32),
                object: orp_core::ObjectSerial(k / 8),
                offset: (k % 8) * 8,
                time: orp_core::Timestamp(k),
                size: 8,
            });
        }
        p.into_omsg()
    }

    #[test]
    fn omsg_roundtrip() {
        let omsg = sample_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        let back = Omsg::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.tuples(), omsg.tuples());
        assert_eq!(back.expand(), omsg.expand());
        assert_eq!(back.total_size(), omsg.total_size());
    }

    #[test]
    fn rasg_roundtrip() {
        let mut p = RasgProfiler::new();
        for k in 0..100u64 {
            p.access(AccessEvent::load(
                InstrId((k % 3) as u32),
                RawAddress(0x1000 + k * 8),
                8,
            ));
        }
        let rasg = p.into_rasg();
        let mut buf = Vec::new();
        rasg.write_to(&mut buf).unwrap();
        let back = Rasg::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.accesses(), rasg.accesses());
        assert_eq!(back.total_size(), rasg.total_size());
    }

    #[test]
    fn cross_format_confusion_is_rejected() {
        let omsg = sample_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        assert!(
            matches!(
                Rasg::read_from(&mut buf.as_slice()),
                Err(FormatError::WrongKind { .. })
            ),
            "OMSG is not a RASG"
        );
    }

    #[test]
    fn inconsistent_tuple_count_is_rejected() {
        // Rebuild the container with a tuple count that disagrees with
        // the grammars (a bare corruption would trip the CRC first, so
        // forge a payload with a valid envelope).
        let omsg = sample_omsg();
        let mut payload = Vec::new();
        omsg.write_payload(&mut payload).unwrap();
        assert_eq!(payload[0], 0xC8, "200 encodes as C8 01");
        payload[0] = 0xC9;
        let mut buf = Vec::new();
        orp_format::write_single_chunk(&mut buf, ProfileKind::Omsg, &payload).unwrap();
        assert!(Omsg::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn payload_bit_flip_is_caught_by_the_envelope() {
        let omsg = sample_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        // Flip a bit in the middle of the grammar payload.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x08;
        assert!(Omsg::read_from(&mut buf.as_slice()).is_err());
    }
}
