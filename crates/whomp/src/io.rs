//! Binary serialization for WHOMP (OMSG) and RASG profiles.
//!
//! ```text
//! "ORPW" version:varint tuples:varint  grammar{instr} grammar{group}
//!                                      grammar{object} grammar{offset}
//! "ORPR" version:varint accesses:varint grammar{records}
//! ```

use std::io::{self, Read, Write};

use orp_sequitur::{read_varint, write_varint, Grammar};

use crate::{Omsg, Rasg};

const OMSG_MAGIC: &[u8; 4] = b"ORPW";
const RASG_MAGIC: &[u8; 4] = b"ORPR";
const VERSION: u64 = 1;

fn check_header(r: &mut impl Read, magic: &[u8; 4]) -> io::Result<()> {
    let mut got = [0u8; 4];
    r.read_exact(&mut got)?;
    if &got != magic {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad profile magic",
        ));
    }
    if read_varint(r)? != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported profile version",
        ));
    }
    Ok(())
}

impl Omsg {
    /// Serializes the four-dimensional grammar profile.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(OMSG_MAGIC)?;
        write_varint(w, VERSION)?;
        write_varint(w, self.tuples())?;
        for (_, grammar) in self.dimensions() {
            grammar.write_to(w)?;
        }
        Ok(())
    }

    /// Deserializes a profile written by [`Omsg::write_to`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects profiles whose dimension
    /// streams expand to different lengths.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        check_header(r, OMSG_MAGIC)?;
        let tuples = read_varint(r)?;
        let instr = Grammar::read_from(r)?;
        let group = Grammar::read_from(r)?;
        let object = Grammar::read_from(r)?;
        let offset = Grammar::read_from(r)?;
        for g in [&instr, &group, &object, &offset] {
            if g.expanded_len() != tuples {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "dimension stream length disagrees with tuple count",
                ));
            }
        }
        Ok(Omsg::from_parts(instr, group, object, offset, tuples))
    }
}

impl Rasg {
    /// Serializes the raw-record grammar profile.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(RASG_MAGIC)?;
        write_varint(w, VERSION)?;
        write_varint(w, self.accesses())?;
        self.records.write_to(w)
    }

    /// Deserializes a profile written by [`Rasg::write_to`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors; rejects profiles whose record stream
    /// expands to the wrong length.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        check_header(r, RASG_MAGIC)?;
        let accesses = read_varint(r)?;
        let records = Grammar::read_from(r)?;
        if records.expanded_len() != accesses {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record stream length disagrees with access count",
            ));
        }
        Ok(Rasg::from_parts(records, accesses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RasgProfiler, WhompProfiler};
    use orp_core::OrSink;
    use orp_trace::{AccessEvent, InstrId, ProbeSink, RawAddress};

    fn sample_omsg() -> Omsg {
        let mut p = WhompProfiler::new();
        for k in 0..200u64 {
            p.tuple(&orp_core::OrTuple {
                instr: InstrId((k % 4) as u32),
                kind: orp_trace::AccessKind::Load,
                group: orp_core::GroupId((k % 2) as u32),
                object: orp_core::ObjectSerial(k / 8),
                offset: (k % 8) * 8,
                time: orp_core::Timestamp(k),
                size: 8,
            });
        }
        p.into_omsg()
    }

    #[test]
    fn omsg_roundtrip() {
        let omsg = sample_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        let back = Omsg::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.tuples(), omsg.tuples());
        assert_eq!(back.expand(), omsg.expand());
        assert_eq!(back.total_size(), omsg.total_size());
    }

    #[test]
    fn rasg_roundtrip() {
        let mut p = RasgProfiler::new();
        for k in 0..100u64 {
            p.access(AccessEvent::load(
                InstrId((k % 3) as u32),
                RawAddress(0x1000 + k * 8),
                8,
            ));
        }
        let rasg = p.into_rasg();
        let mut buf = Vec::new();
        rasg.write_to(&mut buf).unwrap();
        let back = Rasg::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.accesses(), rasg.accesses());
        assert_eq!(back.total_size(), rasg.total_size());
    }

    #[test]
    fn cross_format_confusion_is_rejected() {
        let omsg = sample_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        assert!(
            Rasg::read_from(&mut buf.as_slice()).is_err(),
            "OMSG is not a RASG"
        );
    }

    #[test]
    fn inconsistent_tuple_count_is_rejected() {
        let omsg = sample_omsg();
        let mut buf = Vec::new();
        omsg.write_to(&mut buf).unwrap();
        // The tuple count is the varint right after the 4-byte magic and
        // 1-byte version; 200 encodes as [0xC8, 0x01]. Corrupt it.
        assert_eq!(buf[5], 0xC8);
        buf[5] = 0xC9;
        assert!(Omsg::read_from(&mut buf.as_slice()).is_err());
    }
}
