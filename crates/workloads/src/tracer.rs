//! The tracer: the glue between a workload and the simulated machine.

use orp_allocsim::{LinkerLayout, SimHeap};
use orp_trace::{
    AccessEvent, AccessKind, AllocEvent, AllocSiteId, FreeEvent, InstrId, InstrRegistry, ProbeSink,
    RawAddress, SiteRegistry,
};

use crate::RunConfig;

/// Drives a workload against the simulated heap/linker and reports every
/// event to a [`ProbeSink`] — the moral equivalent of the paper's
/// instruction and object probes plus the instrumented `malloc`.
///
/// Instruction and site registration is part of the workload's static
/// structure: registering the same name twice returns the same id, so
/// ids are stable across runs and configurations.
pub struct Tracer<'a> {
    heap: SimHeap,
    layout: LinkerLayout,
    sink: &'a mut dyn ProbeSink,
    instrs: InstrRegistry,
    sites: SiteRegistry,
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("heap", &self.heap)
            .field("layout", &self.layout)
            .field("instrs", &self.instrs.len())
            .field("sites", &self.sites.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Tracer<'a> {
    /// Creates a tracer for one run under `cfg`, reporting to `sink`.
    #[must_use]
    pub fn new(cfg: &RunConfig, sink: &'a mut dyn ProbeSink) -> Self {
        Tracer {
            heap: SimHeap::new(cfg.allocator, cfg.heap_seed),
            layout: LinkerLayout::new(cfg.linker_shift),
            sink,
            instrs: InstrRegistry::new(),
            sites: SiteRegistry::new(),
        }
    }

    /// Registers (or looks up) a load instruction.
    pub fn load_instr(&mut self, name: &str) -> InstrId {
        self.instrs.register(name, AccessKind::Load)
    }

    /// Registers (or looks up) a store instruction.
    pub fn store_instr(&mut self, name: &str) -> InstrId {
        self.instrs.register(name, AccessKind::Store)
    }

    /// Registers (or looks up) an allocation site.
    pub fn site(&mut self, name: &str, type_name: Option<&str>) -> AllocSiteId {
        self.sites.register(name, type_name)
    }

    /// Allocates `size` bytes from the simulated heap at `site` and
    /// fires the object probe.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted — a workload sizing
    /// bug, not a runtime condition.
    pub fn alloc(&mut self, site: AllocSiteId, size: u64) -> u64 {
        let base = self.heap.alloc(size).expect("simulated heap exhausted");
        self.sink.alloc(AllocEvent {
            site,
            base: RawAddress(base),
            size,
        });
        base
    }

    /// Frees a heap block and fires the object probe.
    ///
    /// # Panics
    ///
    /// Panics on an invalid free — a workload bug.
    pub fn free(&mut self, base: u64) {
        self.heap
            .free(base)
            .expect("workload freed an invalid block");
        self.sink.free(FreeEvent {
            base: RawAddress(base),
        });
    }

    /// Places a static object through the simulated linker and fires the
    /// object probe (the paper registers statics at program start from
    /// the symbol table).
    pub fn alloc_static(&mut self, site: AllocSiteId, symbol: &str, size: u64) -> u64 {
        let obj = self.layout.place(symbol, size);
        self.sink.alloc(AllocEvent {
            site,
            base: RawAddress(obj.base),
            size: obj.size,
        });
        obj.base
    }

    /// Fires a load probe for `size` bytes at `addr`.
    pub fn load(&mut self, instr: InstrId, addr: u64, size: u8) {
        self.sink
            .access(AccessEvent::load(instr, RawAddress(addr), size));
    }

    /// Fires a store probe for `size` bytes at `addr`.
    pub fn store(&mut self, instr: InstrId, addr: u64, size: u8) {
        self.sink
            .access(AccessEvent::store(instr, RawAddress(addr), size));
    }

    /// The instruction registry accumulated by this run.
    #[must_use]
    pub fn instr_registry(&self) -> &InstrRegistry {
        &self.instrs
    }

    /// The allocation-site registry accumulated by this run.
    #[must_use]
    pub fn site_registry(&self) -> &SiteRegistry {
        &self.sites
    }

    /// Signals end of program to the sink.
    pub fn finish(&mut self) {
        self.sink.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunConfig;
    use orp_trace::{ProbeEvent, VecSink};

    #[test]
    fn alloc_access_free_round_trip() {
        let mut sink = VecSink::new();
        {
            let mut tr = Tracer::new(&RunConfig::default(), &mut sink);
            let site = tr.site("t.node", Some("Node"));
            let ld = tr.load_instr("t.read");
            let base = tr.alloc(site, 24);
            tr.load(ld, base + 8, 8);
            tr.free(base);
            tr.finish();
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], ProbeEvent::Alloc(_)));
        assert!(matches!(evs[1], ProbeEvent::Access(_)));
        assert!(matches!(evs[2], ProbeEvent::Free(_)));
    }

    #[test]
    fn static_objects_shift_with_linker_config() {
        let place = |shift| {
            let mut sink = VecSink::new();
            let cfg = RunConfig {
                linker_shift: shift,
                ..RunConfig::default()
            };
            let mut tr = Tracer::new(&cfg, &mut sink);
            let site = tr.site("t.table", None);
            tr.alloc_static(site, "table", 128)
        };
        assert_eq!(place(0x800) - place(0), 0x800);
    }

    #[test]
    fn registries_deduplicate() {
        let mut sink = VecSink::new();
        let mut tr = Tracer::new(&RunConfig::default(), &mut sink);
        let a = tr.load_instr("x");
        let b = tr.load_instr("x");
        assert_eq!(a, b);
        assert_eq!(tr.instr_registry().len(), 1);
        let s = tr.site("s", None);
        assert_eq!(tr.site("s", None), s);
        assert_eq!(tr.site_registry().len(), 1);
    }
}
