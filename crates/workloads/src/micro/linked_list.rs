//! The paper's Figure 1/Figure 3 scenario: linked-list traversal and
//! update.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Tracer, Workload};

/// Node layout: `data` at offset 0, `next` pointer at offset 8.
const NODE_SIZE: u64 = 16;
const OFF_DATA: u64 = 0;
const OFF_NEXT: u64 = 8;

/// Builds a linked list whose nodes are deliberately scattered in the
/// raw address space (interleaved decoy allocations, some of them freed,
/// force non-contiguous placement), then repeatedly traverses and
/// updates it — the paper's opening example of regular behavior that
/// *looks* irregular in raw addresses.
///
/// Instructions:
/// * `list.build.store_data` / `list.build.store_next` — construction,
/// * `list.walk.load_data` / `list.walk.load_next` — traversal,
/// * `list.update.store_data` — the update pass.
#[derive(Debug, Clone)]
pub struct LinkedList {
    nodes: usize,
    traversals: usize,
    shuffled: bool,
}

impl LinkedList {
    /// A list of `nodes` elements traversed `traversals` times, built
    /// by appending (list order = allocation order).
    #[must_use]
    pub fn new(nodes: usize, traversals: usize) -> Self {
        LinkedList {
            nodes,
            traversals,
            shuffled: false,
        }
    }

    /// A list built by inserting each node at a *random position*, so
    /// traversal order is decoupled from allocation order — the layout
    /// that defeats allocation-order placement and rewards
    /// profile-guided (traversal-order) placement.
    #[must_use]
    pub fn new_shuffled(nodes: usize, traversals: usize) -> Self {
        LinkedList {
            nodes,
            traversals,
            shuffled: true,
        }
    }
}

impl Workload for LinkedList {
    fn name(&self) -> &'static str {
        "micro.linked_list"
    }

    fn run(&self, tr: &mut Tracer<'_>) {
        let node_site = tr.site("list.node", Some("ListNode"));
        let decoy_site = tr.site("list.decoy", None);
        let head_site = tr.site("list.head", Some("*ListNode"));
        let st_head = tr.store_instr("list.build.store_head");
        let ld_head = tr.load_instr("list.walk.load_head");
        let st_data = tr.store_instr("list.build.store_data");
        let st_next = tr.store_instr("list.build.store_next");
        let ld_data = tr.load_instr("list.walk.load_data");
        let ld_next = tr.load_instr("list.walk.load_next");
        let st_upd = tr.store_instr("list.update.store_data");

        // The list head lives in static data, like a C global.
        let head = tr.alloc_static(head_site, "list_head", 8);
        tr.store(st_head, head, 8);

        let mut rng = StdRng::seed_from_u64(0x11_57);
        // Build: interleave decoy allocations (freed at random) so the
        // list nodes land at artifact-laden addresses.
        let mut nodes = Vec::with_capacity(self.nodes);
        let mut decoys = Vec::new();
        for _ in 0..self.nodes {
            let n_decoys = rng.random_range(0..3);
            for _ in 0..n_decoys {
                decoys.push(tr.alloc(decoy_site, rng.random_range(8..64)));
            }
            let node = tr.alloc(node_site, NODE_SIZE);
            tr.store(st_data, node + OFF_DATA, 8);
            tr.store(st_next, node + OFF_NEXT, 8);
            if self.shuffled && !nodes.is_empty() {
                // Insert at a random list position: touch the
                // predecessor's next pointer like a real insert.
                let pos = rng.random_range(0..=nodes.len());
                if pos > 0 {
                    tr.store(st_next, nodes[pos - 1] + OFF_NEXT, 8);
                }
                nodes.insert(pos, node);
            } else {
                nodes.push(node);
            }
            if !decoys.is_empty() && rng.random_bool(0.5) {
                let idx = rng.random_range(0..decoys.len());
                let base = decoys.swap_remove(idx);
                tr.free(base);
            }
        }
        // Traverse + update.
        for pass in 0..self.traversals {
            tr.load(ld_head, head, 8);
            for &node in &nodes {
                tr.load(ld_data, node + OFF_DATA, 8);
                tr.load(ld_next, node + OFF_NEXT, 8);
            }
            if pass % 2 == 1 {
                for &node in &nodes {
                    tr.store(st_upd, node + OFF_DATA, 8);
                }
            }
        }
        for base in decoys {
            tr.free(base);
        }
        for node in nodes {
            tr.free(node);
        }
    }
}
