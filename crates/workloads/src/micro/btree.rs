//! Binary-search-tree workload: logarithmic pointer chasing.
//!
//! The pattern between the linked list (linear chase) and the hash
//! table (single hop): every lookup walks a root-to-leaf path of
//! data-dependent nodes. Raw addresses make each path look random;
//! object-relatively the whole workload is one group with three fixed
//! field offsets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Tracer, Workload};

const NODE_SIZE: u64 = 32;
const OFF_KEY: u64 = 0;
const OFF_LEFT: u64 = 8;
const OFF_RIGHT: u64 = 16;

/// Builds a BST by random insertion, then performs random lookups.
#[derive(Debug, Clone)]
pub struct Btree {
    nodes: usize,
    lookups: usize,
}

impl Btree {
    /// A tree of `nodes` keys probed with `lookups` searches.
    #[must_use]
    pub fn new(nodes: usize, lookups: usize) -> Self {
        Btree { nodes, lookups }
    }
}

/// Logical tree node: key plus child indices.
struct Node {
    key: u64,
    left: Option<usize>,
    right: Option<usize>,
}

impl Workload for Btree {
    fn name(&self) -> &'static str {
        "micro.btree"
    }

    fn run(&self, tr: &mut Tracer<'_>) {
        let site = tr.site("btree.node", Some("TreeNode"));
        let st_key = tr.store_instr("btree.insert.store_key");
        let st_link = tr.store_instr("btree.insert.store_link");
        let ld_key = tr.load_instr("btree.search.load_key");
        let ld_left = tr.load_instr("btree.search.load_left");
        let ld_right = tr.load_instr("btree.search.load_right");

        let mut rng = StdRng::seed_from_u64(0xB7EE);
        let mut nodes: Vec<Node> = Vec::with_capacity(self.nodes);
        let mut addrs: Vec<u64> = Vec::with_capacity(self.nodes);

        // Insert random keys; walk the tree to the insertion point,
        // touching the same fields a real insert would.
        for _ in 0..self.nodes {
            let key = rng.random_range(0..1 << 30);
            let addr = tr.alloc(site, NODE_SIZE);
            tr.store(st_key, addr + OFF_KEY, 8);
            let idx = nodes.len();
            nodes.push(Node {
                key,
                left: None,
                right: None,
            });
            addrs.push(addr);
            if idx == 0 {
                continue;
            }
            let mut cur = 0usize;
            loop {
                tr.load(ld_key, addrs[cur] + OFF_KEY, 8);
                if key < nodes[cur].key {
                    tr.load(ld_left, addrs[cur] + OFF_LEFT, 8);
                    match nodes[cur].left {
                        Some(next) => cur = next,
                        None => {
                            nodes[cur].left = Some(idx);
                            tr.store(st_link, addrs[cur] + OFF_LEFT, 8);
                            break;
                        }
                    }
                } else {
                    tr.load(ld_right, addrs[cur] + OFF_RIGHT, 8);
                    match nodes[cur].right {
                        Some(next) => cur = next,
                        None => {
                            nodes[cur].right = Some(idx);
                            tr.store(st_link, addrs[cur] + OFF_RIGHT, 8);
                            break;
                        }
                    }
                }
            }
        }

        // Random lookups.
        for _ in 0..self.lookups {
            let key = rng.random_range(0..1 << 30);
            let mut cur = Some(0usize);
            while let Some(i) = cur {
                tr.load(ld_key, addrs[i] + OFF_KEY, 8);
                if key < nodes[i].key {
                    tr.load(ld_left, addrs[i] + OFF_LEFT, 8);
                    cur = nodes[i].left;
                } else if key > nodes[i].key {
                    tr.load(ld_right, addrs[i] + OFF_RIGHT, 8);
                    cur = nodes[i].right;
                } else {
                    break;
                }
            }
        }

        for addr in addrs {
            tr.free(addr);
        }
    }
}
