//! Micro-workloads: the paper's illustrative scenarios, runnable.

mod btree;
mod hash_churn;
mod linked_list;
mod matrix;

pub use btree::Btree;
pub use hash_churn::HashChurn;
pub use linked_list::LinkedList;
pub use matrix::Matrix;
