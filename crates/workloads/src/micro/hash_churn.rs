//! Allocation churn over a hash table: address reuse on purpose.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Tracer, Workload};

const ENTRY_SIZE: u64 = 32;
const OFF_KEY: u64 = 0;
const OFF_VAL: u64 = 8;

/// Inserts and deletes entries against a fixed-size bucket array,
/// churning the allocator so raw addresses are heavily reused across
/// object lifetimes — the *false aliasing* artifact: one raw address,
/// many logical objects.
#[derive(Debug, Clone)]
pub struct HashChurn {
    buckets: u64,
    ops: usize,
}

impl HashChurn {
    /// A table of `buckets` buckets exercised with `ops * buckets`
    /// insert/lookup/delete operations.
    #[must_use]
    pub fn new(buckets: u64, ops: usize) -> Self {
        HashChurn { buckets, ops }
    }
}

impl Workload for HashChurn {
    fn name(&self) -> &'static str {
        "micro.hash_churn"
    }

    fn run(&self, tr: &mut Tracer<'_>) {
        let table_site = tr.site("hash.table", None);
        let entry_site = tr.site("hash.entry", Some("Entry"));
        let st_bucket = tr.store_instr("hash.insert.store_bucket");
        let st_key = tr.store_instr("hash.insert.store_key");
        let ld_bucket = tr.load_instr("hash.lookup.load_bucket");
        let ld_key = tr.load_instr("hash.lookup.load_key");
        let ld_val = tr.load_instr("hash.lookup.load_val");

        let table = tr.alloc(table_site, self.buckets * 8);
        let mut rng = StdRng::seed_from_u64(0xA5A5);
        // Logical model: bucket -> live entry base (at most one per
        // bucket; collisions evict, i.e. free + realloc).
        let mut entries: Vec<Option<u64>> = vec![None; self.buckets as usize];

        for _ in 0..self.ops * self.buckets as usize {
            let b = rng.random_range(0..self.buckets);
            let slot = table + b * 8;
            match rng.random_range(0..3) {
                0 => {
                    // Insert (evicting any previous occupant).
                    if let Some(old) = entries[b as usize].take() {
                        tr.free(old);
                    }
                    let e = tr.alloc(entry_site, ENTRY_SIZE);
                    tr.store(st_key, e + OFF_KEY, 8);
                    tr.store(st_bucket, slot, 8);
                    entries[b as usize] = Some(e);
                }
                1 => {
                    // Lookup.
                    tr.load(ld_bucket, slot, 8);
                    if let Some(e) = entries[b as usize] {
                        tr.load(ld_key, e + OFF_KEY, 8);
                        tr.load(ld_val, e + OFF_VAL, 8);
                    }
                }
                _ => {
                    // Delete.
                    tr.load(ld_bucket, slot, 8);
                    if let Some(e) = entries[b as usize].take() {
                        tr.free(e);
                        tr.store(st_bucket, slot, 8);
                    }
                }
            }
        }
        for e in entries.into_iter().flatten() {
            tr.free(e);
        }
        tr.free(table);
    }
}
