//! Dense-matrix sweeps: the strongly-strided end of the spectrum.

use crate::{Tracer, Workload};

const ELEM: u64 = 8;

/// Row-major writes followed by row- and column-order reads over an
/// `n × n` matrix held in one heap object.
///
/// Row order yields stride `8`, column order stride `8·n` — both are
/// single LMADs per pass, making this the canonical strongly-strided
/// workload for stride-profiler tests.
#[derive(Debug, Clone)]
pub struct Matrix {
    n: u64,
    passes: usize,
}

impl Matrix {
    /// An `n × n` matrix swept `passes` times.
    #[must_use]
    pub fn new(n: u64, passes: usize) -> Self {
        Matrix { n, passes }
    }
}

impl Workload for Matrix {
    fn name(&self) -> &'static str {
        "micro.matrix"
    }

    fn run(&self, tr: &mut Tracer<'_>) {
        let site = tr.site("matrix.data", Some("f64"));
        let st_init = tr.store_instr("matrix.init.store");
        let ld_row = tr.load_instr("matrix.row_sum.load");
        let ld_col = tr.load_instr("matrix.col_sum.load");

        let base = tr.alloc(site, self.n * self.n * ELEM);
        for i in 0..self.n * self.n {
            tr.store(st_init, base + i * ELEM, 8);
        }
        for _ in 0..self.passes {
            // Row-major read: stride 8.
            for i in 0..self.n * self.n {
                tr.load(ld_row, base + i * ELEM, 8);
            }
            // Column-major read: stride 8n with n restarts.
            for col in 0..self.n {
                for row in 0..self.n {
                    tr.load(ld_col, base + (row * self.n + col) * ELEM, 8);
                }
            }
        }
        tr.free(base);
    }
}
